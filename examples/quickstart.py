"""Quickstart: hierarchical structured sparsity in five minutes.

Covers the core API end-to-end:

1. define a two-rank HSS pattern and inspect its sparsity degree;
2. sparsify a weight matrix rank-by-rank (paper Sec. 4.2);
3. verify conformance and compress it to hierarchical CP (Fig. 9);
4. run the matmul through the functional HighLight simulator and check
   it is exact while skipping all the structured zeros;
5. compare analytical EDP against a dense accelerator.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.accelerators import REGISTRY
from repro.compression import encode_hierarchical_cp
from repro.energy import Estimator
from repro.model.workload import MatmulWorkload, hss_operand, dense_operand
from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import HSSPattern, conforms, sparsify


def main() -> None:
    # 1. A two-rank HSS pattern: C1(2:4) -> C0(2:4), i.e. 2 of every 4
    # value-blocks are kept, and 2 of every 4 values inside each block.
    pattern = HSSPattern.from_ratios((2, 4), (2, 4))
    print(f"pattern          : {pattern}")
    print(f"overall sparsity : {pattern.sparsity:.1%} "
          f"(1 - 2/4 x 2/4, Sec. 4.1.2)")

    # 2. Sparsify a random weight matrix to the pattern.
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(8, 64))
    sparse_weights = sparsify(weights, pattern)
    print(f"measured sparsity: {np.mean(sparse_weights == 0):.1%}")
    assert conforms(sparse_weights, pattern)

    # 3. Compress one row to hierarchical CP and count metadata.
    encoded = encode_hierarchical_cp(sparse_weights[0], pattern)
    print(f"row 0 stored     : {encoded.num_stored_values} values + "
          f"{encoded.metadata_bits} metadata bits")

    # 4. Exact simulation through the down-sized HighLight (Sec. 6).
    activations = rng.normal(size=(64, 16))
    activations[rng.random(activations.shape) < 0.4] = 0.0  # ReLU-like
    config = SimConfig()
    result, stats = simulate_matmul(
        sparse_weights, activations, pattern, config, compress_b=True
    )
    assert np.allclose(result, sparse_weights @ activations)
    dense_slots = sparse_weights.shape[0] * 64 * 16
    print(f"simulator        : exact; {stats.scheduled_products} of "
          f"{dense_slots} products scheduled "
          f"({stats.gated_macs} gated on zero activations)")

    # 5. Analytical EDP vs a dense accelerator.
    estimator = Estimator()
    workload = MatmulWorkload(
        m=1024, k=1024, n=1024,
        a=hss_operand(pattern), b=dense_operand(), name="quickstart",
    )
    dense = REGISTRY.create("TC").evaluate(workload, estimator)
    ours = REGISTRY.create("HighLight").evaluate(workload, estimator)
    print(f"EDP vs dense     : {dense.edp / ours.edp:.1f}x lower "
          f"({ours.cycles / dense.cycles:.2f}x cycles, "
          f"{ours.energy_pj / dense.energy_pj:.2f}x energy)")


if __name__ == "__main__":
    main()
