"""Walk through the paper's Sec. 6 micro-architecture example.

Recreates the exact running example of Figs. 9-12: a C1(2:4)->C0(2:4)
operand A row, its hierarchical CP metadata, the GLB layout, VFMU
shifting for dense and compressed operand B, hierarchical skipping, and
gating — printing every intermediate the figures show.

Run: ``python examples/microarchitecture_walkthrough.py``
"""

import numpy as np

from repro.compression import (
    decode_hierarchical_cp,
    encode_hierarchical_cp,
    encode_operand_b,
)
from repro.fibertree import from_dense, render
from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import parse_spec, sparsify
from repro.sparsity.hss import HSSPattern


def main() -> None:
    # --- the Fig. 5-style specification ---------------------------------
    spec = parse_spec("RS->C2->C1(3:4)->C0(2:4)")
    print(f"fibertree specification : {spec}")
    print(f"succinct form           : {spec.succinct()}")
    print(f"overall sparsity        : {spec.sparsity():.1%}\n")

    # --- Fig. 9: hierarchical CP for an operand A row --------------------
    pattern = HSSPattern.from_ratios((2, 4), (2, 4))
    row = np.array(
        [5, 0, 0, 3,   0, 0, 0, 0,   0, 7, 2, 0,   0, 0, 0, 0],
        dtype=float,
    )
    encoded = encode_hierarchical_cp(row, pattern)
    print("operand A row           :", row.astype(int).tolist())
    print("packed nonzeros         :", encoded.values.tolist())
    print("rank0 CP offsets        :", list(encoded.rank0_offsets))
    print("rank1 (group, position) :", list(encoded.rank1_offsets))
    print("metadata bits           :", encoded.metadata_bits)
    assert np.allclose(decode_hierarchical_cp(encoded), row)

    # --- a small fibertree rendering -------------------------------------
    tree = from_dense(row.reshape(4, 4), ("C1", "C0"))
    print("\nfibertree of the row (empty fibers pruned):")
    print(render(tree))

    # --- Fig. 12: compressed operand B metadata ---------------------------
    b_stream = np.array(
        [1, 0, 2, 0,  0, 3, 0, 0,  0, 0, 0, 4,  5, 6, 0, 0],
        dtype=float,
    )
    compressed = encode_operand_b(
        b_stream, rank0_block=4, rank1_block=1, set_size=4
    )
    print("\noperand B stream        :", b_stream.astype(int).tolist())
    print("stored nonzeros         :", compressed.values.tolist())
    print("per-set nonzero counts  :", list(compressed.set_counts))
    print("block end addresses     :", list(compressed.block_end_addresses))
    print("intra-block offsets     :", list(compressed.offsets))

    # --- the full down-sized pipeline -------------------------------------
    rng = np.random.default_rng(1)
    config = SimConfig()
    a = sparsify(rng.normal(size=(4, 32)), pattern)
    b = rng.normal(size=(32, 6))
    b[rng.random(b.shape) < 0.5] = 0.0
    result, stats = simulate_matmul(a, b, pattern, config, compress_b=True)
    assert np.allclose(result, a @ b)
    print(
        f"\ndown-sized HighLight    : exact result; "
        f"{stats.steps} steps, {stats.scheduled_products} scheduled "
        f"products\n"
        f"                          ({stats.full_macs} full MACs, "
        f"{stats.gated_macs} gated, "
        f"{stats.vfmu_skipped_fetches} GLB fetches skipped by the VFMU)"
    )


if __name__ == "__main__":
    main()
