"""Dual-side HSS (DSSO, paper Sec. 7.5) — modeled AND executed.

Two views of the same claim:

1. the analytical Fig. 17 comparison (DSSO 2x faster than HighLight at
   the commonly supported degrees, scaling with the activation H);
2. a functional execution: the alternating-dense-rank operands run
   through ``simulate_dsso_matmul`` with dense-sparse intersections at
   each rank — exact results and the multiplicative speedup, observed
   rather than modeled.

Run: ``python examples/dual_side_dsso.py``
"""

import numpy as np

from repro.eval import experiments as E
from repro.eval.reporting import render_fig17
from repro.sim import simulate_dsso_matmul
from repro.sparsity import HSSPattern, sparsify


def main() -> None:
    # --- analytical Fig. 17 --------------------------------------------
    print(render_fig17(E.fig17(size=512)))

    # --- functional execution -------------------------------------------
    rng = np.random.default_rng(0)
    pattern_a = HSSPattern.from_ratios((2, 4))          # weights C0(2:4)
    m, k, n = 8, 64, 8
    a = sparsify(rng.normal(size=(m, k)), pattern_a)

    print("\nExecuted dual-side runs (exact results):")
    for h in (2, 4, 8):
        pattern_b = HSSPattern.from_ratios((4, 4), (2, h))
        b = sparsify(rng.normal(size=(k, n)), pattern_b, axis=0)
        result, stats = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
        assert np.allclose(result, a @ b)
        print(
            f"  B C1(2:{h}): {stats.steps} steps, "
            f"{stats.rank1_blocks_skipped} blocks skipped, "
            f"{stats.speedup_vs_dense:.1f}x vs dense (exact: yes)"
        )
    print(
        "\nThe trade-off (Sec. 7.5): DSSO doubles throughput at the "
        "shared degrees\nbut supports fewer operand-B degrees, and "
        "producing HSS-formatted\nactivations on the fly needs hardware "
        "HighLight does not have."
    )


if __name__ == "__main__":
    main()
