"""The full prune-then-fine-tune pipeline on a real (small) model.

Reproduces the paper's Sec. 4.2 / 7.1.3 software story end-to-end on a
numpy MLP over synthetic data: train dense, statically mask to several
sparsity patterns (unstructured, 2:4, two-rank HSS, channel), fine-tune
with masked gradients, and compare how much accuracy each pattern
recovers at the same sparsity degree — more rigid structures recover
less, which is exactly the granularity trade-off Fig. 15 rests on.

Run: ``python examples/hss_pruning_pipeline.py``
"""

import copy

from repro.pruning import (
    ChannelScheme,
    HSSScheme,
    StructuredGHScheme,
    TrainConfig,
    UnstructuredScheme,
    make_blobs,
    prune_and_finetune,
    train_dense,
)
from repro.sparsity import HSSPattern


def main() -> None:
    config = TrainConfig(epochs=25)
    x, y = make_blobs(num_samples=3000)
    print("training the dense reference model ...")
    dense_model = train_dense(x, y, config)
    print(f"dense accuracy: {dense_model.accuracy(x, y):.1%}\n")

    # All schemes target (about) 75% sparsity.
    schemes = [
        UnstructuredScheme(0.75),
        HSSScheme(HSSPattern.from_ratios((2, 4), (2, 4))),
        StructuredGHScheme(1, 4),
        ChannelScheme(0.75),
    ]
    print(f"{'scheme':38s} {'sparsity':>9s} {'pruned':>8s} "
          f"{'finetuned':>9s} {'recovered':>9s}")
    for scheme in schemes:
        model = copy.deepcopy(dense_model)
        result = prune_and_finetune(model, scheme, x, y, config)
        print(
            f"{scheme.describe():38s} {result.weight_sparsity:9.1%} "
            f"{result.pruned_accuracy:8.1%} "
            f"{result.finetuned_accuracy:9.1%} "
            f"{result.recovered:+9.1%}"
        )
    print("\nNote how fine-tuning recovers most of the pruning damage, "
          "and how the two-rank HSS pattern tracks unstructured pruning "
          "far closer than the coarse channel structure.")


if __name__ == "__main__":
    main()
