"""Compare all five accelerators on real DNN layer mixes (paper Fig. 2).

Evaluates TC / STC / DSTC / S2TA / HighLight on every GEMM layer of
ResNet50 and Transformer-Big, each design running the accuracy-matched
sparsity flavor it supports (<0.5% accuracy loss), and prints per-model
normalized EDP — reproducing the paper's motivational result: neither
STC nor DSTC wins on both networks, while HighLight is lowest on both.

Run: ``python examples/dnn_accelerator_comparison.py``
"""

from repro.accelerators import REGISTRY, all_designs
from repro.dnn.models import all_models
from repro.energy import Estimator
from repro.eval.experiments import (
    DESIGN_LADDERS,
    evaluate_model,
    max_degree_within_loss,
    unstructured_degree_within_loss,
)


def main() -> None:
    estimator = Estimator()
    designs = all_designs()
    for model in all_models():
        print(f"\n=== {model.name} (activations "
              f"{model.activation_sparsity:.0%} sparse) ===")
        baseline = evaluate_model(
            REGISTRY.create("TC"), model, 0.0, estimator
        )
        assert baseline is not None
        for design in designs:
            if design.name == "DSTC":
                degree = unstructured_degree_within_loss(model)
            else:
                ladder, granularity = DESIGN_LADDERS[design.name]
                degree = max_degree_within_loss(model, ladder, granularity)
            evaluation = evaluate_model(design, model, degree, estimator)
            if evaluation is None:
                print(f"  {design.name:10s} cannot process this network "
                      f"(purely dense layers unsupported)")
                continue
            print(
                f"  {design.name:10s} weights {degree:6.1%} sparse -> "
                f"EDP {evaluation.edp / baseline.edp:6.3f}x, "
                f"energy {evaluation.total_energy_pj / baseline.total_energy_pj:5.2f}x, "
                f"latency {evaluation.total_cycles / baseline.total_cycles:5.2f}x"
            )


if __name__ == "__main__":
    main()
