"""HSS design-space exploration (paper Sec. 5 / Fig. 6).

Sweeps the number of HSS ranks and per-rank Hmax for hardware designs
that must support a target set of sparsity degrees, and reports each
design point's flexibility (supported degrees) against its muxing
sparsity tax — showing why multi-rank HSS designs dominate one-rank
designs, the observation HighLight is built on.

Run: ``python examples/design_space_exploration.py``
"""

from itertools import product

from repro.sparsity import GHRange, mux_cost, supported_degrees
from repro.sparsity.hss import fig6_designs


def main() -> None:
    print("Design points: rank families (lowest rank first), their")
    print("supported density degrees, and muxing tax (Secs. 5.2-5.3)\n")
    print(f"{'design':34s} {'degrees':>8s} {'min density':>12s} "
          f"{'mux tax':>8s} {'tax/degree':>11s}")

    candidates = []
    # One-rank designs with growing Hmax.
    for h_max in (4, 8, 12, 16):
        candidates.append((f"1-rank 2:{{2..{h_max}}}",
                           [GHRange(2, 2, h_max)]))
    # Two-rank designs: all combinations of small per-rank Hmax.
    for h0_max, h1_max in product((3, 4), (4, 6, 8)):
        candidates.append(
            (
                f"2-rank 2:{{2..{h0_max}}} x 2:{{2..{h1_max}}}",
                [GHRange(2, 2, h0_max), GHRange(2, 2, h1_max)],
            )
        )
    # A three-rank design.
    candidates.append(
        (
            "3-rank 2:{2..3} x 2:{2..3} x 2:{2..4}",
            [GHRange(2, 2, 3), GHRange(2, 2, 3), GHRange(2, 2, 4)],
        )
    )

    for name, families in candidates:
        degrees = supported_degrees(families)
        tax = mux_cost(families)
        print(
            f"{name:34s} {len(degrees):8d} {float(min(degrees)):12.3f} "
            f"{tax:8.1f} {tax / len(degrees):11.2f}"
        )

    design_s, design_ss = fig6_designs()
    ratio = mux_cost(design_s) / mux_cost(design_ss)
    print(
        "\nThe paper's Fig. 6 comparison: both S (1-rank, Hmax=16) and "
        "SS (2-rank,\nHmax=8/4) support "
        f"{len(supported_degrees(design_s))} degrees, but SS needs "
        f"{ratio:.1f}x less muxing overhead."
    )


if __name__ == "__main__":
    main()
