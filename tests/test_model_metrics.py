"""Tests for metrics, normalization and geomean gains."""

import pytest

from repro.errors import ModelError
from repro.model.metrics import Metrics, geomean_ratio, normalize


def make_metrics(energy=100.0, cycles=10.0, **kwargs):
    return Metrics(
        design="X",
        workload="w",
        cycles=cycles,
        energy_breakdown_pj={"macs": energy},
        **kwargs,
    )


class TestMetrics:
    def test_energy_sums_breakdown(self):
        metrics = Metrics(
            "X", "w", cycles=2.0,
            energy_breakdown_pj={"macs": 10.0, "glb": 5.0},
        )
        assert metrics.energy_pj == 15.0

    def test_edp(self):
        assert make_metrics(100.0, 10.0).edp == 1000.0

    def test_ed2(self):
        assert make_metrics(100.0, 10.0).ed2 == 10000.0

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ModelError):
            make_metrics(cycles=0.0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ModelError):
            make_metrics(utilization=1.5)

    def test_breakdown_by_category(self):
        metrics = Metrics(
            "X", "w", cycles=1.0,
            energy_breakdown_pj={"macs": 1.0, "glb_data": 2.0, "vfmu": 3.0},
        )
        buckets = metrics.breakdown_by_category(
            {"macs": "mac", "glb_data": "glb"}
        )
        assert buckets == {"mac": 1.0, "glb": 2.0, "other": 3.0}

    def test_default_flags(self):
        metrics = make_metrics()
        assert metrics.supported and not metrics.swapped


class TestNormalize:
    def test_ratio(self):
        assert normalize(2.0, 4.0) == 0.5

    def test_rejects_zero_baseline(self):
        with pytest.raises(ModelError):
            normalize(1.0, 0.0)


class TestGeomeanRatio:
    def test_gain_factor(self):
        ours = [make_metrics(50.0, 5.0), make_metrics(25.0, 5.0)]
        base = [make_metrics(100.0, 10.0), make_metrics(100.0, 10.0)]
        # EDP ratios: 1000/250 = 4 and 1000/125 = 8 -> geomean ~5.66
        assert geomean_ratio(ours, base) == pytest.approx(
            (4 * 8) ** 0.5
        )

    def test_other_metric(self):
        ours = [make_metrics(cycles=5.0)]
        base = [make_metrics(cycles=10.0)]
        assert geomean_ratio(ours, base, "cycles") == pytest.approx(2.0)

    def test_rejects_misaligned(self):
        with pytest.raises(ModelError):
            geomean_ratio([make_metrics()], [])
