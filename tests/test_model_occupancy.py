"""Tests for the statistical occupancy models."""

import math

import pytest

from repro.errors import ModelError
from repro.model.density import random_balance_utilization
from repro.model.occupancy import BinomialOccupancy, structured_occupancy


class TestBinomialBasics:
    def test_mean_variance(self):
        occ = BinomialOccupancy(8, 0.25)
        assert occ.mean == 2.0
        assert occ.variance == pytest.approx(8 * 0.25 * 0.75)

    def test_pmf_sums_to_one(self):
        occ = BinomialOccupancy(6, 0.4)
        assert sum(occ.pmf(k) for k in range(7)) == pytest.approx(1.0)

    def test_pmf_out_of_range(self):
        occ = BinomialOccupancy(4, 0.5)
        assert occ.pmf(-1) == 0.0
        assert occ.pmf(5) == 0.0

    def test_cdf_monotone(self):
        occ = BinomialOccupancy(8, 0.3)
        values = [occ.cdf(k) for k in range(9)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_cv_formula(self):
        occ = BinomialOccupancy(16, 0.25)
        assert occ.coefficient_of_variation == pytest.approx(
            math.sqrt(0.75 / (16 * 0.25))
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            BinomialOccupancy(0, 0.5)
        with pytest.raises(ModelError):
            BinomialOccupancy(4, 1.5)


class TestExpectedMax:
    def test_single_lane_is_mean(self):
        occ = BinomialOccupancy(8, 0.5)
        assert occ.expected_max_of(1) == pytest.approx(occ.mean)

    def test_grows_with_lanes(self):
        occ = BinomialOccupancy(8, 0.5)
        assert occ.expected_max_of(32) > occ.expected_max_of(2)

    def test_dense_max_is_slots(self):
        occ = BinomialOccupancy(8, 1.0)
        assert occ.expected_max_of(16) == pytest.approx(8.0)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ModelError):
            BinomialOccupancy(8, 0.5).expected_max_of(0)


class TestBalanceUtilization:
    def test_dense_perfect(self):
        assert BinomialOccupancy(8, 1.0).balance_utilization(32) == 1.0

    def test_degrades_with_sparsity(self):
        utils = [
            BinomialOccupancy(8, d).balance_utilization(32)
            for d in (0.9, 0.5, 0.25, 0.1)
        ]
        assert utils == sorted(utils, reverse=True)

    def test_zero_density_defined(self):
        assert BinomialOccupancy(8, 0.0).balance_utilization(32) == 1.0

    def test_tracks_analytic_curve_shape(self):
        """The closed-form DSTC curve and the exact binomial statistic
        agree on direction and rough magnitude."""
        for density in (0.25, 0.5, 0.75):
            exact = BinomialOccupancy(4, density).balance_utilization(32)
            curve = random_balance_utilization(density)
            assert abs(exact - curve) < 0.35
            assert (exact < 1.0) == (curve < 1.0)


class TestStructured:
    def test_degenerate_distribution(self):
        assert structured_occupancy(2) == [2]

    def test_rejects_bad_g(self):
        with pytest.raises(ModelError):
            structured_occupancy(0)
