"""Tests for the tiling/mapping search substrate."""

import pytest

from repro.errors import ModelError
from repro.model.mapping import (
    Mapping,
    best_mapping,
    dram_traffic_vs_glb,
    enumerate_mappings,
)
from repro.model.workload import (
    MatmulWorkload,
    dense_operand,
    unstructured_operand,
)

KB = 1024


def workload(m=1024, k=1024, n=1024, a_sparsity=0.0, b_sparsity=0.0):
    return MatmulWorkload(
        m=m, k=k, n=n,
        a=unstructured_operand(a_sparsity),
        b=unstructured_operand(b_sparsity),
    )


class TestMapping:
    def test_buffer_bytes(self):
        mapping = Mapping(32, 32, 1024, 1024, 1024, 1.0, 1.0)
        expected = (32 * 1024 + 1024 * 32 + 32 * 32) * 2
        assert mapping.buffer_bytes() == expected

    def test_dram_words_dense(self):
        mapping = Mapping(512, 512, 1024, 1024, 1024, 1.0, 1.0)
        # 2 tiles per dim: A read twice, B read twice, outputs once.
        assert mapping.dram_words() == 2 * 1024**2 + 2 * 1024**2 + 1024**2

    def test_density_reduces_traffic(self):
        dense = Mapping(512, 512, 1024, 1024, 1024, 1.0, 1.0)
        sparse = Mapping(512, 512, 1024, 1024, 1024, 0.25, 1.0)
        assert sparse.dram_words() < dense.dram_words()

    def test_num_tiles(self):
        assert Mapping(256, 512, 1024, 8, 1024, 1.0, 1.0).num_tiles == 8

    def test_rejects_bad_tiles(self):
        with pytest.raises(ModelError):
            Mapping(0, 32, 64, 64, 64, 1.0, 1.0)
        with pytest.raises(ModelError):
            Mapping(32, 128, 64, 64, 64, 1.0, 1.0)


class TestSearch:
    def test_all_enumerated_fit(self):
        for mapping in enumerate_mappings(workload(), 320 * KB):
            assert mapping.buffer_bytes() <= 320 * KB

    def test_best_minimizes_traffic(self):
        chosen = best_mapping(workload(), 320 * KB)
        for candidate in enumerate_mappings(workload(), 320 * KB):
            assert chosen.dram_words() <= candidate.dram_words()

    def test_bigger_glb_never_hurts(self):
        small = best_mapping(workload(), 64 * KB)
        large = best_mapping(workload(), 1024 * KB)
        assert large.dram_words() <= small.dram_words()

    def test_nothing_fits_tiny_glb(self):
        # Even a 1x1 tile needs the K-slices resident.
        assert best_mapping(workload(), 128) is None

    def test_compression_unlocks_larger_tiles(self):
        """Sparse (compressed) operands fit larger tiles in the same
        GLB — the storage-side win of compression."""
        dense_choice = best_mapping(workload(), 128 * KB)
        sparse_choice = best_mapping(
            workload(a_sparsity=0.75, b_sparsity=0.75), 128 * KB
        )
        assert sparse_choice.dram_words() < dense_choice.dram_words()

    def test_traffic_curve_monotone(self):
        sizes = [64 * KB, 128 * KB, 320 * KB, 2048 * KB]
        curve = dram_traffic_vs_glb(workload(), sizes)
        assert curve == sorted(curve, reverse=True)

    def test_traffic_curve_raises_when_unmappable(self):
        with pytest.raises(ModelError):
            dram_traffic_vs_glb(workload(), [128])

    def test_rejects_bad_glb(self):
        with pytest.raises(ModelError):
            list(enumerate_mappings(workload(), 0))
