"""The vectorized batch-evaluation path (`repro.model.batch` and the
designs' ``evaluate_batch``).

The batch path's contract is *bit-exactness* against the scalar
reference implementation — every assertion here is ``==``, never
``approx``: cycles, utilization, energy breakdown values *and* key
order, derived energy/EDP, and the strings riding on Metrics. The
equivalence classes cover the full Fig. 13 degree grid (both
orientations, supported and unsupported realizations) plus real DNN
layer shapes for all six designs.
"""

from __future__ import annotations

import itertools
import json
import math

import numpy as np
import pytest

import repro.accelerators  # noqa: F401 - populates the registry
from repro.accelerators.base import evaluate_workloads_batch
from repro.accelerators.registry import REGISTRY
from repro.dnn.models import deit_small
from repro.eval import codec
from repro.energy.estimator import Estimator
from repro.errors import ModelError
from repro.eval.cache import MISS, PersistentCache
from repro.eval.engine import SweepEngine
from repro.eval.harness import realize_workloads
from repro.model.batch import ActivityMatrix, WorkloadBatch, as_vector
from repro.model.workload import MatmulWorkload, synthetic_workload

A_DEGREES = (0.0, 0.5, 0.625, 0.75)
B_DEGREES = (0.0, 0.25, 0.5, 0.75, 0.875)

BATCH_DESIGNS = tuple(
    name for name in REGISTRY.names()
    if REGISTRY.shared(name).batch_capable
)


@pytest.fixture(scope="module")
def estimator():
    return Estimator()


def _grid_workloads(design_name):
    """Every realization of the synthetic degree grid plus a few DeiT
    layer shapes — the workload population a real sweep feeds the
    engine for one design."""
    workloads = []
    for (m, k, n), da, db in itertools.product(
        [(64, 128, 96), (256, 256, 256)], A_DEGREES, B_DEGREES
    ):
        workloads.extend(
            realize_workloads(design_name, da, db, m, k, n)
        )
    for layer in deit_small().layers[:3]:
        m, k, n = layer.gemm_shape()
        workloads.extend(
            realize_workloads(design_name, 0.5, 0.75, m, k, n)
        )
    return workloads


def _assert_identical(scalar, batch):
    assert (scalar is None) == (batch is None)
    if scalar is None:
        return
    assert scalar.design == batch.design
    assert scalar.workload == batch.workload
    assert scalar.cycles == batch.cycles
    assert scalar.utilization == batch.utilization
    # Key order matters: breakdowns are rendered and serialized in
    # insertion order, so dict equality alone would under-assert.
    assert list(scalar.energy_breakdown_pj.items()) == list(
        batch.energy_breakdown_pj.items()
    )
    assert scalar.energy_pj == batch.energy_pj
    assert scalar.edp == batch.edp
    assert scalar.ed2 == batch.ed2
    assert scalar.supported == batch.supported
    assert scalar.swapped == batch.swapped


class TestGoldenEquivalence:
    """evaluate_workloads_batch == the scalar path, bit for bit."""

    @pytest.mark.parametrize("design_name", BATCH_DESIGNS)
    def test_grid_and_dnn_shapes(self, design_name, estimator):
        design = REGISTRY.create(design_name)
        workloads = _grid_workloads(design_name)
        assert workloads  # the grid must exercise the design
        scalar = [
            design.evaluate(w, estimator)
            if design.supports(w) else None
            for w in workloads
        ]
        batch = evaluate_workloads_batch(design, workloads, estimator)
        assert len(batch) == len(scalar)
        for s, b in zip(scalar, batch):
            _assert_identical(s, b)

    @pytest.mark.parametrize("design_name", BATCH_DESIGNS)
    def test_single_workload_batch(self, design_name, estimator):
        """Batch size 1 is the scalar case in batch clothing."""
        design = REGISTRY.create(design_name)
        for workload in _grid_workloads(design_name):
            if design.supports(workload):
                break
        else:
            pytest.skip("no supported realization")
        (batch,) = evaluate_workloads_batch(
            design, [workload], estimator
        )
        _assert_identical(design.evaluate(workload, estimator), batch)

    def test_all_main_designs_are_batch_capable(self):
        assert set(BATCH_DESIGNS) == set(REGISTRY.names())


class TestEngineBatchPath:
    """The engine routes misses through the batch path and the result
    is indistinguishable from the scalar route — in-memory, on disk,
    and in the stats."""

    GRID = dict(
        designs=("TC", "STC", "HighLight"),
        a_degrees=(0.0, 0.5, 0.75),
        b_degrees=(0.0, 0.5),
        m=64, k=64, n=64,
    )

    def _sweep_payload(self, tmp_path, use_batch, jobs=1,
                       backend="thread"):
        estimator = Estimator()
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        engine = SweepEngine(
            estimator, cache=cache, use_batch=use_batch,
            jobs=jobs, backend=backend,
        )
        sweep = engine.sweep(**self.GRID)
        engine.close()
        payload = {
            cell_key: {
                design: None if m is None else (
                    m.cycles, m.energy_pj, m.workload,
                    list(m.energy_breakdown_pj.items()),
                )
                for design, m in cell.items()
            }
            for cell_key, cell in (
                (str(key), value)
                for key, value in sweep.cells.items()
            )
        }
        return payload, cache.path.read_bytes(), engine.stats

    def test_batch_and_scalar_routes_are_byte_identical(self, tmp_path):
        batch_payload, batch_file, batch_stats = self._sweep_payload(
            tmp_path / "batch", use_batch=True
        )
        scalar_payload, scalar_file, scalar_stats = self._sweep_payload(
            tmp_path / "scalar", use_batch=False
        )
        assert json.dumps(batch_payload, sort_keys=True) == json.dumps(
            scalar_payload, sort_keys=True
        )
        # The batch route records misses grouped by design, so the two
        # files may list entries in a different order — but digest for
        # digest the encoded blobs must match byte for byte.
        batch_data = json.loads(batch_file)
        scalar_data = json.loads(scalar_file)
        assert batch_data["fingerprint"] == scalar_data["fingerprint"]
        batch_raw = codec.raw_from_columns(batch_data["columns"])
        scalar_raw = codec.raw_from_columns(scalar_data["columns"])
        assert batch_raw == scalar_raw
        assert batch_stats.misses == scalar_stats.misses
        assert batch_stats.hits == scalar_stats.hits

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_parallel_backends_match_scalar(self, tmp_path, backend):
        """--jobs 4 over either worker backend must be indistinguishable
        from the sequential scalar route: same payload floats, and the
        persisted cache files must carry byte-identical blobs."""
        parallel_payload, parallel_file, parallel_stats = (
            self._sweep_payload(
                tmp_path / backend, use_batch=True,
                jobs=4, backend=backend,
            )
        )
        scalar_payload, scalar_file, scalar_stats = self._sweep_payload(
            tmp_path / "scalar", use_batch=False
        )
        assert json.dumps(parallel_payload, sort_keys=True) == json.dumps(
            scalar_payload, sort_keys=True
        )
        parallel_raw = codec.raw_from_columns(
            json.loads(parallel_file)["columns"]
        )
        scalar_raw = codec.raw_from_columns(
            json.loads(scalar_file)["columns"]
        )
        assert parallel_raw == scalar_raw
        assert parallel_stats.misses == scalar_stats.misses

    def test_interrupt_mid_batch_keeps_completed_chunks(
        self, tmp_path, monkeypatch
    ):
        """A kill between batch chunks must leave every *completed*
        chunk recorded in the persistent cache — the chunk bound is the
        interrupt-durability granularity."""
        estimator = Estimator()
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        engine = SweepEngine(estimator, cache=cache, use_batch=True)
        engine.batch_chunk_rows = 4
        workloads = [
            synthetic_workload(0.5, 0.25, size=16 * (i + 1))
            for i in range(12)
        ]
        pairs = [("HighLight", w) for w in workloads]
        original = SweepEngine._evaluate_batch_chunk
        calls = []

        def bomb(self, design, chunk, stack):
            calls.append(len(chunk))
            if len(calls) == 3:
                raise KeyboardInterrupt
            return original(self, design, chunk, stack)

        monkeypatch.setattr(SweepEngine, "_evaluate_batch_chunk", bomb)
        with pytest.raises(KeyboardInterrupt):
            engine.evaluate_workloads(pairs)
        assert calls == [4, 4, 4]
        # The failure path flushed; a fresh cache must see exactly the
        # first two chunks' entries (plan order = submission order).
        fresh = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        keys = [("HighLight", w.key()) for w in workloads]
        probed = fresh.get_many(keys)
        assert [entry is not MISS for entry in probed] == (
            [True] * 8 + [False] * 4
        )

    def test_non_batch_capable_design_falls_back(self, monkeypatch):
        engine = SweepEngine(Estimator())
        design_cls = type(engine.design("TC"))
        monkeypatch.setattr(design_cls, "batch_capable", False)
        workload = synthetic_workload(0.0, 0.0, size=64)
        (metrics,) = engine.evaluate_workloads([("TC", workload)])
        # The engine caches content-keyed (name-stripped) workloads,
        # so compare against the stripped scalar evaluation.
        reference = REGISTRY.create("TC").evaluate(
            workload.stripped, engine.estimator
        )
        _assert_identical(reference, metrics)

    def test_batch_results_hit_like_scalar_results(self):
        engine = SweepEngine(Estimator())
        workload = synthetic_workload(0.5, 0.5, size=64)
        first = engine.evaluate_workloads([("HighLight", workload)])
        second = engine.evaluate_workloads([("HighLight", workload)])
        assert first[0] is second[0]
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1


class TestWorkloadBatch:
    def test_rejects_empty(self):
        with pytest.raises(ModelError, match="at least one workload"):
            WorkloadBatch.from_workloads([])

    def test_stacked_arrays_mirror_workloads(self):
        workloads = [
            synthetic_workload(0.5, 0.25, size=64),
            synthetic_workload(0.0, 0.75, size=128),
        ]
        batch = WorkloadBatch.from_workloads(workloads)
        assert len(batch) == 2
        assert batch.m.tolist() == [64, 128]
        assert batch.dense_products.tolist() == [
            float(64 ** 3), float(128 ** 3)
        ]
        assert batch.mk.tolist() == [float(64 * 64), float(128 * 128)]
        assert batch.a_density.tolist() == [
            w.a.density for w in workloads
        ]

    def test_descriptions_match_scalar_describe(self):
        workloads = _grid_workloads("HighLight")[:8]
        batch = WorkloadBatch.from_workloads(workloads)
        assert batch.descriptions == [
            w.describe() for w in workloads
        ]

    def test_subset_preserves_order(self):
        workloads = [
            synthetic_workload(0.5, 0.25, size=s) for s in (32, 64, 96)
        ]
        sub = WorkloadBatch.from_workloads(workloads).subset([2, 0])
        assert [w.m for w in sub.workloads] == [96, 32]


class TestActivityMatrix:
    @pytest.fixture()
    def arch(self):
        return REGISTRY.shared("TC").resources.arch

    def test_scalar_counts_broadcast(self):
        matrix = ActivityMatrix(3)
        matrix.add("macs", "mac", 5.0)
        matrix.add("macs", "mac", np.array([1.0, 2.0, 3.0]))
        assert matrix.counts[("macs", "mac")].tolist() == [
            6.0, 7.0, 8.0
        ]

    def test_rejects_non_positive_size(self):
        with pytest.raises(ModelError, match="batch size"):
            ActivityMatrix(0)

    def test_totals_match_row_sums_exactly(self, arch, estimator):
        matrix = ActivityMatrix(2)
        matrix.add("macs", "mac", np.array([10.0, 0.0]))
        matrix.add("glb_data", "read", np.array([3.0, 4.0]))
        matrix.add("glb_data", "write", 2.0)
        rows, totals = matrix.energy_rows(arch, estimator)
        assert len(rows) == 2
        for row, total in zip(rows, totals.tolist()):
            assert total == sum(row.values())

    def test_zero_count_events_absent_from_row(self, arch, estimator):
        """The scalar accumulator's presence rule: an event appears in
        a workload's breakdown iff its count is > 0."""
        matrix = ActivityMatrix(2)
        matrix.add("macs", "mac", np.array([10.0, 0.0]))
        matrix.add("glb_data", "read", 1.0)
        rows, _ = matrix.energy_rows(arch, estimator)
        assert "macs" in rows[0]
        assert "macs" not in rows[1]
        assert "glb_data" in rows[1]

    @pytest.mark.parametrize(
        "poison", (math.nan, math.inf, -1.0), ids=("nan", "inf", "neg")
    )
    def test_invalid_accumulated_counts_raise_at_energy_rows(
        self, arch, estimator, poison
    ):
        """Validation is deferred from add() to materialization, but
        poisoned counts still surface before any Metrics exist."""
        matrix = ActivityMatrix(2)
        matrix.add("macs", "mac", np.array([1.0, poison]))
        with pytest.raises(ModelError, match="invalid count for macs.mac"):
            matrix.energy_rows(arch, estimator)

    def test_as_vector_broadcasts_scalars(self):
        assert as_vector(2.5, 3).tolist() == [2.5, 2.5, 2.5]
        vec = np.array([1.0, 2.0])
        assert as_vector(vec, 2) is vec


class TestEstimatorVector:
    def test_energy_vector_matches_energy_pj(self, estimator):
        arch = REGISTRY.shared("HighLight").resources.arch
        pairs = [
            (arch.component("macs"), "mac"),
            (arch.component("glb_data"), "read"),
            (arch.component("glb_data"), "write"),
            (arch.component("rf"), "read"),
        ]
        vector = estimator.energy_vector(pairs)
        assert vector.dtype == np.float64
        assert vector.tolist() == [
            estimator.energy_pj(component, action)
            for component, action in pairs
        ]

    def test_default_estimators_share_setup(self):
        """Default-constructed estimators share one table and plugin
        set, so identity-keyed caches hit across instances."""
        first, second = Estimator(), Estimator()
        assert first.table is second.table


class TestSharedRegistryInstances:
    def test_shared_is_memoized_create_is_not(self):
        assert REGISTRY.shared("TC") is REGISTRY.shared("TC")
        assert REGISTRY.create("TC") is not REGISTRY.create("TC")
        assert type(REGISTRY.create("TC")) is type(REGISTRY.shared("TC"))


class TestStrippedWorkload:
    def test_stripped_drops_name_keeps_key(self):
        named = synthetic_workload(0.5, 0.25, size=64)
        assert named.name
        bare = named.stripped
        assert bare.name == ""
        assert bare.key() == named.key()
        assert bare.stripped is bare

    def test_nameless_workload_is_its_own_stripped(self):
        w = synthetic_workload(0.5, 0.25, size=64)
        bare = MatmulWorkload(m=w.m, k=w.k, n=w.n, a=w.a, b=w.b)
        assert bare.stripped is bare
