"""Tests for the experiment registry (one class per figure/table)."""

import pytest

from repro.eval import experiments as E


@pytest.fixture(scope="module")
def sweep(estimator):
    return E.fig13(estimator)


@pytest.fixture(scope="module")
def pareto(estimator):
    return E.fig15(estimator)


class TestFig13:
    def test_grid_shape(self, sweep):
        assert len(sweep.cells) == len(E.A_DEGREES) * len(E.B_DEGREES)
        assert sweep.design_order == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )

    def test_baseline_normalizes_to_one(self, sweep):
        for row in sweep.normalized("edp").values():
            assert row["TC"] == pytest.approx(1.0)

    def test_s2ta_unsupported_on_dense_cells(self, sweep):
        normalized = sweep.normalized("edp")
        assert normalized[(0.0, 0.0)]["S2TA"] is None
        assert normalized[(0.0, 0.25)]["S2TA"] is None
        assert normalized[(0.5, 0.0)]["S2TA"] is not None

    def test_highlight_best_edp_every_cell(self, sweep):
        """The paper's headline: HighLight always achieves the best
        EDP (2% tolerance for parity cells)."""
        for cell, row in sweep.normalized("edp").items():
            ours = row["HighLight"]
            for design, value in row.items():
                if design == "HighLight" or value is None:
                    continue
                assert ours <= value * 1.02, (cell, design)

    def test_highlight_dense_parity(self, sweep):
        dense = sweep.normalized("edp")[(0.0, 0.0)]["HighLight"]
        assert dense == pytest.approx(1.0, abs=0.02)

    def test_stc_capped_at_2x_speed(self, sweep):
        cycles = sweep.normalized("cycles")
        assert cycles[(0.75, 0.0)]["STC"] == pytest.approx(0.5)

    def test_highlight_structured_speedups(self, sweep):
        cycles = sweep.normalized("cycles")
        assert cycles[(0.5, 0.0)]["HighLight"] == pytest.approx(0.5)
        assert cycles[(0.75, 0.0)]["HighLight"] == pytest.approx(0.25)

    def test_dstc_worse_than_dense_at_low_sparsity(self, sweep):
        edp = sweep.normalized("edp")
        assert edp[(0.0, 0.0)]["DSTC"] > 1.0
        assert edp[(0.0, 0.25)]["DSTC"] > 1.0

    def test_dstc_wins_speed_at_high_sparsity(self, sweep):
        cycles = sweep.normalized("cycles")
        assert cycles[(0.75, 0.75)]["DSTC"] < cycles[(0.75, 0.75)][
            "HighLight"
        ]


class TestFig14:
    def test_highlight_best_geomean_all_metrics(self, sweep):
        geomeans = E.fig14(sweep).geomeans
        for metric in ("edp", "ed2"):
            per_design = geomeans[metric]
            best = min(
                value for key, value in per_design.items()
            )
            assert per_design["HighLight"] == best

    def test_headline_gains(self, sweep):
        """Geomean ~6.4x / up to ~20.4x vs dense; geomean ~2.7x vs the
        sparse baselines (we accept the same order of magnitude)."""
        geomean_tc, max_tc = sweep.gain_over("TC")
        assert 5.0 <= geomean_tc <= 8.0
        assert 15.0 <= max_tc <= 30.0
        sparse_geomeans = [
            sweep.gain_over(design)[0]
            for design in ("STC", "DSTC", "S2TA")
        ]
        combined = (
            sparse_geomeans[0] * sparse_geomeans[1] * sparse_geomeans[2]
        ) ** (1 / 3)
        assert 2.0 <= combined <= 4.0

    def test_all_gains_at_least_parity(self, sweep):
        for design in ("STC", "DSTC", "S2TA"):
            geomean, _ = sweep.gain_over(design)
            assert geomean >= 1.0


class TestFig2(object):
    @pytest.fixture(scope="class")
    def result(self, estimator):
        return E.fig2(estimator)

    def test_models_evaluated(self, result):
        assert set(result.results) == {"ResNet50", "Transformer-Big"}

    def test_stc_beats_dstc_on_transformer(self, result):
        per_design = result.results["Transformer-Big"]
        assert per_design["STC"][1] < per_design["DSTC"][1]

    def test_dstc_beats_stc_on_resnet(self, result):
        per_design = result.results["ResNet50"]
        assert per_design["DSTC"][1] < per_design["STC"][1]

    def test_highlight_lowest_on_both(self, result):
        for per_design in result.results.values():
            highlight = per_design["HighLight"][1]
            for design, (_, edp) in per_design.items():
                assert highlight <= edp + 1e-12, design

    def test_accuracy_matched_degrees(self, result):
        """ResNet50 prunes harder than Transformer-Big at <0.5% loss."""
        resnet = result.results["ResNet50"]
        transformer = result.results["Transformer-Big"]
        assert resnet["DSTC"][0] > transformer["DSTC"][0]
        assert resnet["HighLight"][0] >= transformer["HighLight"][0]

    def test_per_layer_bars_present(self, result):
        for model, per_design in result.per_layer.items():
            for design, bars in per_design.items():
                assert len(bars) > 0

    def test_none_baseline_raises_explicitly(self, monkeypatch):
        """A None TC baseline must raise an EvaluationError, not rely
        on ``assert`` (stripped under ``python -O``, where it would
        surface later as an AttributeError on ``baseline.edp``)."""
        from repro.errors import EvaluationError, ReproError

        def unsupported_sweep(model, designs=None, degrees=None,
                              ctx=None, profile=None):
            grid = {name: tuple(degrees[name]) for name in designs}
            return E.ModelSweepResult(
                model=model.name,
                design_order=tuple(designs),
                degrees=grid,
                evaluations={
                    (name, degree): None
                    for name, ladder in grid.items()
                    for degree in ladder
                },
                baseline=("TC", grid["TC"][0]),
            )

        monkeypatch.setattr(E, "sweep_model", unsupported_sweep)
        with pytest.raises(EvaluationError, match="TC baseline"):
            E.fig2()
        assert issubclass(EvaluationError, ReproError)


class TestFig15:
    def test_highlight_on_all_frontiers(self, pareto):
        for model in pareto.points:
            assert pareto.highlight_on_frontier(model)

    def test_s2ta_absent_from_attention_models(self, pareto):
        for model in ("DeiT-small", "Transformer-Big"):
            designs = {p.design for p in pareto.points[model]}
            assert "S2TA" not in designs

    def test_s2ta_present_on_resnet(self, pareto):
        designs = {p.design for p in pareto.points["ResNet50"]}
        assert "S2TA" in designs

    def test_dstc_worse_than_dense_on_compact_models(self, pareto):
        """DSTC can introduce worse-than-dense EDP (Sec. 7.3)."""
        deit_points = [
            p for p in pareto.points["DeiT-small"] if p.design == "DSTC"
        ]
        assert any(p.normalized_edp > 1.0 for p in deit_points)

    def test_loss_grows_with_sparsity(self, pareto):
        for model, points in pareto.points.items():
            highlight = sorted(
                (p for p in points if p.design == "HighLight"),
                key=lambda p: p.weight_sparsity,
            )
            losses = [p.accuracy_loss_pct for p in highlight]
            assert losses == sorted(losses)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self, estimator):
        return E.fig16(estimator)

    def test_saf_area_share_near_5_7(self, result):
        assert result.highlight_saf_area_fraction == pytest.approx(
            0.057, abs=0.015
        )

    def test_highlight_lowest_energy(self, result):
        totals = {
            design: sum(buckets.values())
            for design, buckets in result.energy_breakdown.items()
        }
        assert totals["HighLight"] == min(totals.values())

    def test_dstc_rf_dominated(self, result):
        """DSTC's accumulation traffic dominates its energy."""
        buckets = result.energy_breakdown["DSTC"]
        assert buckets["rf"] == max(buckets.values())

    def test_highlight_saf_energy_small(self, result):
        buckets = result.energy_breakdown["HighLight"]
        assert buckets["saf"] / sum(buckets.values()) < 0.05

    def test_tc_has_no_saf_energy(self, result):
        assert result.energy_breakdown["TC"].get("saf", 0.0) == 0.0


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self, estimator):
        return E.fig17(estimator, size=256)

    def test_h_range(self, result):
        assert sorted(result.speeds) == list(range(2, 9))

    def test_highlight_flat_2x(self, result):
        for highlight_speed, _ in result.speeds.values():
            assert highlight_speed == pytest.approx(2.0)

    def test_dsso_speed_scales_with_h(self, result):
        for h, (_, dsso_speed) in result.speeds.items():
            assert dsso_speed == pytest.approx(h)

    def test_dsso_2x_at_common_degree(self, result):
        """The paper's headline: 2x at the commonly supported 2:4."""
        assert result.dsso_gain(4) == pytest.approx(2.0)


class TestFig6:
    def test_fifteen_degrees_each(self):
        result = E.fig6()
        for curve in result.latency_curves.values():
            assert len(curve) == 15

    def test_overhead_ratio_above_2(self):
        assert E.fig6().overhead_ratio > 2.0

    def test_latency_equals_density(self):
        result = E.fig6()
        for curve in result.latency_curves.values():
            for density, latency in curve:
                assert latency == pytest.approx(density)


class TestTables:
    def test_table1_rows(self):
        rows = E.table1()
        assert len(rows) == 5
        assert rows[-1]["design"] == "HighLight"
        assert rows[-1]["sparsity_tax"] == "Low"

    def test_table2_matches_library(self):
        rows = E.table2()
        assert len(rows) == 7
        assert any("3:4" in row["fibertree"] for row in rows)

    def test_table3_lists_all_designs(self):
        designs = [row["design"] for row in E.table3()]
        assert designs == ["TC", "STC", "DSTC", "S2TA", "HighLight"]

    def test_table3_highlight_patterns(self):
        rows = {row["design"]: row["patterns"] for row in E.table3()}
        assert "C1(4:{4<=H<=8})" in rows["HighLight"]
        assert "unstructured" in rows["DSTC"]

    def test_table3_dsso_row(self):
        row = E.table3_dsso()
        assert "C1(2:{2<=H<=8})" in row["patterns"]

    def test_table1_saf_inventory(self):
        rows = {r["design"]: r for r in E.table1_saf_inventory()}
        assert rows["TC"]["safs"] == "none"
        assert "gating" in rows["HighLight"]["safs"]
        assert rows["HighLight"]["static_balance"] == "True"
        assert rows["DSTC"]["static_balance"] == "False"

    def test_table4_resources(self):
        rows = {row["design"]: row for row in E.table_4()}
        assert rows["TC"]["glb_data_kb"] == 320
        assert rows["HighLight"]["glb_meta_kb"] == 64
        assert all(row["macs"] == 1024 for row in rows.values())
