"""Tests for user-defined layer tables (``sweep --model-file``)."""

import json

import pytest

from repro.dnn.layers import ConvLayer, LinearLayer
from repro.dnn.models import (
    MODEL_BUILDERS,
    get_model,
    load_model_file,
    model_from_dict,
    register_model,
)
from repro.errors import WorkloadError

VALID = {
    "name": "TableNet",
    "activation_sparsity": 0.2,
    "prunability": 0.6,
    "layers": [
        {"type": "linear", "name": "fc1", "in_features": 64,
         "out_features": 128, "tokens": 32, "repeats": 2},
        {"type": "conv", "name": "c1", "in_channels": 8,
         "out_channels": 16, "kernel": 3, "input_size": 16,
         "stride": 1, "padding": 1},
    ],
    "prunable": ["fc1"],
}


def _copy():
    return json.loads(json.dumps(VALID))


class TestModelFromDict:
    def test_valid_table(self):
        model = model_from_dict(VALID)
        assert model.name == "TableNet"
        assert isinstance(model.layers[0], LinearLayer)
        assert isinstance(model.layers[1], ConvLayer)
        assert model.prunable == ("fc1",)
        assert model.activation_sparsity == pytest.approx(0.2)
        assert model.layers[0].repeats == 2

    def test_defaults_applied(self):
        data = _copy()
        del data["activation_sparsity"]
        del data["prunability"]
        del data["prunable"]
        model = model_from_dict(data)
        assert model.activation_sparsity == 0.0
        assert model.prunable == ("fc1", "c1")

    def test_missing_toplevel_field(self):
        data = _copy()
        del data["layers"]
        with pytest.raises(WorkloadError, match="missing field"):
            model_from_dict(data)

    def test_unknown_toplevel_field(self):
        data = _copy()
        data["optimizer"] = "sgd"
        with pytest.raises(WorkloadError, match="unknown field"):
            model_from_dict(data)

    def test_missing_layer_field_names_required_set(self):
        data = _copy()
        del data["layers"][0]["in_features"]
        with pytest.raises(WorkloadError) as info:
            model_from_dict(data)
        assert "in_features" in str(info.value)
        assert "required" in str(info.value)

    def test_unknown_layer_type(self):
        data = _copy()
        data["layers"][0]["type"] = "attention"
        with pytest.raises(WorkloadError, match="conv"):
            model_from_dict(data)

    def test_non_integer_shape_rejected(self):
        data = _copy()
        data["layers"][0]["in_features"] = "sixty-four"
        with pytest.raises(WorkloadError, match="integer"):
            model_from_dict(data)

    def test_duplicate_layer_names_rejected(self):
        data = _copy()
        data["layers"][1]["name"] = "fc1"
        with pytest.raises(WorkloadError, match="duplicate"):
            model_from_dict(data)

    def test_prunable_must_name_real_layers(self):
        data = _copy()
        data["prunable"] = ["fc1", "ghost"]
        with pytest.raises(WorkloadError, match="ghost"):
            model_from_dict(data)

    def test_layer_constraints_still_apply(self):
        data = _copy()
        data["layers"][1]["groups"] = 3  # 8 % 3 != 0
        with pytest.raises(WorkloadError, match="groups"):
            model_from_dict(data)


class TestPaddingValidation:
    def test_negative_padding_rejected(self):
        data = _copy()
        data["layers"][1]["padding"] = -1
        with pytest.raises(WorkloadError, match="padding"):
            model_from_dict(data)

    def test_fractional_padding_rejected(self):
        data = _copy()
        data["layers"][1]["padding"] = 1.5
        with pytest.raises(WorkloadError, match="must be an integer"):
            model_from_dict(data)


class TestLoadModelFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(VALID))
        assert load_model_file(path).name == "TableNet"

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "net.json"
        data = _copy()
        del data["name"]
        path.write_text(json.dumps(data))
        with pytest.raises(WorkloadError, match="net.json"):
            load_model_file(path)

    def test_invalid_json_is_loud(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text("{oops")
        with pytest.raises(WorkloadError, match="not valid JSON"):
            load_model_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            load_model_file(tmp_path / "nope.json")


class TestRegisterModel:
    def test_registered_model_resolves_by_name(self):
        model = model_from_dict(VALID)
        try:
            register_model(model)
            assert get_model("tablenet").name == "TableNet"
        finally:
            MODEL_BUILDERS.pop("TableNet", None)

    def test_shadowing_requires_replace(self):
        model = model_from_dict(VALID)
        try:
            register_model(model)
            with pytest.raises(WorkloadError, match="already registered"):
                register_model(model)
            register_model(model, replace=True)
        finally:
            MODEL_BUILDERS.pop("TableNet", None)

    def test_collision_check_is_case_insensitive(self):
        """get_model resolves case-insensitively, so a case-variant
        that registered would be unreachable — the collision check
        must catch it."""
        data = _copy()
        try:
            register_model(model_from_dict(data))
            data["name"] = "tablenet"
            with pytest.raises(WorkloadError, match="already registered"):
                register_model(model_from_dict(data))
        finally:
            MODEL_BUILDERS.pop("TableNet", None)

    def test_replace_drops_the_old_case_variant(self):
        """Replacing under a new spelling must not leave two
        case-variant keys behind (one would be unreachable)."""
        data = _copy()
        try:
            register_model(model_from_dict(data))
            data["name"] = "TABLENET"
            register_model(model_from_dict(data), replace=True)
            assert "TableNet" not in MODEL_BUILDERS
            assert get_model("tablenet").name == "TABLENET"
        finally:
            MODEL_BUILDERS.pop("TABLENET", None)
            MODEL_BUILDERS.pop("TableNet", None)

    @pytest.mark.parametrize(
        "name", ["ResNet50", "resnet50", "DEIT-SMALL"]
    )
    def test_builtins_cannot_be_shadowed(self, name):
        """Builtins are refused outright — replace=True does not
        override, and every case variant is caught."""
        data = _copy()
        data["name"] = name
        model = model_from_dict(data)
        for replace in (False, True):
            with pytest.raises(WorkloadError, match="built-in"):
                register_model(model, replace=replace)
        assert name not in MODEL_BUILDERS or name == "ResNet50"

    def test_builtin_inventory(self):
        from repro.dnn.models import BUILTIN_MODELS, is_builtin_model

        assert BUILTIN_MODELS == (
            "ResNet50", "DeiT-small", "Transformer-Big",
            "EfficientNet-B0",
        )
        assert is_builtin_model("efficientnet-b0")
        assert not is_builtin_model("TableNet")
