"""Tests for ``repro serve``: protocol, coalescing, streams, shutdown.

The async tests drive :class:`~repro.serve.server.EvaluationService`
directly via ``start()``/``aclose()`` on ``port=0`` inside
``asyncio.run`` (no async test plugin needed); one subprocess test
exercises the real ``python -m repro serve`` entry point end to end,
SIGTERM included.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.accelerators import main_design_names
from repro.errors import ServeError
from repro.eval import cache as cache_mod
from repro.eval import experiments as E
from repro.eval.artifacts import (
    ArtifactFinished,
    ArtifactRegistry,
    RunPlan,
    artifact,
    finished_event_line,
)
from repro.eval.engine import EngineContext, SweepResult
from repro.serve import protocol
from repro.serve.server import EvaluationService

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A small valid inline model table (the ``--model-file`` schema).
MODEL_TABLE = {
    "name": "ServeNet",
    "layers": [
        {"type": "linear", "name": "fc1", "in_features": 32,
         "out_features": 32, "tokens": 8},
    ],
}


def run_async(coro, timeout=240):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def http_bytes(port, payload):
    """Send raw bytes to the server, return (status, body-after-head)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        data = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), body


async def request(port, method, path, body=None):
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode("latin-1")
    return await http_bytes(port, head + payload)


def ndjson(body):
    """Close-delimited NDJSON body -> list of decoded objects."""
    return [
        json.loads(line)
        for line in body.decode("utf-8").splitlines()
        if line
    ]


async def poll(condition, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if condition():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not met before timeout")


# ----------------------------------------------------------------------
# Spec validation + canonical digests (pure, no server)
# ----------------------------------------------------------------------


class TestArtifactsSpec:
    def test_all_and_explicit_list_share_a_digest(self):
        from repro.eval.artifacts import ARTIFACTS

        spec_all = protocol.parse_artifacts_spec({"artifacts": "all"})
        explicit = protocol.parse_artifacts_spec(
            {"artifacts": list(ARTIFACTS.names())}
        )
        assert spec_all.names == ARTIFACTS.names()
        assert spec_all.digest == explicit.digest

    def test_different_selections_do_not_collide(self):
        one = protocol.parse_artifacts_spec({"artifacts": ["tables"]})
        two = protocol.parse_artifacts_spec(
            {"artifacts": ["tables", "fig6"]}
        )
        assert one.digest != two.digest

    def test_order_is_part_of_the_key(self):
        # Runs execute in spec order, so reordered specs are
        # different runs (their streams differ line for line).
        ab = protocol.parse_artifacts_spec(
            {"artifacts": ["tables", "fig6"]}
        )
        ba = protocol.parse_artifacts_spec(
            {"artifacts": ["fig6", "tables"]}
        )
        assert ab.digest != ba.digest

    @pytest.mark.parametrize(
        "bad",
        [
            ["tables"],
            {"artifact": ["tables"]},
            {"artifacts": []},
            {"artifacts": [1]},
            {"artifacts": ["tables", "tables"]},
            {"artifacts": ["nope"]},
        ],
    )
    def test_invalid_specs_raise_serve_error(self, bad):
        with pytest.raises(ServeError):
            protocol.parse_artifacts_spec(bad)

    def test_unknown_artifact_message_lists_registry(self):
        with pytest.raises(ServeError, match="tables"):
            protocol.parse_artifacts_spec({"artifacts": ["nope"]})


class TestSweepSpec:
    def test_defaults_resolve_into_the_digest(self):
        implicit = protocol.parse_sweep_spec({})
        explicit = protocol.parse_sweep_spec(
            {
                "designs": list(main_design_names()),
                "a_degrees": list(E.A_DEGREES),
                "b_degrees": list(E.B_DEGREES),
                "size": 1024,
            }
        )
        assert implicit.kind == "grid"
        assert implicit.digest == explicit.digest

    def test_int_and_float_degrees_coalesce(self):
        ints = protocol.parse_sweep_spec(
            {"a_degrees": [0, 0.5], "b_degrees": [0.5], "size": 32}
        )
        floats = protocol.parse_sweep_spec(
            {"a_degrees": [0.0, 0.5], "b_degrees": [0.5], "size": 32}
        )
        assert ints.digest == floats.digest

    def test_model_sweep_defaults_resolve(self):
        implicit = protocol.parse_sweep_spec({"model": "ResNet50"})
        explicit = protocol.parse_sweep_spec(
            {
                "model": "ResNet50",
                "designs": list(main_design_names()),
            }
        )
        assert implicit.kind == "model"
        assert implicit.digest == explicit.digest

    def test_inline_table_key_order_is_irrelevant(self):
        table = dict(MODEL_TABLE)
        shuffled = dict(reversed(list(table.items())))
        a = protocol.parse_sweep_spec(
            {"model": table, "designs": ["TC"], "degrees": [0.5]}
        )
        b = protocol.parse_sweep_spec(
            {"model": shuffled, "designs": ["TC"], "degrees": [0.5]}
        )
        assert list(table) != list(shuffled)
        assert a.digest == b.digest
        assert a.model is not None and a.model.name == "ServeNet"

    def test_inline_models_are_not_registered_globally(self):
        from repro.dnn.models import MODEL_BUILDERS

        protocol.parse_sweep_spec({"model": dict(MODEL_TABLE)})
        assert "ServeNet" not in MODEL_BUILDERS

    @pytest.mark.parametrize(
        ("bad", "match"),
        [
            ([], "JSON object"),
            ({"grid": True}, "unknown sweep spec key"),
            ({"designs": []}, "non-empty list"),
            ({"designs": ["bogus"]}, "unknown design"),
            ({"designs": ["TC", "TC"]}, "duplicate design"),
            ({"a_degrees": [1.5]}, r"in \[0, 1\)"),
            ({"a_degrees": [True]}, "sparsity degrees"),
            ({"size": 0}, "positive integer"),
            ({"size": True}, "positive integer"),
            ({"model": "ResNet50", "size": 32}, "grid sweeps"),
            ({"degrees": [0.5]}, "model sweeps"),
            ({"model": "NoSuchNet"}, "NoSuchNet"),
            ({"model": {"name": "x"}}, "missing field"),
            (
                {"model": "ResNet50",
                 "profile": {"not-a-layer": 0.5}},
                "not-a-layer",
            ),
        ],
    )
    def test_invalid_specs_raise_serve_error(self, bad, match):
        with pytest.raises(ServeError, match=match):
            protocol.parse_sweep_spec(bad)


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------


class TestEndpoints:
    async def _serve(self, exercise, **service_kw):
        service = EvaluationService(
            EngineContext.create(), port=0, **service_kw
        )
        await service.start()
        try:
            await exercise(service)
        finally:
            await service.aclose()

    def test_health(self):
        async def exercise(service):
            status, body = await request(
                service.port, "GET", "/v1/health"
            )
            assert status == 200
            assert json.loads(body) == {"status": "ok"}

        run_async(self._serve(exercise))

    def test_health_rejects_post(self):
        async def exercise(service):
            status, body = await request(
                service.port, "POST", "/v1/health", body={}
            )
            assert status == 405
            assert json.loads(body)["status"] == 405

        run_async(self._serve(exercise))

    def test_stats_shape_without_cache(self):
        async def exercise(service):
            status, body = await request(
                service.port, "GET", "/v1/stats"
            )
            assert status == 200
            payload = json.loads(body)
            assert set(payload) == {"server", "engine", "cache"}
            assert payload["cache"] is None
            server = payload["server"]
            assert server["port"] == service.port
            assert server["max_concurrent"] == 1
            assert server["requests"] == 1
            assert server["active_runs"] == 0
            assert server["runs_started"] == 0
            assert server["coalesced_requests"] == 0
            assert server["completed_runs"] == 0
            assert server["host"] == "127.0.0.1"
            assert set(payload["engine"]) == {
                "hits", "disk_hits", "misses", "evaluations",
                "requests",
            }

        run_async(self._serve(exercise))

    def test_unknown_path_is_404_with_endpoint_list(self):
        async def exercise(service):
            status, body = await request(service.port, "GET", "/nope")
            assert status == 404
            payload = json.loads(body)
            assert payload["type"] == "ServeError"
            assert "/v1/artifacts" in payload["error"]

        run_async(self._serve(exercise))

    def test_bad_json_body_is_400(self):
        async def exercise(service):
            head = (
                b"POST /v1/artifacts HTTP/1.1\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            status, body = await http_bytes(service.port, head)
            assert status == 400
            assert "not valid JSON" in json.loads(body)["error"]

        run_async(self._serve(exercise))

    def test_unknown_artifact_is_400(self):
        async def exercise(service):
            status, body = await request(
                service.port, "POST", "/v1/artifacts",
                body={"artifacts": ["nope"]},
            )
            assert status == 400
            payload = json.loads(body)
            assert "unknown artifact" in payload["error"]
            assert "tables" in payload["error"]

        run_async(self._serve(exercise))

    def test_artifacts_rejects_get(self):
        async def exercise(service):
            status, _ = await request(
                service.port, "GET", "/v1/artifacts"
            )
            assert status == 405

        run_async(self._serve(exercise))

    def test_oversized_body_is_413(self):
        async def exercise(service):
            length = protocol.MAX_BODY_BYTES + 1
            head = (
                f"POST /v1/artifacts HTTP/1.1\r\n"
                f"Content-Length: {length}\r\n\r\n"
            ).encode("latin-1")
            status, _ = await http_bytes(service.port, head)
            assert status == 413

        run_async(self._serve(exercise))

    def test_chunked_body_is_411(self):
        async def exercise(service):
            head = (
                b"POST /v1/artifacts HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            status, _ = await http_bytes(service.port, head)
            assert status == 411

        run_async(self._serve(exercise))

    def test_malformed_request_line_is_400(self):
        async def exercise(service):
            status, _ = await http_bytes(
                service.port, b"GARBAGE\r\n\r\n"
            )
            assert status == 400

        run_async(self._serve(exercise))


# ----------------------------------------------------------------------
# Artifact streams: shape, CLI byte-compatibility, warm replay
# ----------------------------------------------------------------------


class TestArtifactStream:
    def test_stream_shape_and_cli_byte_compatibility(self, tmp_path):
        run_async(self._run(tmp_path))

    async def _run(self, tmp_path):
        # Both of these evaluate workloads through the engine, so the
        # cold-vs-warm evaluation counters below are meaningful.
        names = ["fig16", "fig17"]
        service = EvaluationService(
            EngineContext.create(
                cache_dir=str(tmp_path / "serve-cache")
            ),
            port=0,
        )
        await service.start()
        try:
            status, body = await request(
                service.port, "POST", "/v1/artifacts",
                body={"artifacts": names},
            )
            assert status == 200
            lines = body.decode("utf-8").splitlines()
            events = [json.loads(line) for line in lines]
            # started / finished pairs per artifact + one run summary.
            assert events[0] == {
                "event": "started", "artifact": "fig16",
                "index": 0, "total": 2,
            }
            assert events[2] == {
                "event": "started", "artifact": "fig17",
                "index": 1, "total": 2,
            }
            assert events[-1]["event"] == "finished"
            assert events[-1]["stats"]["evaluations"] > 0
            assert events[-1]["wall_time_s"] > 0

            # The ArtifactFinished lines are byte-identical to what
            # `repro all --stream --format json` prints for the same
            # cold run (both go through finished_event_line).
            served = [
                line for line in lines
                if "event" not in json.loads(line)
            ]
            with EngineContext.create(
                cache_dir=str(tmp_path / "cli-cache")
            ) as ctx:
                expected = [
                    finished_event_line(event)
                    for event in RunPlan.from_names(
                        names, ctx
                    ).events()
                    if isinstance(event, ArtifactFinished)
                ]
            assert served == expected

            # A repeat of the same spec after completion is a pure
            # warm-cache replay: same payloads, zero evaluations.
            status, warm_body = await request(
                service.port, "POST", "/v1/artifacts",
                body={"artifacts": names},
            )
            assert status == 200
            warm = [
                event for event in ndjson(warm_body)
                if "event" not in event
            ]
            cold = [json.loads(line) for line in served]
            assert [w["payload"] for w in warm] == [
                c["payload"] for c in cold
            ]
            for event in warm:
                assert event["stats"]["evaluations"] == 0
            counts = service.broker.counts()
            assert counts["runs_started"] == 2
            assert counts["coalesced_requests"] == 0
        finally:
            await service.aclose()


class TestSweepStream:
    def test_grid_sweep_streams_and_memoizes(self):
        run_async(self._grid())

    async def _grid(self):
        spec = {
            "designs": ["TC", "HighLight"],
            "a_degrees": [0.5],
            "b_degrees": [0.5],
            "size": 32,
        }
        service = EvaluationService(EngineContext.create(), port=0)
        await service.start()
        try:
            status, body = await request(
                service.port, "POST", "/v1/sweep", body=spec
            )
            assert status == 200
            started, finished, summary = ndjson(body)
            assert started == {
                "event": "started", "artifact": "sweep",
                "index": 0, "total": 1,
            }
            assert finished["artifact"] == "sweep"
            assert finished["payload"]["rows"]
            assert finished["stats"]["evaluations"] > 0
            assert summary["event"] == "finished"
            assert summary["stats"] == finished["stats"]

            status, warm = await request(
                service.port, "POST", "/v1/sweep", body=spec
            )
            assert status == 200
            assert ndjson(warm)[1]["stats"]["evaluations"] == 0
        finally:
            await service.aclose()

    def test_inline_model_sweep(self):
        run_async(self._model())

    async def _model(self):
        service = EvaluationService(EngineContext.create(), port=0)
        await service.start()
        try:
            status, body = await request(
                service.port, "POST", "/v1/sweep",
                body={
                    "model": MODEL_TABLE,
                    "designs": ["TC"],
                    "degrees": [0.5],
                },
            )
            assert status == 200
            finished = ndjson(body)[1]
            assert finished["artifact"] == "sweep"
            assert finished["payload"]["model"] == "ServeNet"
            assert finished["stats"]["evaluations"] > 0
        finally:
            await service.aclose()


# ----------------------------------------------------------------------
# Coalescing (the tentpole invariant: identical concurrent specs
# evaluate exactly once, every subscriber gets the full stream)
# ----------------------------------------------------------------------


def _gated_registry(gate):
    """A registry with a 'gated' artifact that blocks on ``gate``
    before evaluating one tiny grid, plus an ungated 'quick' one."""
    registry = ArtifactRegistry()

    @artifact("gated", SweepResult, text=lambda r: "gated",
              registry=registry)
    def _gated(ctx):
        assert gate.wait(timeout=60), "test gate never released"
        return ctx.engine.sweep(
            designs=("TC",), a_degrees=(0.5,), b_degrees=(0.5,),
            m=32, k=32, n=32,
        )

    @artifact("quick", SweepResult, text=lambda r: "quick",
              registry=registry)
    def _quick(ctx):
        return ctx.engine.sweep(
            designs=("TC",), a_degrees=(0.25,), b_degrees=(0.25,),
            m=32, k=32, n=32,
        )

    return registry


class TestCoalescing:
    def test_identical_concurrent_posts_evaluate_once(self):
        run_async(self._coalesce())

    async def _coalesce(self):
        gate = threading.Event()
        ctx = EngineContext.create()
        service = EvaluationService(
            ctx, port=0, registry=_gated_registry(gate)
        )
        await service.start()
        try:
            spec = {"artifacts": ["gated"]}
            first = asyncio.ensure_future(
                request(service.port, "POST", "/v1/artifacts",
                        body=spec)
            )
            await poll(
                lambda: service.broker.counts()["active_runs"] == 1
            )
            second = asyncio.ensure_future(
                request(service.port, "POST", "/v1/artifacts",
                        body=spec)
            )
            await poll(
                lambda: service.broker.counts()[
                    "coalesced_requests"
                ] == 1
            )
            gate.set()
            (status_a, body_a), (status_b, body_b) = (
                await asyncio.gather(first, second)
            )
            assert status_a == status_b == 200
            # Both subscribers receive the run's exact stream.
            assert body_a == body_b
            counts = service.broker.counts()
            assert counts["runs_started"] == 1
            assert counts["completed_runs"] == 1
            assert counts["active_runs"] == 0
            evaluated = ctx.engine.checkpoint().evaluations
            assert evaluated > 0

            # A third identical request after completion starts a new
            # run but performs zero evaluations: the warm shared cache
            # serves it.
            status_c, body_c = await request(
                service.port, "POST", "/v1/artifacts", body=spec
            )
            assert status_c == 200
            finished = [
                event for event in ndjson(body_c)
                if "event" not in event
            ]
            assert finished[0]["stats"]["evaluations"] == 0
            assert ctx.engine.checkpoint().evaluations == evaluated
            counts = service.broker.counts()
            assert counts["runs_started"] == 2
            assert counts["coalesced_requests"] == 1
        finally:
            gate.set()
            await service.aclose()

    def test_different_specs_do_not_coalesce(self):
        run_async(self._distinct())

    async def _distinct(self):
        gate = threading.Event()
        service = EvaluationService(
            EngineContext.create(), port=0,
            registry=_gated_registry(gate),
        )
        await service.start()
        try:
            first = asyncio.ensure_future(
                request(service.port, "POST", "/v1/artifacts",
                        body={"artifacts": ["gated"]})
            )
            await poll(
                lambda: service.broker.counts()["active_runs"] == 1
            )
            # Different spec while the first is in flight: a second
            # run starts (queued behind max_concurrent=1), nothing
            # coalesces.
            second = asyncio.ensure_future(
                request(service.port, "POST", "/v1/artifacts",
                        body={"artifacts": ["quick"]})
            )
            await poll(
                lambda: service.broker.counts()["runs_started"] == 2
            )
            assert (
                service.broker.counts()["coalesced_requests"] == 0
            )
            gate.set()
            (status_a, body_a), (status_b, body_b) = (
                await asyncio.gather(first, second)
            )
            assert status_a == status_b == 200
            assert body_a != body_b
            assert service.broker.counts()["completed_runs"] == 2
        finally:
            gate.set()
            await service.aclose()


# ----------------------------------------------------------------------
# Lifecycle: in-process teardown and the real SIGTERM path
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_aclose_is_idempotent_and_engine_survives(self):
        run_async(self._run())

    async def _run(self):
        ctx = EngineContext.create()
        service = EvaluationService(ctx, port=0)
        await service.start()
        status, _ = await request(service.port, "GET", "/v1/health")
        assert status == 200
        await service.aclose()
        await service.aclose()  # second teardown is a no-op
        service.close()  # and so is a late sync close
        # The engine reopens lazily after close: a post-shutdown
        # caller holding the context can still evaluate.
        sweep = ctx.engine.sweep(
            designs=("TC",), a_degrees=(0.5,), b_degrees=(0.5,),
            m=32, k=32, n=32,
        )
        assert sweep.to_payload()["rows"]
        ctx.close()

    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="needs POSIX signals"
    )
    def test_subprocess_sigterm_drains_and_flushes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        record_dir = tmp_path / "records"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", str(cache_dir),
                "--record", str(record_dir),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stderr is not None
            line = proc.stderr.readline().strip()
            assert line.startswith("serving on http://127.0.0.1:")
            port = int(line.rsplit(":", 1)[1])

            conn = HTTPConnection("127.0.0.1", port, timeout=120)
            conn.request(
                "POST", "/v1/artifacts",
                body=json.dumps({"artifacts": ["fig16"]}),
            )
            response = conn.getresponse()
            stream = response.read()
            conn.close()
            assert response.status == 200
            events = [
                json.loads(l)
                for l in stream.decode("utf-8").splitlines()
            ]
            assert events[-1]["event"] == "finished"

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # Graceful shutdown left the shared cache flushed on disk and
        # wrote one schema-v4 record for the served run.
        stats = cache_mod.cache_stats(cache_dir)
        assert stats["total_entries"] > 0
        records = sorted(record_dir.glob("serve-*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["schema_version"] == 4
        assert record["command"] == "serve-artifacts"
        assert record["artifact_stats"]["fig16"]["evaluations"] > 0
