"""Tests for the SAF abstraction."""

import pytest

from repro.errors import ModelError
from repro.model.saf import (
    Saf,
    SafKind,
    all_static,
    combined_ideal_speedup,
    design_safs,
    highlight_safs,
)


class TestSavings:
    def test_gating_saves_energy_only(self):
        saf = Saf(SafKind.GATING, "MAC", "B.values", static=False)
        energy, time = saf.savings(0.6)
        assert energy == 0.6
        assert time == 0.0

    def test_skipping_saves_both(self):
        saf = Saf(SafKind.SKIPPING, "PE", "A.rank0", static=True)
        assert saf.savings(0.5) == (0.5, 0.5)

    def test_fraction_validated(self):
        saf = Saf(SafKind.GATING, "MAC", "B", static=False)
        with pytest.raises(ModelError):
            saf.savings(1.5)

    def test_describe(self):
        saf = Saf(SafKind.SKIPPING, "PE array", "A.rank1", static=True)
        assert "skipping" in saf.describe()
        assert "static" in saf.describe()


class TestInventories:
    def test_highlight_has_two_skips_one_gate(self):
        safs = highlight_safs()
        skips = [s for s in safs if s.kind is SafKind.SKIPPING]
        gates = [s for s in safs if s.kind is SafKind.GATING]
        assert len(skips) == 2 and len(gates) == 1

    def test_highlight_skipping_is_static(self):
        """Static structured skipping = perfect balance."""
        assert all_static(highlight_safs())

    def test_dstc_skipping_is_dynamic(self):
        assert not all_static(design_safs("DSTC"))

    def test_tc_has_none(self):
        assert design_safs("TC") == []

    def test_unknown_design(self):
        with pytest.raises(ModelError):
            design_safs("Eyeriss")


class TestCombinedSpeedup:
    def test_multiplicative_across_ranks(self):
        """Sec. 6.3: total speedup is the product of per-rank speedups."""
        speedup = combined_ideal_speedup(
            highlight_safs(),
            {"A.rank1": 0.5, "A.rank0": 0.5, "B.values": 0.6},
        )
        # Two skipping ranks at 2x each; gating contributes no time.
        assert speedup == pytest.approx(4.0)

    def test_missing_fraction_is_dense(self):
        speedup = combined_ideal_speedup(highlight_safs(), {})
        assert speedup == 1.0

    def test_full_skip_rejected(self):
        with pytest.raises(ModelError):
            combined_ideal_speedup(
                highlight_safs(), {"A.rank0": 1.0}
            )
