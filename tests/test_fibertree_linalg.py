"""Tests for fibertree matmul and effectual-operation counting."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.fibertree.linalg import matmul_dense_check
from repro.sparsity import HSSPattern, sparsify, sparsify_unstructured


class TestCorrectness:
    def test_dense_matmul(self, rng):
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(7, 3))
        result, _ = matmul_dense_check(a, b)
        np.testing.assert_allclose(result, a @ b, atol=1e-12)

    def test_sparse_matmul(self, rng):
        a = sparsify_unstructured(rng.normal(size=(6, 8)), 0.6)
        b = sparsify_unstructured(rng.normal(size=(8, 4)), 0.4)
        result, _ = matmul_dense_check(a, b)
        np.testing.assert_allclose(result, a @ b, atol=1e-12)

    def test_all_zero_operand(self, rng):
        a = np.zeros((3, 4))
        b = rng.normal(size=(4, 2))
        result, counts = matmul_dense_check(a, b)
        np.testing.assert_allclose(result, np.zeros((3, 2)))
        assert counts.effectual_multiplies == 0

    def test_shape_mismatch(self):
        with pytest.raises(SpecificationError):
            matmul_dense_check(np.zeros((2, 3)), np.zeros((4, 2)))


class TestEffectualCounts:
    def test_dense_count_is_mkn(self, rng):
        a = rng.uniform(1, 2, size=(4, 6))
        b = rng.uniform(1, 2, size=(6, 5))
        _, counts = matmul_dense_check(a, b)
        assert counts.effectual_multiplies == 4 * 6 * 5
        assert counts.effectual_fraction == 1.0

    def test_structured_operand_count_exact(self, rng):
        """With A at exact density dA and dense B, effectual =
        M*K*N*dA — the analytical model's core identity."""
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        a = sparsify(rng.normal(size=(4, 32)), pattern)
        b = rng.uniform(1, 2, size=(32, 5))
        _, counts = matmul_dense_check(a, b)
        assert counts.effectual_multiplies == int(4 * 32 * 5 * 0.25)

    def test_dual_sparse_expected_fraction(self, rng):
        """Unstructured x unstructured: effectual fraction is close to
        dA*dB in expectation (law of large numbers)."""
        a = sparsify_unstructured(rng.normal(size=(32, 128)), 0.5)
        b = sparsify_unstructured(rng.normal(size=(128, 32)), 0.75)
        _, counts = matmul_dense_check(a, b)
        assert counts.effectual_fraction == pytest.approx(
            0.5 * 0.25, rel=0.15
        )

    def test_count_matches_analytical_workload(self, rng):
        from repro.model.workload import MatmulWorkload, hss_operand, \
            dense_operand

        pattern = HSSPattern.from_ratios((2, 4), (4, 4))
        a = sparsify(rng.normal(size=(8, 32)), pattern)
        b = rng.uniform(1, 2, size=(32, 8))
        _, counts = matmul_dense_check(a, b)
        workload = MatmulWorkload(
            m=8, k=32, n=8, a=hss_operand(pattern), b=dense_operand()
        )
        assert counts.effectual_multiplies == pytest.approx(
            workload.effectual_products
        )
