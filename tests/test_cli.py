"""Tests for the CLI and the EXPERIMENTS.md report generator."""

import json

import pytest

from repro.cli import ARTIFACTS, ORDER, main, run_artifacts
from repro.energy import Estimator
from repro.eval import experiments as E
from repro.eval.report import build_report


class TestCli:
    def test_fig6_prints(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "muxing overhead" in out

    def test_tables_print(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "HighLight" in out

    def test_artifact_subcommand_form(self, capsys):
        assert main(["artifact", "fig6"]) == 0
        assert "muxing overhead" in capsys.readouterr().out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "tables", "fig2", "fig6", "fig13", "fig14", "fig15",
            "fig16", "fig17",
        }

    def test_run_artifacts_fast_subset(self):
        text = run_artifacts(["fig6"])
        assert "15 supported densities" in text

    def test_report_written(self, tmp_path, capsys):
        path = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(path)]) == 0
        content = path.read_text()
        assert "paper vs. measured" in content

    def test_output_outside_report_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["artifact", "fig6", "--output", "somewhere.md"])
        err = capsys.readouterr().err
        assert "report" in err


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report()

    def test_covers_every_artifact(self, report):
        for artifact in (
            "Tables 1-4", "Fig. 2", "Fig. 6", "Fig. 13", "Fig. 14",
            "Fig. 15", "Fig. 16", "Fig. 17",
        ):
            assert artifact in report

    def test_records_headline_numbers(self, report):
        assert "6.4x" in report  # the paper's geomean claim
        assert "5.7%" in report  # the SAF area share

    def test_frontier_flags_positive(self, report):
        assert "NO" not in report.split("Fig. 15")[1].split("Fig. 16")[0]


class TestSweepSubcommand:
    def test_custom_grid_with_record(self, tmp_path, capsys):
        record_path = tmp_path / "runs" / "out.json"
        assert main([
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", "0.0,0.5", "--b-degrees", "0.0,0.25",
            "--size", "256", "--jobs", "4",
            "--record", str(record_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "normalized edp" in out
        assert "geomean" in out
        record = json.loads(record_path.read_text())
        assert record["grid"]["designs"] == ["TC", "HighLight"]
        # 8 grid cells realize 6 unique (design, workload) pairs: TC's
        # dense workload is shared by all four of its cells, and
        # HighLight's dense-dense orientations collapse to one.
        assert record["cache"]["misses"] == 6
        assert record["cache"]["evaluations"] == 6
        assert len(record["cells"]) == 8
        assert record["geomeans"]["edp"]["TC"] == pytest.approx(1.0)

    def test_sweep_accepts_dsso(self, capsys):
        assert main([
            "sweep", "--designs", "HighLight,DSSO",
            "--a-degrees", "0.5", "--b-degrees", "0.5",
            "--size", "128",
        ]) == 0
        assert "DSSO" in capsys.readouterr().out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "NoSuchDesign", "--size", "64"])
        assert "unknown design" in capsys.readouterr().err

    def test_bad_degree_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--a-degrees", "1.5"])

    def test_unnormalizable_baseline_errors_cleanly(self, capsys):
        """S2TA becomes the baseline but cannot process the dense-dense
        cell — a clean parser error, not an EvaluationError traceback."""
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "S2TA,HighLight",
                  "--size", "64"])
        assert "Include TC" in capsys.readouterr().err


class TestModelSweepSubcommand:
    def test_model_sweep_with_record(self, tmp_path, capsys):
        record_path = tmp_path / "model-run.json"
        assert main([
            "sweep", "--model", "DeiT-small",
            "--designs", "TC,HighLight", "--degrees", "0.0,0.5",
            "--record", str(record_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Network sweep — DeiT-small" in out
        assert "workloads evaluated" in out
        record = json.loads(record_path.read_text())
        assert record["command"] == "sweep-model"
        assert record["grid"]["model"] == "DeiT-small"
        assert record["grid"]["baseline"] == ["TC", 0.0]
        assert len(record["cells"]) == 4
        by_key = {
            (c["design"], c["weight_sparsity"]): c["metrics"]
            for c in record["cells"]
        }
        assert by_key[("TC", 0.0)]["normalized_edp"] == pytest.approx(1.0)
        assert by_key[("HighLight", 0.5)]["normalized_edp"] < 1.0

    def test_warm_persistent_cache_skips_all_evaluations(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep", "--model", "DeiT-small",
            "--designs", "TC,HighLight", "--degrees", "0.0,0.5",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv + ["--record", str(tmp_path / "cold.json")]) == 0
        cold_out = capsys.readouterr().out
        assert main(argv + ["--record", str(tmp_path / "warm.json")]) == 0
        warm_out = capsys.readouterr().out
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["cache"]["evaluations"] > 0
        assert warm["cache"]["evaluations"] == 0
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["disk_hits"] > 0
        assert cold["cells"] == warm["cells"]
        # The rendered tables (everything above the timing line) match.
        assert (
            cold_out.split("\n\n")[0] == warm_out.split("\n\n")[0]
        )

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "AlexNet"])
        assert "unknown model" in capsys.readouterr().err

    def test_degrees_without_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--degrees", "0.5", "--size", "64"])
        assert "--model" in capsys.readouterr().err

    def test_grid_flags_with_model_rejected(self, capsys):
        """Grid-only flags must not be silently ignored on a model
        sweep."""
        for flag, value in (
            ("--a-degrees", "0.5"), ("--b-degrees", "0.5"),
            ("--size", "512"),
        ):
            with pytest.raises(SystemExit):
                main(["sweep", "--model", "DeiT-small", flag, value])
            assert "synthetic grids" in capsys.readouterr().err


class TestArtifactFormatsAndRecords:
    def test_json_format_keyed_by_artifact(self, capsys):
        assert main(["artifact", "fig6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"fig6"}
        assert payload["fig6"]["overhead_ratio"] > 2.0

    def test_csv_format_marks_artifacts(self, capsys):
        assert main(["artifact", "fig6", "fig17", "--format",
                     "csv"]) == 0
        out = capsys.readouterr().out
        assert "# artifact: fig6" in out
        assert "# artifact: fig17" in out
        assert "design,density,normalized_latency" in out

    def test_artifact_record_schema_v4(self, tmp_path, capsys):
        record_path = tmp_path / "artifact-run.json"
        assert main(["artifact", "fig6", "tables",
                     "--record", str(record_path)]) == 0
        assert "wrote" in capsys.readouterr().err
        record = json.loads(record_path.read_text())
        assert record["schema_version"] == 4
        assert record["command"] == "artifact"
        assert record["grid"]["artifacts"] == ["fig6", "tables"]
        assert set(record["artifacts"]) == {"fig6", "tables"}
        assert record["artifacts"]["fig6"]["rows"]
        # v4: per-artifact engine-stats deltas ride along.
        assert set(record["artifact_stats"]) == {"fig6", "tables"}
        for stats in record["artifact_stats"].values():
            assert set(stats) >= {
                "hits", "disk_hits", "misses", "evaluations",
                "requests", "wall_time_s",
            }

    def test_artifact_warm_cache_zero_evaluations(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        argv = ["artifact", "fig13", "fig14",
                "--cache-dir", str(cache_dir)]
        assert main(argv + ["--record", str(tmp_path / "cold.json")]) == 0
        assert main(argv + ["--record", str(tmp_path / "warm.json")]) == 0
        capsys.readouterr()
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["cache"]["evaluations"] > 0
        assert warm["cache"]["evaluations"] == 0
        assert warm["cache"]["disk_hits"] > 0
        assert cold["artifacts"] == warm["artifacts"]

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["artifact", "fig6", "--format", "yaml"])


class TestModelFileSubcommand:
    @pytest.fixture(autouse=True)
    def _unregister(self):
        """Runtime registrations must not leak into other tests."""
        from repro.dnn.models import MODEL_BUILDERS

        yield
        MODEL_BUILDERS.pop("TinyNet", None)

    MODEL = {
        "name": "TinyNet",
        "activation_sparsity": 0.1,
        "layers": [
            {"type": "linear", "name": "fc1", "in_features": 128,
             "out_features": 256, "tokens": 64},
            {"type": "conv", "name": "c1", "in_channels": 16,
             "out_channels": 32, "kernel": 3, "input_size": 28,
             "padding": 1},
        ],
        "prunable": ["fc1"],
    }

    def _write(self, tmp_path, data):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_model_file_sweeps(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MODEL)
        assert main([
            "sweep", "--model-file", path,
            "--designs", "TC,HighLight", "--degrees", "0.0,0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Network sweep — TinyNet" in out

    def test_missing_field_listed(self, tmp_path, capsys):
        bad = json.loads(json.dumps(self.MODEL))
        del bad["layers"][0]["out_features"]
        with pytest.raises(SystemExit):
            main(["sweep", "--model-file", self._write(tmp_path, bad)])
        err = capsys.readouterr().err
        assert "missing field(s): out_features" in err
        assert "required" in err

    def test_unknown_field_listed(self, tmp_path, capsys):
        bad = json.loads(json.dumps(self.MODEL))
        bad["layers"][1]["dilation"] = 2
        with pytest.raises(SystemExit):
            main(["sweep", "--model-file", self._write(tmp_path, bad)])
        assert "unknown field(s): dilation" in capsys.readouterr().err

    @pytest.mark.parametrize("name", ["ResNet50", "resnet50"])
    def test_builtin_shadowing_is_a_loud_error(
        self, tmp_path, capsys, name
    ):
        """A model file named after a builtin — any case variant, since
        names resolve case-insensitively — must fail loudly instead of
        silently replacing (or unreachably shadowing) the builtin."""
        from repro.dnn.models import MODEL_BUILDERS, get_model

        shadow = json.loads(json.dumps(self.MODEL))
        shadow["name"] = name
        path = self._write(tmp_path, shadow)
        with pytest.raises(SystemExit):
            main([
                "sweep", "--model-file", path,
                "--designs", "TC", "--degrees", "0.0",
            ])
        assert "built-in" in capsys.readouterr().err
        assert name not in MODEL_BUILDERS or name == "ResNet50"
        # The builtin still resolves to its 22-layer table.
        assert len(get_model("resnet50").layers) == 22

    def test_rerunning_the_same_model_file_is_fine(
        self, tmp_path, capsys
    ):
        """Loading one file twice in one process re-registers the
        runtime model rather than erroring (the CLI's replace=True
        covers runtime names, just not builtins)."""
        path = self._write(tmp_path, self.MODEL)
        argv = ["sweep", "--model-file", path,
                "--designs", "TC", "--degrees", "0.0"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "Network sweep — TinyNet" in capsys.readouterr().out

    def test_model_and_model_file_conflict(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MODEL)
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "DeiT-small",
                  "--model-file", path])
        assert "mutually exclusive" in capsys.readouterr().err


class TestProfileSubcommand:
    def _profile(self, tmp_path, data):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_profile_changes_the_sweep(self, tmp_path, capsys):
        argv = ["sweep", "--model", "DeiT-small",
                "--designs", "HighLight", "--degrees", "0.5"]
        assert main(argv) == 0
        plain = capsys.readouterr().out.split("\n\n")[0]
        path = self._profile(
            tmp_path, {"ff1": 0.75, "ff2": {"pattern": "2:4"}}
        )
        assert main(argv + ["--profile", path]) == 0
        profiled = capsys.readouterr().out.split("\n\n")[0]
        assert profiled != plain

    def test_unknown_layer_listed(self, tmp_path, capsys):
        path = self._profile(tmp_path, {"no_such_layer": 0.5})
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "DeiT-small",
                  "--profile", path])
        assert "no_such_layer" in capsys.readouterr().err

    def test_profile_without_model_rejected(self, tmp_path, capsys):
        path = self._profile(tmp_path, {"ff1": 0.5})
        with pytest.raises(SystemExit):
            main(["sweep", "--profile", path])
        assert "--model" in capsys.readouterr().err

    def test_bad_profile_degree_rejected(self, tmp_path, capsys):
        path = self._profile(tmp_path, {"ff1": 1.5})
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "DeiT-small",
                  "--profile", path])
        assert "[0, 1)" in capsys.readouterr().err


class TestCacheMergeSubcommand:
    def _fill_shard(self, cache_dir, degree):
        assert main([
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", degree, "--b-degrees", "0.0",
            "--size", "128", "--cache-dir", str(cache_dir),
        ]) == 0

    def test_merge_enables_warm_run(self, tmp_path, capsys):
        shard1, shard2 = tmp_path / "s1", tmp_path / "s2"
        self._fill_shard(shard1, "0.0")
        self._fill_shard(shard2, "0.5")
        merged = tmp_path / "merged"
        capsys.readouterr()
        assert main([
            "cache", "merge", str(shard1), str(shard2),
            "--cache-dir", str(merged),
        ]) == 0
        assert "merged 2 shard(s)" in capsys.readouterr().out
        record_path = tmp_path / "warm.json"
        assert main([
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", "0.0,0.5", "--b-degrees", "0.0",
            "--size", "128", "--cache-dir", str(merged),
            "--record", str(record_path),
        ]) == 0
        record = json.loads(record_path.read_text())
        assert record["cache"]["evaluations"] == 0
        assert record["cache"]["disk_hits"] > 0

    def test_mismatched_fingerprints_refused(self, tmp_path, capsys):
        shard = tmp_path / "s1"
        self._fill_shard(shard, "0.0")
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / ("deadbeef" * 2 + ".json")).write_text(json.dumps({
            "schema_version": 1, "fingerprint": "deadbeef" * 2,
            "entries": {},
        }))
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["cache", "merge", str(shard), str(foreign),
                  "--cache-dir", str(tmp_path / "out")])
        assert "mismatched" in capsys.readouterr().err

    def test_merge_without_sources_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "merge"])
        assert "at least one source" in capsys.readouterr().err

    def test_stats_rejects_dir_arguments(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "stats", str(tmp_path)])
        assert "merge" in capsys.readouterr().err


class TestCacheSubcommand:
    def test_stats_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "sweep", "--model", "DeiT-small", "--designs", "TC",
            "--degrees", "0.0", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "total entries" in out
        assert ".json" in out
        assert main(["cache", "clear", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_stats_json_is_the_serve_stats_cache_payload(
        self, tmp_path, capsys
    ):
        from repro.eval.cache import cache_stats

        cache_dir = tmp_path / "cache"
        assert main([
            "sweep", "--model", "DeiT-small", "--designs", "TC",
            "--degrees", "0.0", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--format", "json",
                     "--cache-dir", str(cache_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Exactly the document GET /v1/stats serves under "cache".
        assert payload == cache_stats(cache_dir)
        assert payload["total_entries"] > 0
        assert payload["files"][0]["backend"] == "json"

    def test_json_format_only_applies_to_stats(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "clear", "--format", "json",
                  "--cache-dir", str(tmp_path)])
        assert (
            "--format only applies to 'cache stats'"
            in capsys.readouterr().err
        )

    def test_env_var_cache_dir(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main([
            "sweep", "--model", "DeiT-small", "--designs", "TC",
            "--degrees", "0.0",
        ]) == 0
        capsys.readouterr()
        assert cache_dir.is_dir()
        assert main(["cache", "stats"]) == 0
        assert str(cache_dir) in capsys.readouterr().out


class TestCacheBackendOption:
    def test_sqlite_backend_end_to_end(self, tmp_path, capsys):
        """`--cache-backend sqlite` writes a .db and a warm rerun (via
        auto detection) performs zero evaluations."""
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", "0.5", "--b-degrees", "0.0",
            "--size", "128", "--cache-dir", str(cache_dir),
        ]
        assert main(argv + ["--cache-backend", "sqlite"]) == 0
        assert list(cache_dir.glob("*.db"))
        assert not list(cache_dir.glob("*.json"))
        record_path = tmp_path / "warm.json"
        assert main(argv + ["--record", str(record_path)]) == 0
        capsys.readouterr()
        record = json.loads(record_path.read_text())
        assert record["cache"]["evaluations"] == 0
        assert record["cache"]["disk_hits"] > 0

    def test_stats_show_backend_column(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "sweep", "--designs", "TC", "--a-degrees", "0.0",
            "--b-degrees", "0.0", "--size", "128",
            "--cache-dir", str(cache_dir),
            "--cache-backend", "sqlite",
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert ".db" in out
        assert "sqlite" in out

    def test_migrate_converts_json_to_sqlite(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        fill = [
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", "0.5", "--b-degrees", "0.0",
            "--size", "128", "--cache-dir", str(cache_dir),
        ]
        assert main(fill + ["--cache-backend", "json"]) == 0
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir",
                     str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "migrated 1 file(s)" in out
        assert not list(cache_dir.glob("*.json"))
        assert list(cache_dir.glob("*.db"))
        # The migrated cache serves a warm run untouched.
        record_path = tmp_path / "warm.json"
        assert main(fill + ["--record", str(record_path)]) == 0
        record = json.loads(record_path.read_text())
        assert record["cache"]["evaluations"] == 0

    def test_migrate_on_empty_directory(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["cache", "migrate", "--cache-dir",
                     str(tmp_path / "empty")]) == 0
        assert "no cache files to migrate" in capsys.readouterr().out

    def test_merge_backend_controls_dest_format(self, tmp_path, capsys):
        shard = tmp_path / "s1"
        assert main([
            "sweep", "--designs", "TC", "--a-degrees", "0.0",
            "--b-degrees", "0.0", "--size", "128",
            "--cache-dir", str(shard),
        ]) == 0
        merged = tmp_path / "merged"
        capsys.readouterr()
        assert main([
            "cache", "merge", str(shard), "--cache-dir", str(merged),
            "--cache-backend", "sqlite",
        ]) == 0
        assert "(sqlite)" in capsys.readouterr().out
        assert list(merged.glob("*.db"))

    def test_bad_backend_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--designs", "TC", "--cache-dir",
                str(tmp_path), "--cache-backend", "shelve",
            ])

    def test_cache_backend_rejected_outside_merge(self, tmp_path,
                                                  capsys):
        """'cache migrate --cache-backend json' must not exit 0 while
        converting to sqlite anyway."""
        for action in ("stats", "clear", "migrate"):
            with pytest.raises(SystemExit):
                main([
                    "cache", action, "--cache-dir", str(tmp_path),
                    "--cache-backend", "json",
                ])
            assert "cache merge" in capsys.readouterr().err


class TestListSubcommand:
    def test_lists_all_designs_and_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("TC", "STC", "S2TA", "DSTC", "HighLight", "DSSO"):
            assert name in out
        for artifact in ORDER:
            assert artifact in out

    def test_metadata_filter(self, capsys):
        assert main(["list", "--filter", "sparsity_side=dual"]) == 0
        out = capsys.readouterr().out
        assert "DSSO" in out
        assert "HighLight" not in out

    def test_bad_filter_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "--filter", "nonsense"])


class TestSingleEvaluationRegression:
    def test_repro_all_evaluates_each_pair_once(self, monkeypatch):
        """`repro all` regenerates Fig. 14 (and Fig. 16's breakdown
        cell) from the Fig. 13 sweep without re-evaluating anything:
        the counting spies (covering both the scalar and the batch
        evaluation route) must see each unique (design, workload) pair
        exactly once — and nothing outside the grid's realizations."""
        import repro.eval.engine as engine_mod
        from repro.eval.harness import realize_workloads

        calls = []
        real = engine_mod.evaluate_workload
        real_batch = engine_mod.evaluate_workloads_batch

        def counting(design, workload, estimator):
            calls.append((design.name, workload.key()))
            return real(design, workload, estimator)

        def counting_batch(design, workloads, estimator, **kwargs):
            for workload in workloads:
                calls.append((design.name, workload.key()))
            return real_batch(design, workloads, estimator, **kwargs)

        monkeypatch.setattr(engine_mod, "evaluate_workload", counting)
        monkeypatch.setattr(
            engine_mod, "evaluate_workloads_batch", counting_batch
        )
        estimator = Estimator()
        # The exact shape of `repro all`'s sweep reuse: fig13, then
        # fig14 re-running fig13, then fig16 revisiting a grid cell.
        E.fig13(estimator)
        E.fig14(E.fig13(estimator))
        E.fig16(estimator)
        assert calls, "spy never engaged"
        assert len(calls) == len(set(calls))
        expected = {
            (name, workload.key())
            for sparsity_a in E.A_DEGREES
            for sparsity_b in E.B_DEGREES
            for name in ("TC", "STC", "DSTC", "S2TA", "HighLight")
            for workload in realize_workloads(
                name, sparsity_a, sparsity_b
            )
        }
        assert set(calls) == expected


class TestServeParser:
    @pytest.mark.parametrize("port", ["-1", "70000", "abc"])
    def test_bad_port_rejected_by_parser(self, port, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", port])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--port" in err
        assert "0-65535" in err or "integer" in err
