"""Tests for the CLI and the EXPERIMENTS.md report generator."""

import pytest

from repro.cli import ARTIFACTS, main, run_artifacts
from repro.eval.report import build_report


class TestCli:
    def test_fig6_prints(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "muxing overhead" in out

    def test_tables_print(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "HighLight" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "tables", "fig2", "fig6", "fig13", "fig14", "fig15",
            "fig16", "fig17",
        }

    def test_run_artifacts_fast_subset(self):
        text = run_artifacts(["fig6"])
        assert "15 supported densities" in text

    def test_report_written(self, tmp_path, capsys):
        path = tmp_path / "EXPERIMENTS.md"
        assert main(["report", str(path)]) == 0
        content = path.read_text()
        assert "paper vs. measured" in content


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report()

    def test_covers_every_artifact(self, report):
        for artifact in (
            "Tables 1-4", "Fig. 2", "Fig. 6", "Fig. 13", "Fig. 14",
            "Fig. 15", "Fig. 16", "Fig. 17",
        ):
            assert artifact in report

    def test_records_headline_numbers(self, report):
        assert "6.4x" in report  # the paper's geomean claim
        assert "5.7%" in report  # the SAF area share

    def test_frontier_flags_positive(self, report):
        assert "NO" not in report.split("Fig. 15")[1].split("Fig. 16")[0]
