"""Tests for the CLI and the EXPERIMENTS.md report generator."""

import json

import pytest

from repro.cli import ARTIFACTS, ORDER, main, run_artifacts
from repro.energy import Estimator
from repro.eval import experiments as E
from repro.eval.report import build_report


class TestCli:
    def test_fig6_prints(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "muxing overhead" in out

    def test_tables_print(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "HighLight" in out

    def test_artifact_subcommand_form(self, capsys):
        assert main(["artifact", "fig6"]) == 0
        assert "muxing overhead" in capsys.readouterr().out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "tables", "fig2", "fig6", "fig13", "fig14", "fig15",
            "fig16", "fig17",
        }

    def test_run_artifacts_fast_subset(self):
        text = run_artifacts(["fig6"])
        assert "15 supported densities" in text

    def test_report_written(self, tmp_path, capsys):
        path = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(path)]) == 0
        content = path.read_text()
        assert "paper vs. measured" in content

    def test_output_outside_report_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["artifact", "fig6", "--output", "somewhere.md"])
        err = capsys.readouterr().err
        assert "report" in err


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report()

    def test_covers_every_artifact(self, report):
        for artifact in (
            "Tables 1-4", "Fig. 2", "Fig. 6", "Fig. 13", "Fig. 14",
            "Fig. 15", "Fig. 16", "Fig. 17",
        ):
            assert artifact in report

    def test_records_headline_numbers(self, report):
        assert "6.4x" in report  # the paper's geomean claim
        assert "5.7%" in report  # the SAF area share

    def test_frontier_flags_positive(self, report):
        assert "NO" not in report.split("Fig. 15")[1].split("Fig. 16")[0]


class TestSweepSubcommand:
    def test_custom_grid_with_record(self, tmp_path, capsys):
        record_path = tmp_path / "runs" / "out.json"
        assert main([
            "sweep", "--designs", "TC,HighLight",
            "--a-degrees", "0.0,0.5", "--b-degrees", "0.0,0.25",
            "--size", "256", "--jobs", "4",
            "--record", str(record_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "normalized edp" in out
        assert "geomean" in out
        record = json.loads(record_path.read_text())
        assert record["grid"]["designs"] == ["TC", "HighLight"]
        assert record["cache"]["misses"] == 8
        assert len(record["cells"]) == 8
        assert record["geomeans"]["edp"]["TC"] == pytest.approx(1.0)

    def test_sweep_accepts_dsso(self, capsys):
        assert main([
            "sweep", "--designs", "HighLight,DSSO",
            "--a-degrees", "0.5", "--b-degrees", "0.5",
            "--size", "128",
        ]) == 0
        assert "DSSO" in capsys.readouterr().out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "NoSuchDesign", "--size", "64"])
        assert "unknown design" in capsys.readouterr().err

    def test_bad_degree_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--a-degrees", "1.5"])

    def test_unnormalizable_baseline_errors_cleanly(self, capsys):
        """S2TA becomes the baseline but cannot process the dense-dense
        cell — a clean parser error, not an EvaluationError traceback."""
        with pytest.raises(SystemExit):
            main(["sweep", "--designs", "S2TA,HighLight",
                  "--size", "64"])
        assert "Include TC" in capsys.readouterr().err


class TestListSubcommand:
    def test_lists_all_designs_and_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("TC", "STC", "S2TA", "DSTC", "HighLight", "DSSO"):
            assert name in out
        for artifact in ORDER:
            assert artifact in out

    def test_metadata_filter(self, capsys):
        assert main(["list", "--filter", "sparsity_side=dual"]) == 0
        out = capsys.readouterr().out
        assert "DSSO" in out
        assert "HighLight" not in out

    def test_bad_filter_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "--filter", "nonsense"])


class TestSingleEvaluationRegression:
    def test_repro_all_evaluates_each_cell_once(self, monkeypatch):
        """`repro all` regenerates Fig. 14 (and Fig. 16's breakdown
        cell) from the Fig. 13 sweep without re-evaluating any cell:
        the counting spy must never see the same cell twice."""
        import repro.eval.engine as engine_mod

        calls = []
        real = engine_mod.evaluate_cell

        def counting(design, sparsity_a, sparsity_b, estimator,
                     m=1024, k=1024, n=1024):
            calls.append((design.name, sparsity_a, sparsity_b, m, k, n))
            return real(design, sparsity_a, sparsity_b, estimator,
                        m, k, n)

        monkeypatch.setattr(engine_mod, "evaluate_cell", counting)
        estimator = Estimator()
        # The exact shape of `repro all`'s sweep reuse: fig13, then
        # fig14 re-running fig13, then fig16 revisiting a grid cell.
        E.fig13(estimator)
        E.fig14(E.fig13(estimator))
        E.fig16(estimator)
        assert calls, "spy never engaged"
        assert len(calls) == len(set(calls))
        expected = len(E.A_DEGREES) * len(E.B_DEGREES) * 5
        assert len(calls) == expected
