"""Tests for the baseline compression formats."""

import numpy as np
import pytest

from repro.compression import (
    encode_bitmask,
    encode_cp,
    encode_run_length,
    encode_uncompressed,
)
from repro.compression.formats import offset_bits
from repro.errors import CompressionError


@pytest.fixture
def vector(rng):
    values = rng.normal(size=64)
    values[rng.random(64) < 0.6] = 0.0
    return values


class TestOffsetBits:
    def test_power_of_two(self):
        assert offset_bits(4) == 2
        assert offset_bits(16) == 4

    def test_non_power_of_two_rounds_up(self):
        assert offset_bits(3) == 2
        assert offset_bits(5) == 3

    def test_minimum_one_bit(self):
        assert offset_bits(1) == 1
        assert offset_bits(2) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(CompressionError):
            offset_bits(0)


class TestUncompressed:
    def test_round_trip(self, vector):
        np.testing.assert_allclose(
            encode_uncompressed(vector).decode(), vector
        )

    def test_no_metadata(self, vector):
        assert encode_uncompressed(vector).metadata_bits == 0

    def test_stores_all_slots(self, vector):
        assert encode_uncompressed(vector).num_stored_values == 64

    def test_rejects_matrix(self):
        with pytest.raises(CompressionError):
            encode_uncompressed(np.zeros((2, 2)))


class TestBitmask:
    def test_round_trip(self, vector):
        np.testing.assert_allclose(encode_bitmask(vector).decode(), vector)

    def test_metadata_one_bit_per_slot(self, vector):
        assert encode_bitmask(vector).metadata_bits == 64

    def test_stores_only_nonzeros(self, vector):
        encoded = encode_bitmask(vector)
        assert encoded.num_stored_values == np.count_nonzero(vector)

    def test_all_zero(self):
        encoded = encode_bitmask(np.zeros(8))
        assert encoded.num_stored_values == 0
        np.testing.assert_allclose(encoded.decode(), np.zeros(8))


class TestRunLength:
    def test_round_trip(self, vector):
        np.testing.assert_allclose(
            encode_run_length(vector).decode(), vector
        )

    def test_long_runs_escaped(self):
        values = np.zeros(40)
        values[-1] = 7.0
        encoded = encode_run_length(values, run_bits=4)
        # Runs longer than 15 need explicit zero payload entries.
        assert encoded.num_stored_values > 1
        np.testing.assert_allclose(encoded.decode(), values)

    def test_metadata_scales_with_payload(self, vector):
        encoded = encode_run_length(vector, run_bits=4)
        assert encoded.metadata_bits == 4 * len(encoded.run_lengths)

    def test_dense_vector(self):
        values = np.arange(1.0, 9.0)
        encoded = encode_run_length(values)
        assert encoded.num_stored_values == 8
        np.testing.assert_allclose(encoded.decode(), values)


class TestCP:
    def test_round_trip_via_occupancies(self, vector):
        encoded = encode_cp(vector, block_size=4)
        occupancies = tuple(
            int(np.count_nonzero(vector[i : i + 4]))
            for i in range(0, 64, 4)
        )
        np.testing.assert_allclose(encoded.decode(occupancies), vector)

    def test_offsets_local_to_block(self, vector):
        encoded = encode_cp(vector, block_size=4)
        assert all(0 <= o < 4 for o in encoded.offsets)

    def test_metadata_bits(self, vector):
        encoded = encode_cp(vector, block_size=4)
        assert encoded.metadata_bits == 2 * len(encoded.offsets)

    def test_rejects_misaligned_length(self):
        with pytest.raises(CompressionError):
            encode_cp(np.zeros(10), block_size=4)

    def test_rejects_bad_occupancies(self, vector):
        encoded = encode_cp(vector, block_size=4)
        with pytest.raises(CompressionError):
            encoded.decode((1,) * 16)

    def test_compression_beats_uncompressed_when_sparse(self, vector):
        encoded = encode_cp(vector, block_size=4)
        stored_bits = encoded.num_stored_values * 16 + encoded.metadata_bits
        assert stored_bits < 64 * 16
