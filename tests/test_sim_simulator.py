"""End-to-end simulator tests: exactness and count validation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import HSSPattern, sparsify
from repro.utils import ceil_div


@pytest.fixture
def config():
    return SimConfig()


def make_operands(rng, pattern, m=6, k=32, n=5, b_sparsity=0.0):
    a = sparsify(rng.normal(size=(m, k)), pattern)
    b = rng.normal(size=(k, n))
    if b_sparsity:
        b[rng.random(b.shape) < b_sparsity] = 0.0
    return a, b


class TestExactness:
    @pytest.mark.parametrize("h1", [2, 3, 4])
    @pytest.mark.parametrize("compress", [False, True])
    def test_exact_for_all_h1(self, rng, config, h1, compress):
        pattern = config.example_pattern(h1)
        a, b = make_operands(rng, pattern, k=h1 * 4 * 3)
        result, _ = simulate_matmul(a, b, pattern, config, compress)
        np.testing.assert_allclose(result, a @ b)

    def test_exact_with_sparse_b(self, rng, config):
        pattern = config.example_pattern()
        a, b = make_operands(rng, pattern, b_sparsity=0.6)
        for compress in (False, True):
            result, _ = simulate_matmul(a, b, pattern, config, compress)
            np.testing.assert_allclose(result, a @ b)

    def test_exact_unaligned_k(self, rng, config):
        pattern = config.example_pattern()
        a = sparsify(rng.normal(size=(3, 26)), pattern)
        b = rng.normal(size=(26, 4))
        result, _ = simulate_matmul(a, b, pattern, config)
        np.testing.assert_allclose(result, a @ b)

    def test_all_zero_a(self, rng, config):
        pattern = config.example_pattern()
        a = np.zeros((3, 32))
        b = rng.normal(size=(32, 4))
        result, stats = simulate_matmul(a, b, pattern, config)
        np.testing.assert_allclose(result, np.zeros((3, 4)))
        assert stats.steps == 0  # every group skipped at Rank1


class TestCounts:
    def test_steps_match_theoretical_speedup(self, rng, config):
        """Steps = M x N x ceil(K / (H0 H1)) with a full pattern —
        the perfect-balance structured speedup (Sec. 6.3)."""
        pattern = config.example_pattern(4)
        m, k, n = 6, 64, 5
        a, b = make_operands(rng, pattern, m=m, k=k, n=n)
        _, stats = simulate_matmul(a, b, pattern, config)
        assert stats.steps == m * n * ceil_div(k, 16)

    def test_scheduled_matches_analytical_density(self, rng, config):
        pattern = config.example_pattern(4)
        m, k, n = 4, 64, 4
        a, b = make_operands(rng, pattern, m=m, k=k, n=n)
        _, stats = simulate_matmul(a, b, pattern, config)
        assert stats.scheduled_products == pytest.approx(
            m * k * n * pattern.density
        )

    def test_full_plus_gated_equals_mux_selects(self, rng, config):
        pattern = config.example_pattern()
        a, b = make_operands(rng, pattern, b_sparsity=0.5)
        _, stats = simulate_matmul(a, b, pattern, config)
        assert stats.full_macs + stats.gated_macs == stats.mux_selects

    def test_gating_counts_b_zeros(self, rng, config):
        pattern = config.example_pattern()
        a, b = make_operands(rng, pattern, b_sparsity=0.5)
        _, stats = simulate_matmul(a, b, pattern, config)
        assert stats.gated_macs > 0

    def test_dense_b_never_gates(self, rng, config):
        pattern = config.example_pattern()
        a, b = make_operands(rng, pattern)
        _, stats = simulate_matmul(a, b, pattern, config)
        assert stats.gated_macs == 0

    def test_compression_reduces_glb_traffic(self, rng, config):
        pattern = config.example_pattern()
        a, b = make_operands(rng, pattern, k=64, b_sparsity=0.8)
        _, plain = simulate_matmul(a, b, pattern, config, False)
        _, compressed = simulate_matmul(a, b, pattern, config, True)
        assert compressed.glb_reads < plain.glb_reads
        assert compressed.vfmu_skipped_fetches > 0


class TestValidation:
    def test_rejects_unsupported_pattern(self, rng, config):
        pattern = HSSPattern.from_ratios((2, 4), (2, 8))
        a = sparsify(rng.normal(size=(2, 64)), pattern)
        with pytest.raises(SimulationError):
            simulate_matmul(a, rng.normal(size=(64, 2)), pattern, config)

    def test_rejects_shape_mismatch(self, rng, config):
        pattern = config.example_pattern()
        with pytest.raises(SimulationError):
            simulate_matmul(
                np.zeros((2, 32)), np.zeros((16, 2)), pattern, config
            )

    def test_rejects_nonconforming_a(self, rng, config):
        """A tensor violating the claimed pattern fails loudly at the
        compression stage rather than silently computing wrong."""
        pattern = config.example_pattern()
        a = rng.normal(size=(2, 32))  # dense: violates 2:4 blocks
        with pytest.raises(Exception):
            simulate_matmul(a, rng.normal(size=(32, 2)), pattern, config)
