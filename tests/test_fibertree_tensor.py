"""Tests for FiberTensor: named ranks over a fibertree."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.fibertree import FiberTensor, Fiber, from_dense


def small_tensor():
    """The Fig. 3-style (C, R, S) = (2, 2, 2) dense tensor 1..8."""
    return from_dense(
        np.arange(1.0, 9.0).reshape(2, 2, 2), ("C", "R", "S"),
        keep_zeros=True,
    )


class TestBasics:
    def test_rank_names(self):
        assert small_tensor().rank_names == ("C", "R", "S")

    def test_num_ranks(self):
        assert small_tensor().num_ranks == 3

    def test_rank_shapes(self):
        assert small_tensor().rank_shapes == (2, 2, 2)

    def test_rank_index(self):
        assert small_tensor().rank_index("R") == 1

    def test_rank_index_unknown(self):
        with pytest.raises(SpecificationError):
            small_tensor().rank_index("Z")

    def test_duplicate_rank_names_rejected(self):
        with pytest.raises(SpecificationError):
            FiberTensor(("C", "C"), Fiber(2))

    def test_empty_rank_names_rejected(self):
        with pytest.raises(SpecificationError):
            FiberTensor((), Fiber(2))


class TestContent:
    def test_size(self):
        assert small_tensor().size == 8

    def test_occupancy_dense(self):
        assert small_tensor().occupancy == 8

    def test_density_and_sparsity(self):
        tensor = from_dense(
            np.array([[1.0, 0.0], [0.0, 0.0]]), ("R", "S")
        )
        assert tensor.density == pytest.approx(0.25)
        assert tensor.sparsity == pytest.approx(0.75)

    def test_leaves_paths(self):
        paths = dict(small_tensor().leaves())
        assert paths[(0, 0, 0)] == 1.0
        assert paths[(1, 1, 1)] == 8.0

    def test_fibers_at_rank(self):
        tensor = small_tensor()
        assert len(tensor.fibers_at_rank(0)) == 1
        assert len(tensor.fibers_at_rank(1)) == 2
        assert len(tensor.fibers_at_rank(2)) == 4

    def test_fibers_at_rank_out_of_range(self):
        with pytest.raises(SpecificationError):
            small_tensor().fibers_at_rank(3)


class TestRoundTrip:
    def test_to_dense_round_trip(self, rng):
        array = rng.normal(size=(3, 4, 5))
        array[rng.random(array.shape) < 0.5] = 0.0
        tensor = from_dense(array, ("A", "B", "C"))
        np.testing.assert_allclose(tensor.to_dense(), array)

    def test_keep_zeros_preserves_occupancy(self):
        array = np.zeros((2, 2))
        array[0, 0] = 1.0
        sparse = from_dense(array, ("R", "S"))
        dense = from_dense(array, ("R", "S"), keep_zeros=True)
        assert sparse.occupancy == 1
        assert dense.occupancy == 4

    def test_equality(self):
        assert small_tensor() == small_tensor()

    def test_repr(self):
        assert "C->R->S" in repr(small_tensor())
