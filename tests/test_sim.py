"""Tests for the functional micro-architecture simulator components."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    GlobalBuffer,
    ProcessingElement,
    SimConfig,
    VariableFetchManagementUnit,
)
from repro.sparsity import HSSPattern


class TestSimConfig:
    def test_defaults_match_paper_walkthrough(self):
        config = SimConfig()
        assert (config.num_pes, config.macs_per_pe) == (2, 2)
        assert config.h0 == 4

    def test_supports_paper_pattern(self):
        config = SimConfig()
        assert config.supports(HSSPattern.from_ratios((2, 4), (2, 4)))
        assert config.supports(HSSPattern.from_ratios((2, 4), (2, 3)))

    def test_rejects_wrong_g(self):
        config = SimConfig()
        assert not config.supports(HSSPattern.from_ratios((1, 4), (2, 4)))
        assert not config.supports(HSSPattern.from_ratios((2, 4), (3, 4)))

    def test_rejects_h1_above_max(self):
        assert not SimConfig().supports(
            HSSPattern.from_ratios((2, 4), (2, 8))
        )

    def test_rejects_one_rank(self):
        assert not SimConfig().supports(HSSPattern.from_ratios((2, 4)))

    def test_example_pattern(self):
        assert SimConfig().example_pattern(3).rank(1).h == 3

    def test_bad_config_rejected(self):
        with pytest.raises(SimulationError):
            SimConfig(num_pes=0)
        with pytest.raises(SimulationError):
            SimConfig(macs_per_pe=8, h0=4)


class TestGlobalBuffer:
    def test_aligned_rows(self):
        glb = GlobalBuffer(np.arange(32.0), row_values=16)
        np.testing.assert_allclose(glb.read_row(1), np.arange(16.0, 32.0))

    def test_pads_to_row_multiple(self):
        glb = GlobalBuffer(np.arange(20.0), row_values=16)
        assert glb.num_rows == 2
        assert glb.read_row(1)[4] == 0.0

    def test_counts_reads(self):
        glb = GlobalBuffer(np.arange(32.0), row_values=16)
        glb.read_rows(0, 2)
        assert glb.reads == 2

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            GlobalBuffer(np.arange(16.0), 16).read_row(1)


class TestVFMU:
    def make(self, data, capacity=32):
        glb = GlobalBuffer(np.asarray(data, dtype=float), row_values=16)
        return glb, VariableFetchManagementUnit(glb, capacity)

    def test_serves_unaligned_shifts(self):
        """Fig. 11: shift of 12 values (three blocks) per read."""
        _, vfmu = self.make(np.arange(48.0))
        np.testing.assert_allclose(vfmu.read_shift(12), np.arange(12.0))
        np.testing.assert_allclose(
            vfmu.read_shift(12), np.arange(12.0, 24.0)
        )

    def test_skips_fetch_when_buffered(self):
        """Fig. 12(b): no GLB fetch when enough valid entries exist."""
        glb, vfmu = self.make(np.arange(32.0))
        vfmu.read_shift(16)  # buffers one row, consumes it all
        vfmu.read_shift(8)   # fetches the second row
        before = glb.reads
        vfmu.read_shift(8)   # satisfied from the buffer
        assert glb.reads == before
        assert vfmu.skipped_fetches >= 1

    def test_zero_shift_no_fetch(self):
        glb, vfmu = self.make(np.arange(16.0))
        out = vfmu.read_shift(0)
        assert out.size == 0
        assert glb.reads == 0

    def test_counts_words_written(self):
        _, vfmu = self.make(np.arange(32.0))
        vfmu.read_shift(4)
        assert vfmu.words_written == 16  # one aligned row

    def test_capacity_enforced(self):
        _, vfmu = self.make(np.arange(64.0), capacity=16)
        with pytest.raises(SimulationError):
            vfmu.read_shift(17)

    def test_exhaustion_detected(self):
        _, vfmu = self.make(np.arange(16.0))
        vfmu.read_shift(16)
        with pytest.raises(SimulationError):
            vfmu.read_shift(4)

    def test_too_small_capacity_rejected(self):
        glb = GlobalBuffer(np.arange(16.0), row_values=16)
        with pytest.raises(SimulationError):
            VariableFetchManagementUnit(glb, 8)


class TestProcessingElement:
    def test_selects_by_offset(self):
        pe = ProcessingElement(macs=2, h0=4)
        pe.load_block([2.0, 3.0], [0, 3])
        block = np.array([10.0, 0.0, 0.0, 20.0])
        assert pe.step(block) == pytest.approx(2 * 10 + 3 * 20)

    def test_gates_on_zero_b(self):
        pe = ProcessingElement(macs=2, h0=4)
        pe.load_block([2.0, 3.0], [0, 1])
        pe.step(np.array([10.0, 0.0, 5.0, 5.0]))
        assert pe.full_macs == 1
        assert pe.gated_macs == 1

    def test_cleared_pe_contributes_zero(self):
        pe = ProcessingElement(macs=2, h0=4)
        pe.load_block([2.0], [0])
        pe.clear()
        assert pe.step(np.ones(4)) == 0.0

    def test_occupancy_limit(self):
        pe = ProcessingElement(macs=2, h0=4)
        with pytest.raises(SimulationError):
            pe.load_block([1.0, 2.0, 3.0], [0, 1, 2])

    def test_offset_range_checked(self):
        pe = ProcessingElement(macs=2, h0=4)
        with pytest.raises(SimulationError):
            pe.load_block([1.0], [4])

    def test_wrong_block_width(self):
        pe = ProcessingElement(macs=2, h0=4)
        pe.load_block([1.0], [0])
        with pytest.raises(SimulationError):
            pe.step(np.ones(3))

    def test_counts_mux_selects(self):
        pe = ProcessingElement(macs=2, h0=4)
        pe.load_block([1.0, 2.0], [0, 1])
        pe.step(np.ones(4))
        pe.step(np.ones(4))
        assert pe.mux_selects == 4
