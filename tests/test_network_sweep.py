"""Tests for the engine-backed network evaluation and model sweeps."""

import pytest

from repro.dnn.models import deit_small, get_model, model_names
from repro.energy import Estimator
from repro.errors import WorkloadError
from repro.eval.engine import SweepEngine
from repro.eval import experiments as E


class TestModelRegistry:
    def test_paper_trio_plus_extension_registered(self):
        assert model_names() == (
            "ResNet50", "DeiT-small", "Transformer-Big",
            "EfficientNet-B0",
        )

    def test_lookup_is_case_insensitive(self):
        assert get_model("deit-small").name == "DeiT-small"

    def test_unknown_model_raises(self):
        with pytest.raises(WorkloadError, match="AlexNet"):
            get_model("AlexNet")


class TestEvaluateModelViaEngine:
    def test_repeat_evaluation_is_all_hits(self, estimator):
        engine = SweepEngine(estimator)
        model = deit_small()
        design = engine.design("HighLight")
        first = E.evaluate_model(design, model, 0.5, engine=engine)
        evaluations = engine.stats.misses
        second = E.evaluate_model(design, model, 0.5, engine=engine)
        assert engine.stats.misses == evaluations
        assert first.edp == pytest.approx(second.edp)

    def test_matches_positional_estimator_call(self, estimator):
        """The legacy call shape (estimator positional) still works and
        agrees with an explicit engine."""
        model = deit_small()
        engine = SweepEngine(estimator)
        design = engine.design("TC")
        via_estimator = E.evaluate_model(design, model, 0.0, estimator)
        via_engine = E.evaluate_model(design, model, 0.0, engine=engine)
        assert via_estimator.edp == pytest.approx(via_engine.edp)


class TestExactlyOnceAcrossDegrees:
    def test_deit_sweep_evaluates_each_pair_exactly_once(
        self, monkeypatch
    ):
        """The counting spy mirrors tests/test_engine.py at the network
        level: a multi-degree DeiT-small sweep must evaluate each
        unique (design, workload) pair exactly once — dense layers
        repeat identically at every weight-sparsity point and must be
        deduplicated, not re-evaluated."""
        import repro.eval.engine as engine_mod

        calls = []
        real = engine_mod.evaluate_workload

        def counting(design, workload, estimator):
            calls.append((design.name, workload.key()))
            return real(design, workload, estimator)

        monkeypatch.setattr(engine_mod, "evaluate_workload", counting)
        engine = SweepEngine(Estimator())
        sweep = E.sweep_model(
            deit_small(),
            designs=("TC", "DSTC", "HighLight"),
            degrees=(0.0, 0.5, 0.75),
            engine=engine,
        )
        assert calls, "spy never engaged"
        assert len(calls) == len(set(calls))
        # Dedup must be substantial: DeiT-small has 6 layers of which
        # only 3 are prunable, so the dense layers (and all of TC's
        # degree points) collapse across the 3-degree ladder.
        assert engine.stats.requests > len(calls)
        assert engine.stats.misses == len(calls)
        # TC ignores sparsity entirely: one evaluation per layer.
        tc_calls = [c for c in calls if c[0] == "TC"]
        assert len(tc_calls) == len(deit_small().layers)
        assert all(
            sweep.evaluations[("TC", degree)].edp
            == pytest.approx(sweep.evaluations[("TC", 0.0)].edp)
            for degree in (0.5, 0.75)
        )


class TestSweepModelResult:
    @pytest.fixture(scope="class")
    def sweep(self, estimator):
        return E.sweep_model(
            deit_small(), engine=SweepEngine(estimator)
        )

    def test_default_ladders(self, sweep):
        assert sweep.design_order == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )
        assert sweep.degrees["TC"] == (0.0,)
        assert sweep.degrees["HighLight"] == (0.5, 0.625, 0.75)

    def test_baseline_normalizes_to_one(self, sweep):
        assert sweep.baseline == ("TC", 0.0)
        assert sweep.normalized_edp("TC", 0.0) == pytest.approx(1.0)

    def test_s2ta_unsupported_on_attention_model(self, sweep):
        """DeiT keeps dense layers S2TA cannot process (Sec. 7.3)."""
        for degree in sweep.degrees["S2TA"]:
            assert sweep.evaluations[("S2TA", degree)] is None
            assert sweep.normalized_edp("S2TA", degree) is None

    def test_highlight_beats_dense(self, sweep):
        for degree in sweep.degrees["HighLight"]:
            assert sweep.normalized_edp("HighLight", degree) < 1.0

    def test_rows_cover_grid(self, sweep):
        rows = sweep.rows()
        assert len(rows) == sum(
            len(degrees) for degrees in sweep.degrees.values()
        )

    def test_custom_degrees_apply_to_all_designs(self, estimator):
        sweep = E.sweep_model(
            deit_small(),
            designs=("TC", "HighLight"),
            degrees=(0.0, 0.5),
            engine=SweepEngine(estimator),
        )
        assert sweep.degrees == {
            "TC": (0.0, 0.5), "HighLight": (0.0, 0.5),
        }

    def test_no_tc_means_no_baseline(self, estimator):
        sweep = E.sweep_model(
            deit_small(),
            designs=("HighLight",),
            degrees=(0.5,),
            engine=SweepEngine(estimator),
        )
        assert sweep.baseline is None
        assert sweep.normalized_edp("HighLight", 0.5) is None


class TestFig15ViaEngine:
    def test_fig15_fully_cached_on_second_run(self, estimator):
        engine = SweepEngine(estimator)
        first = E.fig15(engine=engine)
        evaluations = engine.stats.misses
        second = E.fig15(engine=engine)
        assert engine.stats.misses == evaluations
        assert second.points.keys() == first.points.keys()

    def test_deit_presweep_covers_fig15_deit_work(self):
        """A standalone DeiT sweep and fig15 share the cache: running
        fig15 after the presweep costs exactly as many evaluations as
        fig15 alone — the DeiT portion is entirely reused."""
        presweep_engine = SweepEngine(Estimator())
        E.sweep_model(
            deit_small(), designs=tuple(E.DESIGN_LADDERS),
            engine=presweep_engine,
        )
        E.fig15(engine=presweep_engine)
        fresh_engine = SweepEngine(Estimator())
        E.fig15(engine=fresh_engine)
        assert (
            presweep_engine.stats.misses == fresh_engine.stats.misses
        )
