"""Tests for the engine-backed network evaluation and model sweeps."""

import pytest

from repro.dnn.models import deit_small, get_model, model_names
from repro.energy import Estimator
from repro.errors import WorkloadError
from repro.eval.engine import SweepEngine
from repro.eval import experiments as E


class TestModelRegistry:
    def test_paper_trio_plus_extension_registered(self):
        assert model_names() == (
            "ResNet50", "DeiT-small", "Transformer-Big",
            "EfficientNet-B0",
        )

    def test_lookup_is_case_insensitive(self):
        assert get_model("deit-small").name == "DeiT-small"

    def test_unknown_model_raises(self):
        with pytest.raises(WorkloadError, match="AlexNet"):
            get_model("AlexNet")


class TestEvaluateModelViaEngine:
    def test_repeat_evaluation_is_all_hits(self, estimator):
        engine = SweepEngine(estimator)
        model = deit_small()
        design = engine.design("HighLight")
        first = E.evaluate_model(design, model, 0.5, engine)
        evaluations = engine.stats.misses
        second = E.evaluate_model(design, model, 0.5, engine)
        assert engine.stats.misses == evaluations
        assert first.edp == pytest.approx(second.edp)

    def test_matches_positional_estimator_call(self, estimator):
        """The legacy call shape (estimator positional) still works and
        agrees with an explicit engine."""
        model = deit_small()
        engine = SweepEngine(estimator)
        design = engine.design("TC")
        via_estimator = E.evaluate_model(design, model, 0.0, estimator)
        via_engine = E.evaluate_model(design, model, 0.0, engine)
        assert via_estimator.edp == pytest.approx(via_engine.edp)


class TestExactlyOnceAcrossDegrees:
    def test_deit_sweep_evaluates_each_pair_exactly_once(
        self, monkeypatch
    ):
        """The counting spy mirrors tests/test_engine.py at the network
        level: a multi-degree DeiT-small sweep must evaluate each
        unique (design, workload) pair exactly once — dense layers
        repeat identically at every weight-sparsity point and must be
        deduplicated, not re-evaluated."""
        import repro.eval.engine as engine_mod

        calls = []
        real = engine_mod.evaluate_workload
        real_batch = engine_mod.evaluate_workloads_batch

        def counting(design, workload, estimator):
            calls.append((design.name, workload.key()))
            return real(design, workload, estimator)

        def counting_batch(design, workloads, estimator, **kwargs):
            for workload in workloads:
                calls.append((design.name, workload.key()))
            return real_batch(design, workloads, estimator, **kwargs)

        monkeypatch.setattr(engine_mod, "evaluate_workload", counting)
        monkeypatch.setattr(
            engine_mod, "evaluate_workloads_batch", counting_batch
        )
        engine = SweepEngine(Estimator())
        sweep = E.sweep_model(
            deit_small(),
            designs=("TC", "DSTC", "HighLight"),
            degrees=(0.0, 0.5, 0.75),
            ctx=engine,
        )
        assert calls, "spy never engaged"
        assert len(calls) == len(set(calls))
        # Dedup must be substantial: DeiT-small has 6 layers of which
        # only 3 are prunable, so the dense layers (and all of TC's
        # degree points) collapse across the 3-degree ladder.
        assert engine.stats.requests > len(calls)
        assert engine.stats.misses == len(calls)
        # TC ignores sparsity entirely: one evaluation per layer.
        tc_calls = [c for c in calls if c[0] == "TC"]
        assert len(tc_calls) == len(deit_small().layers)
        assert all(
            sweep.evaluations[("TC", degree)].edp
            == pytest.approx(sweep.evaluations[("TC", 0.0)].edp)
            for degree in (0.5, 0.75)
        )


class TestSweepModelResult:
    @pytest.fixture(scope="class")
    def sweep(self, estimator):
        return E.sweep_model(
            deit_small(), ctx=SweepEngine(estimator)
        )

    def test_default_ladders(self, sweep):
        assert sweep.design_order == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )
        assert sweep.degrees["TC"] == (0.0,)
        assert sweep.degrees["HighLight"] == (0.5, 0.625, 0.75)

    def test_baseline_normalizes_to_one(self, sweep):
        assert sweep.baseline == ("TC", 0.0)
        assert sweep.normalized_edp("TC", 0.0) == pytest.approx(1.0)

    def test_s2ta_unsupported_on_attention_model(self, sweep):
        """DeiT keeps dense layers S2TA cannot process (Sec. 7.3)."""
        for degree in sweep.degrees["S2TA"]:
            assert sweep.evaluations[("S2TA", degree)] is None
            assert sweep.normalized_edp("S2TA", degree) is None

    def test_highlight_beats_dense(self, sweep):
        for degree in sweep.degrees["HighLight"]:
            assert sweep.normalized_edp("HighLight", degree) < 1.0

    def test_rows_cover_grid(self, sweep):
        rows = sweep.rows()
        assert len(rows) == sum(
            len(degrees) for degrees in sweep.degrees.values()
        )

    def test_custom_degrees_apply_to_all_designs(self, estimator):
        sweep = E.sweep_model(
            deit_small(),
            designs=("TC", "HighLight"),
            degrees=(0.0, 0.5),
            ctx=SweepEngine(estimator),
        )
        assert sweep.degrees == {
            "TC": (0.0, 0.5), "HighLight": (0.0, 0.5),
        }

    def test_mapping_degrees_pick_per_design(self, estimator):
        """A per-design degree mapping (the Fig. 2 path): named
        designs use their entry, absent designs keep their ladder."""
        sweep = E.sweep_model(
            deit_small(),
            designs=("TC", "DSTC", "HighLight"),
            degrees={"TC": (0.0,), "DSTC": (0.62,)},
            ctx=SweepEngine(estimator),
        )
        assert sweep.degrees == {
            "TC": (0.0,),
            "DSTC": (0.62,),
            "HighLight": (0.5, 0.625, 0.75),
        }
        assert sweep.baseline == ("TC", 0.0)
        assert sweep.normalized_edp("DSTC", 0.62) is not None

    def test_mapping_degrees_match_sequence_degrees(self, estimator):
        """A mapping naming every design agrees exactly with the
        equivalent uniform-sequence sweep."""
        engine = SweepEngine(estimator)
        uniform = E.sweep_model(
            deit_small(), designs=("TC", "HighLight"),
            degrees=(0.0, 0.5), ctx=engine,
        )
        mapped = E.sweep_model(
            deit_small(), designs=("TC", "HighLight"),
            degrees={"TC": (0.0, 0.5), "HighLight": (0.0, 0.5)},
            ctx=engine,
        )
        assert mapped.to_payload() == uniform.to_payload()

    def test_no_tc_means_no_baseline(self, estimator):
        sweep = E.sweep_model(
            deit_small(),
            designs=("HighLight",),
            degrees=(0.5,),
            ctx=SweepEngine(estimator),
        )
        assert sweep.baseline is None
        assert sweep.normalized_edp("HighLight", 0.5) is None


class TestFig15ViaEngine:
    def test_fig15_fully_cached_on_second_run(self, estimator):
        engine = SweepEngine(estimator)
        first = E.fig15(engine)
        evaluations = engine.stats.misses
        second = E.fig15(engine)
        assert engine.stats.misses == evaluations
        assert second.points.keys() == first.points.keys()

    def test_deit_presweep_covers_fig15_deit_work(self):
        """A standalone DeiT sweep and fig15 share the cache: running
        fig15 after the presweep costs exactly as many evaluations as
        fig15 alone — the DeiT portion is entirely reused."""
        presweep_engine = SweepEngine(Estimator())
        E.sweep_model(
            deit_small(), designs=tuple(E.DESIGN_LADDERS),
            ctx=presweep_engine,
        )
        E.fig15(presweep_engine)
        fresh_engine = SweepEngine(Estimator())
        E.fig15(fresh_engine)
        assert (
            presweep_engine.stats.misses == fresh_engine.stats.misses
        )


class TestSparsityProfiles:
    def test_profile_overrides_named_layers_only(self, estimator):
        """A profile pins ff1 to 75% while the rest of the network
        stays at the sweep degree: only ff1's per-layer metrics move."""
        engine = SweepEngine(estimator)
        model = deit_small()
        design = engine.design("HighLight")
        plain = E.evaluate_model(design, model, 0.5, engine)
        profiled = E.evaluate_model(
            design, model, 0.5, engine, profile={"ff1": 0.75}
        )
        assert profiled.per_layer["ff1"].edp != pytest.approx(
            plain.per_layer["ff1"].edp
        )
        for name in plain.per_layer:
            if name == "ff1":
                continue
            assert profiled.per_layer[name].edp == pytest.approx(
                plain.per_layer[name].edp
            )

    def test_profile_can_sparsify_non_prunable_layers(self, estimator):
        """Profiles address any layer by name, including ones outside
        model.prunable (qkv_proj on DeiT stays dense by default)."""
        engine = SweepEngine(estimator)
        model = deit_small()
        design = engine.design("HighLight")
        plain = E.evaluate_model(design, model, 0.0, engine)
        profiled = E.evaluate_model(
            design, model, 0.0, engine, profile={"qkv_proj": 0.5}
        )
        assert profiled.per_layer["qkv_proj"].edp != pytest.approx(
            plain.per_layer["qkv_proj"].edp
        )

    def test_sweep_model_applies_profile_at_every_point(self, estimator):
        profile = {"ff1": 0.75}
        sweep = E.sweep_model(
            deit_small(),
            designs=("HighLight",),
            degrees=(0.0, 0.5),
            ctx=SweepEngine(estimator),
            profile=profile,
        )
        for degree in (0.0, 0.5):
            evaluation = sweep.evaluations[("HighLight", degree)]
            assert evaluation is not None

    def test_unknown_layer_rejected(self, estimator):
        with pytest.raises(WorkloadError, match="no_such"):
            E.sweep_model(
                deit_small(),
                ctx=SweepEngine(estimator),
                profile={"no_such": 0.5},
            )


class TestProfileParsing:
    def test_load_profile_forms(self, tmp_path):
        import json

        path = tmp_path / "profile.json"
        path.write_text(json.dumps({
            "a": 0.5,
            "b": {"degree": 0.625},
            "c": {"pattern": "2:4"},
        }))
        profile = E.load_profile(path)
        assert profile == {"a": 0.5, "b": 0.625, "c": 0.5}

    def test_bad_degree_rejected(self, tmp_path):
        import json

        path = tmp_path / "profile.json"
        path.write_text(json.dumps({"a": -0.1}))
        with pytest.raises(WorkloadError, match=r"\[0, 1\)"):
            E.load_profile(path)

    def test_bad_pattern_rejected(self, tmp_path):
        import json

        path = tmp_path / "profile.json"
        path.write_text(json.dumps({"a": {"pattern": "4:2"}}))
        with pytest.raises(WorkloadError, match="G <= H"):
            E.load_profile(path)

    def test_degree_and_pattern_conflict(self, tmp_path):
        import json

        path = tmp_path / "profile.json"
        path.write_text(json.dumps(
            {"a": {"degree": 0.5, "pattern": "2:4"}}
        ))
        with pytest.raises(WorkloadError, match="exactly one"):
            E.load_profile(path)

    def test_non_object_profile_rejected(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(WorkloadError, match="JSON object"):
            E.load_profile(path)
