"""Tests for the dual-side HSS (DSSO) functional simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import simulate_dsso_matmul
from repro.sparsity import HSSPattern, sparsify


def make_operands(rng, h1=4, m=6, k=32, n=5):
    pattern_a = HSSPattern.from_ratios((2, 4))
    pattern_b = HSSPattern.from_ratios((4, 4), (2, h1))
    a = sparsify(rng.normal(size=(m, k)), pattern_a)
    # B sparsified along K independently per column.
    b = sparsify(rng.normal(size=(k, n)), pattern_b, axis=0)
    return a, b, pattern_a, pattern_b


class TestExactness:
    @pytest.mark.parametrize("h1", [2, 3, 4, 8])
    def test_exact(self, rng, h1):
        a, b, pattern_a, pattern_b = make_operands(rng, h1, k=64)
        result, _ = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
        np.testing.assert_allclose(result, a @ b, atol=1e-10)

    def test_dense_b_rank1(self, rng):
        a, b, pattern_a, _ = make_operands(rng)
        pattern_b = HSSPattern.from_ratios((4, 4), (4, 4))
        result, _ = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
        np.testing.assert_allclose(result, a @ b, atol=1e-10)


class TestDualSideSpeedup:
    def test_multiplicative_speedup(self, rng):
        """Fig. 17: total speedup is the product of both densities."""
        a, b, pattern_a, pattern_b = make_operands(rng, h1=4, k=64)
        _, stats = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
        assert stats.speedup_vs_dense == pytest.approx(4.0)

    def test_rank1_blocks_skipped(self, rng):
        a, b, pattern_a, pattern_b = make_operands(rng, h1=4, k=64)
        _, stats = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
        # Half the activation blocks are empty under C1(2:4).
        assert stats.rank1_blocks_skipped == stats.steps

    def test_speed_scales_with_h1(self, rng):
        speeds = {}
        for h1 in (2, 4, 8):
            a, b, pattern_a, pattern_b = make_operands(rng, h1, k=64)
            _, stats = simulate_dsso_matmul(a, b, pattern_a, pattern_b)
            speeds[h1] = stats.speedup_vs_dense
        assert speeds[4] == pytest.approx(2 * speeds[2])
        assert speeds[8] == pytest.approx(4 * speeds[2])


class TestValidation:
    def test_rejects_sparse_a_upper_rank(self, rng):
        a, b, _, pattern_b = make_operands(rng)
        bad = HSSPattern.from_ratios((2, 4), (2, 4))
        with pytest.raises(SimulationError):
            simulate_dsso_matmul(a, b, bad, pattern_b)

    def test_rejects_sparse_b_rank0(self, rng):
        a, b, pattern_a, _ = make_operands(rng)
        bad = HSSPattern.from_ratios((2, 4), (2, 4))
        with pytest.raises(SimulationError):
            simulate_dsso_matmul(a, b, pattern_a, bad)

    def test_rejects_geometry_mismatch(self, rng):
        a, b, pattern_a, _ = make_operands(rng)
        bad = HSSPattern.from_ratios((8, 8), (2, 4))
        with pytest.raises(SimulationError):
            simulate_dsso_matmul(a, b, pattern_a, bad)

    def test_rejects_shape_mismatch(self, rng):
        a, b, pattern_a, pattern_b = make_operands(rng)
        with pytest.raises(SimulationError):
            simulate_dsso_matmul(a, b[:-1], pattern_a, pattern_b)
