"""Simulator generalization: configurations beyond the Sec. 6 example.

The paper's walkthrough uses two PEs x two MACs with C1(2:H)->C0(2:4);
the real HighLight supports C1(4:{4..8})->C0(2:{2..4}). These tests run
the simulator at scaled configurations (more PEs, wider blocks) and
confirm exactness and schedule counts generalize.
"""

import numpy as np
import pytest

from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import HSSPattern, sparsify
from repro.utils import ceil_div


def run_case(rng, config, h1, m=4, groups=2, n=3, compress=False):
    pattern = config.example_pattern(h1)
    k = groups * config.h0 * h1
    a = sparsify(rng.normal(size=(m, k)), pattern)
    b = rng.normal(size=(k, n))
    b[rng.random(b.shape) < 0.4] = 0.0
    result, stats = simulate_matmul(a, b, pattern, config, compress)
    np.testing.assert_allclose(result, a @ b, atol=1e-10)
    return a, stats, pattern, k


class TestFullScaleRank1:
    """G1 = 4 (the shipped HighLight's Rank1 G)."""

    @pytest.mark.parametrize("h1", [4, 6, 8])
    @pytest.mark.parametrize("compress", [False, True])
    def test_exact_and_scheduled(self, rng, h1, compress):
        config = SimConfig(num_pes=4, macs_per_pe=2, h0=4, h1_max=8,
                           glb_row_values=32)
        a, stats, pattern, k = run_case(
            rng, config, h1, compress=compress
        )
        assert stats.scheduled_products == pytest.approx(
            a.shape[0] * k * 3 * pattern.density
        )


class TestWideRank0:
    """H0 = 8 blocks with G0 = 2."""

    def test_exact(self, rng):
        config = SimConfig(num_pes=2, macs_per_pe=2, h0=8, h1_max=4,
                           glb_row_values=32)
        run_case(rng, config, 3)

    def test_steps(self, rng):
        config = SimConfig(num_pes=2, macs_per_pe=2, h0=8, h1_max=4,
                           glb_row_values=32)
        _, stats, _, k = run_case(rng, config, 4, m=5, groups=2, n=2)
        assert stats.steps == 5 * 2 * ceil_div(k, 8 * 4)


class TestManyMacsPerPe:
    """G0 = 4 MACs per PE."""

    def test_exact_with_gating(self, rng):
        config = SimConfig(num_pes=2, macs_per_pe=4, h0=8, h1_max=4,
                           glb_row_values=32)
        _, stats, _, _ = run_case(rng, config, 2)
        assert stats.gated_macs > 0

    def test_mac_accounting_closed(self, rng):
        config = SimConfig(num_pes=2, macs_per_pe=4, h0=8, h1_max=4,
                           glb_row_values=32)
        _, stats, _, _ = run_case(rng, config, 4, compress=True)
        assert stats.full_macs + stats.gated_macs == stats.mux_selects


class TestHSSPatternEdgeGeometries:
    def test_single_group_k(self, rng):
        """K equal to exactly one rank-1 group."""
        config = SimConfig()
        pattern = config.example_pattern(4)
        a = sparsify(rng.normal(size=(3, 16)), pattern)
        b = rng.normal(size=(16, 2))
        result, stats = simulate_matmul(a, b, pattern, config)
        np.testing.assert_allclose(result, a @ b)
        assert stats.steps <= 3 * 2 * 1

    def test_single_column_b(self, rng):
        config = SimConfig()
        pattern = config.example_pattern(3)
        a = sparsify(rng.normal(size=(2, 24)), pattern)
        b = rng.normal(size=(24, 1))
        result, _ = simulate_matmul(a, b, pattern, config)
        np.testing.assert_allclose(result, a @ b)

    def test_single_row_a(self, rng):
        config = SimConfig()
        pattern = config.example_pattern(4)
        a = sparsify(rng.normal(size=(1, 32)), pattern)
        b = rng.normal(size=(32, 4))
        result, _ = simulate_matmul(a, b, pattern, config, True)
        np.testing.assert_allclose(result, a @ b)
