"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.accelerators import TC, HighLight
from repro.dnn.reference import conv2d_reference, relu
from repro.dnn.toeplitz import flatten_weights, fold_outputs, toeplitz_expand
from repro.model.workload import (
    MatmulWorkload,
    dense_operand,
    hss_operand,
    unstructured_operand,
)
from repro.pruning import HSSScheme, TrainConfig, make_blobs, train_dense
from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import HSSPattern, conforms, sparsify


class TestConvThroughSimulator:
    """A convolution layer: sparsify weights -> Toeplitz -> simulate."""

    def test_sparse_conv_exact(self, rng):
        config = SimConfig()
        pattern = config.example_pattern()
        weights = rng.normal(size=(4, 8, 2, 2))  # (M, C, R, S): K = 32
        inputs = relu(rng.normal(size=(8, 5, 5)))

        flat = sparsify(flatten_weights(weights), pattern)
        expanded = toeplitz_expand(inputs, kernel=2)
        result, stats = simulate_matmul(
            flat, expanded, pattern, config, compress_b=True
        )

        sparse_weights = flat.reshape(weights.shape)
        reference = conv2d_reference(sparse_weights, inputs)
        np.testing.assert_allclose(
            fold_outputs(result, 4), reference, atol=1e-10
        )
        # ReLU-sparse activations trigger gating.
        assert stats.gated_macs > 0

    def test_analytical_matches_simulated_schedule(self, rng, estimator):
        """The analytical model's cycle count equals the simulator's
        steps for an aligned HSS workload (both are exact)."""
        config = SimConfig()
        pattern = config.example_pattern(4)
        m, k, n = 8, 64, 8
        a = sparsify(rng.normal(size=(m, k)), pattern)
        b = rng.normal(size=(k, n))
        _, stats = simulate_matmul(a, b, pattern, config)

        workload = MatmulWorkload(
            m=m, k=k, n=n, a=hss_operand(pattern), b=dense_operand()
        )
        design = HighLight()
        metrics = design.evaluate(workload, estimator)
        analytical_products = (
            metrics.cycles * design.resources.arch.num_macs
        )
        assert stats.scheduled_products == pytest.approx(
            analytical_products
        )


class TestPrunedModelThroughAccelerator:
    """Train -> prune -> feed the pruned weights to the cost model."""

    def test_pipeline(self, rng, estimator):
        x, y = make_blobs(num_samples=600, num_features=64, num_classes=4)
        model = train_dense(x, y, TrainConfig(hidden=64, epochs=8))
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        model.install_masks(HSSScheme(pattern))

        # Masks were installed along w1's last axis, so w1 itself is
        # the HSS-conforming GEMM operand.
        weights = model.w1
        assert conforms(weights, pattern)

        workload = MatmulWorkload(
            m=weights.shape[0], k=weights.shape[1], n=x.shape[0],
            a=hss_operand(pattern),
            b=unstructured_operand(0.3),
            name="pruned-mlp-layer1",
        )
        dense = TC().evaluate(workload, estimator)
        ours = HighLight().evaluate(workload, estimator)
        assert ours.edp < dense.edp / 3  # ~4x skip minus overheads

    def test_simulated_inference_layer(self, rng):
        """Run a pruned MLP layer through the functional simulator."""
        x, y = make_blobs(num_samples=64, num_features=32, num_classes=4)
        model = train_dense(x, y, TrainConfig(hidden=32, epochs=5))
        config = SimConfig()
        pattern = config.example_pattern()
        model.install_masks(HSSScheme(pattern))

        weights = model.w1  # conforming along its last (contracted) axis
        operand_b = rng.normal(size=(weights.shape[1], 8))
        result, _ = simulate_matmul(weights, operand_b, pattern, config)
        np.testing.assert_allclose(
            result, weights @ operand_b, atol=1e-8
        )
