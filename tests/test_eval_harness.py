"""Tests for workload realization and cell evaluation (Sec. 7.1 rules)."""

import pytest

from repro.accelerators import DSTC, STC, S2TA, TC, HighLight
from repro.errors import UnsupportedWorkloadError
from repro.eval.harness import (
    canonical_hss,
    evaluate_cell,
    realize_workloads,
    workload_for_layer,
)
from repro.model.workload import Structure


class TestCanonicalPatterns:
    def test_dense(self):
        assert canonical_hss(0.0) is None

    def test_known_degrees(self):
        for degree in (0.5, 0.625, 0.75):
            pattern = canonical_hss(degree)
            assert pattern.sparsity == pytest.approx(degree)

    def test_unknown_degree(self):
        with pytest.raises(KeyError):
            canonical_hss(0.3)


class TestRealization:
    def test_tc_gets_dense(self):
        (workload,) = realize_workloads("TC", 0.75, 0.5)
        assert workload.a.is_dense and workload.b.is_dense

    def test_dstc_gets_unstructured(self):
        (workload,) = realize_workloads("DSTC", 0.75, 0.5)
        assert workload.a.structure is Structure.UNSTRUCTURED
        assert workload.a.sparsity == pytest.approx(0.75)

    def test_stc_gets_hss_both_orientations(self):
        workloads = realize_workloads("STC", 0.0, 0.5)
        assert len(workloads) == 2
        # The swapped orientation exposes the structured 50% operand.
        assert workloads[1].a.structure is Structure.HSS

    def test_s2ta_gets_g8(self):
        workloads = realize_workloads("S2TA", 0.5, 0.75)
        assert workloads[0].a.pattern.rank(0).h == 8

    def test_highlight_swaps_only_canonical_degrees(self):
        assert len(realize_workloads("HighLight", 0.0, 0.5)) == 2
        assert len(realize_workloads("HighLight", 0.0, 0.25)) == 1

    def test_unknown_design(self):
        with pytest.raises(UnsupportedWorkloadError):
            realize_workloads("Eyeriss", 0.0, 0.0)

    def test_layer_shapes_preserved(self):
        workloads = workload_for_layer("TC", (128, 576, 784), 0.5, 0.6)
        assert (workloads[0].m, workloads[0].k, workloads[0].n) == (
            128, 576, 784,
        )


class TestEvaluateCell:
    def test_returns_best_orientation(self, estimator):
        """A-dense/B-sparse: STC's best realization swaps operands."""
        direct = evaluate_cell(STC(), 0.5, 0.0, estimator, 256, 256, 256)
        swapped = evaluate_cell(STC(), 0.0, 0.5, estimator, 256, 256, 256)
        assert swapped.edp == pytest.approx(direct.edp)

    def test_s2ta_unsupported_on_dense(self, estimator):
        assert evaluate_cell(S2TA(), 0.0, 0.0, estimator) is None

    def test_s2ta_supported_after_swap(self, estimator):
        assert evaluate_cell(S2TA(), 0.0, 0.5, estimator) is not None

    def test_all_designs_on_sparse_cell(self, estimator):
        for design in (TC(), STC(), DSTC(), S2TA(), HighLight()):
            metrics = evaluate_cell(
                design, 0.5, 0.5, estimator, 256, 256, 256
            )
            assert metrics is not None
            assert metrics.energy_pj > 0
