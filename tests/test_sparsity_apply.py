"""Tests for executable sparsity specifications (apply_spec)."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.fibertree import from_dense
from repro.sparsity import HSSPattern, parse_spec, sparsify
from repro.sparsity.apply import apply_spec


def tree_of(array, names):
    return from_dense(np.asarray(array, dtype=float), names,
                      keep_zeros=True)


class TestGHRules:
    def test_one_rank_gh(self, rng):
        array = rng.normal(size=(4, 8))
        spec = parse_spec("M->K(2:4)")
        pruned = apply_spec(tree_of(array, ("M", "K")), spec)
        assert pruned.density == pytest.approx(0.5)

    def test_matches_numpy_sparsify(self, rng):
        """The executable spec and the fast numpy path agree."""
        array = rng.normal(size=(4, 16))
        spec = parse_spec("M->K(2:4)")
        tree_result = apply_spec(tree_of(array, ("M", "K")), spec)
        numpy_result = sparsify(array, HSSPattern.from_ratios((2, 4)))
        np.testing.assert_allclose(
            tree_result.to_dense(), numpy_result
        )

    def test_two_rank_hss_matches_numpy(self, rng):
        """The Fig. 5 pattern applied via the partitioned tree equals
        the flat sparsifier."""
        from repro.fibertree import partition

        array = rng.normal(size=(2, 32))
        tree = tree_of(array, ("M", "K"))
        tree = partition(tree, "K", 4, ("K1", "K0"))
        spec = parse_spec("M->K1(2:4)->K0(2:4)")
        pruned = apply_spec(tree, spec, unconstrained_sparsity=0.0)
        expected = sparsify(
            array, HSSPattern.from_ratios((2, 4), (2, 4))
        ).reshape(2, 8, 4)
        np.testing.assert_allclose(pruned.to_dense(), expected)

    def test_intermediate_rank_prunes_subtrees(self, rng):
        array = np.ones((4, 4))
        array[1] *= 10  # row 1 clearly most important
        spec = parse_spec("R(1:4)->S")
        pruned = apply_spec(tree_of(array, ("R", "S")), spec)
        dense = pruned.to_dense()
        assert np.all(dense[1] == 10)
        assert np.all(dense[[0, 2, 3]] == 0)


class TestUnconstrained:
    def test_channel_pruning(self):
        array = np.array([[1.0, 1], [5, 5], [9, 9], [2, 2]])
        spec = parse_spec("C(unconstrained)->S")
        pruned = apply_spec(
            tree_of(array, ("C", "S")), spec, unconstrained_sparsity=0.5
        )
        dense = pruned.to_dense()
        # The two lowest-importance channels (rows 0 and 3) are gone.
        assert np.all(dense[[0, 3]] == 0)
        assert np.all(dense[[1, 2]] != 0)

    def test_unstructured_leaf_pruning(self, rng):
        array = rng.normal(size=16)
        spec = parse_spec("K(unconstrained)")
        pruned = apply_spec(
            tree_of(array, ("K",)), spec, unconstrained_sparsity=0.75
        )
        assert pruned.occupancy == 4


class TestValidation:
    def test_rank_name_mismatch(self, rng):
        with pytest.raises(SpecificationError):
            apply_spec(
                tree_of(rng.normal(size=(2, 2)), ("A", "B")),
                parse_spec("X->Y(2:4)"),
            )

    def test_ghrange_rejected(self, rng):
        spec = parse_spec("M->K(2:{2<=H<=4})")
        with pytest.raises(SpecificationError):
            apply_spec(tree_of(rng.normal(size=(2, 4)), ("M", "K")), spec)

    def test_bad_unconstrained_fraction(self, rng):
        with pytest.raises(SpecificationError):
            apply_spec(
                tree_of(rng.normal(size=(2, 2)), ("M", "K")),
                parse_spec("M->K(unconstrained)"),
                unconstrained_sparsity=1.0,
            )

    def test_input_tree_unmodified(self, rng):
        array = rng.normal(size=(2, 8))
        tree = tree_of(array, ("M", "K"))
        before = tree.occupancy
        apply_spec(tree, parse_spec("M->K(1:4)"))
        assert tree.occupancy == before
