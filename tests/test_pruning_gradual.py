"""Tests for gradual pruning schedules."""

import copy

import pytest

from repro.errors import PruningError
from repro.pruning import TrainConfig, make_blobs, train_dense
from repro.pruning.gradual import (
    default_schedule,
    gradual_prune,
    is_refinement,
    validate_schedule,
)
from repro.sparsity.hss import HSSPattern


class TestRefinement:
    def test_smaller_g_refines(self):
        coarse = HSSPattern.from_ratios((2, 4), (3, 4))
        fine = HSSPattern.from_ratios((2, 4), (2, 4))
        assert is_refinement(coarse, fine)

    def test_same_pattern_refines_itself(self):
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        assert is_refinement(pattern, pattern)

    def test_larger_g_does_not_refine(self):
        coarse = HSSPattern.from_ratios((2, 4), (2, 4))
        loose = HSSPattern.from_ratios((2, 4), (3, 4))
        assert not is_refinement(coarse, loose)

    def test_different_h_does_not_refine(self):
        a = HSSPattern.from_ratios((2, 4))
        b = HSSPattern.from_ratios((2, 8))
        assert not is_refinement(a, b)

    def test_added_rank_refines(self):
        one = HSSPattern.from_ratios((2, 4))
        two = HSSPattern.from_ratios((2, 4), (2, 4))
        assert is_refinement(one, two)

    def test_dropped_rank_does_not_refine(self):
        two = HSSPattern.from_ratios((2, 4), (2, 4))
        one = HSSPattern.from_ratios((2, 4))
        assert not is_refinement(two, one)


class TestScheduleValidation:
    def test_default_schedule_valid(self):
        validate_schedule(default_schedule())

    def test_sparsity_monotone(self):
        degrees = [p.sparsity for p in default_schedule()]
        assert degrees == sorted(degrees)

    def test_empty_rejected(self):
        with pytest.raises(PruningError):
            validate_schedule([])

    def test_non_refining_rejected(self):
        with pytest.raises(PruningError):
            validate_schedule(
                [
                    HSSPattern.from_ratios((2, 4), (2, 4)),
                    HSSPattern.from_ratios((2, 4), (3, 4)),
                ]
            )


class TestGradualPrune:
    @pytest.fixture(scope="class")
    def setup(self):
        x, y = make_blobs(num_samples=1000, num_features=32,
                          num_classes=4)
        config = TrainConfig(hidden=64, epochs=12)
        model = train_dense(x, y, config)
        return model, x, y, config

    def test_trajectory_recorded(self, setup):
        model, x, y, config = setup
        results = gradual_prune(
            copy.deepcopy(model), default_schedule(), x, y, config
        )
        assert len(results) == 3
        degrees = [r.sparsity for r in results]
        assert degrees == sorted(degrees)

    def test_finetune_recovers_each_step(self, setup):
        model, x, y, config = setup
        results = gradual_prune(
            copy.deepcopy(model), default_schedule(), x, y, config
        )
        for step in results:
            assert (
                step.accuracy_after_finetune
                >= step.accuracy_after_mask - 1e-9
            )

    def test_gradual_no_worse_than_one_shot_mask(self, setup):
        """The final gradual accuracy is at least the one-shot
        masked-but-untuned accuracy (the schedule's whole point)."""
        model, x, y, config = setup
        gradual_model = copy.deepcopy(model)
        results = gradual_prune(
            gradual_model, default_schedule(), x, y, config
        )
        one_shot = copy.deepcopy(model)
        from repro.pruning import HSSScheme

        one_shot.install_masks(HSSScheme(default_schedule()[-1]))
        assert (
            results[-1].accuracy_after_finetune
            >= one_shot.accuracy(x, y) - 1e-9
        )
