"""Tests for the claim-based job queue and the worker loop.

Covers the distributed-fill contract end to end: transactional
exactly-once claims, ownership-guarded completion, lease expiry and
crash recovery (a killed worker's cells are reclaimed and — because
results are flushed before rows turn done — re-served from the cache,
not re-evaluated), and byte-equivalence of a queue-filled cache with a
single-process fill.
"""

import json
import sqlite3
import time

import pytest

from repro.cli import main
from repro.errors import EvaluationError, QueueError
from repro.eval import cache as cache_mod
from repro.eval.cache import PersistentCache, estimator_fingerprint
from repro.eval.engine import SweepEngine
from repro.eval.queue import (
    DEFAULT_BATCH_SIZE,
    JobStore,
    LeaseHeartbeat,
    QueueStats,
    default_worker_id,
    grid_fill_pairs,
    model_fill_pairs,
    queue_counts,
    queue_db_path,
)
from repro.eval.runs import record_from_worker
from repro.model.workload import synthetic_workload

DESIGNS = ("TC", "DSTC")
A_DEGREES = (0.0, 0.5)
B_DEGREES = (0.0, 0.5)
SIZE = 64


def small_grid():
    return grid_fill_pairs(
        DESIGNS, A_DEGREES, B_DEGREES, m=SIZE, k=SIZE, n=SIZE
    )


@pytest.fixture
def queue_path(tmp_path, estimator):
    return queue_db_path(tmp_path, estimator_fingerprint(estimator))


@pytest.fixture
def store(queue_path, estimator):
    with JobStore(queue_path, estimator_fingerprint(estimator)) as s:
        yield s


class FakeClock:
    """An injectable wall clock so lease-expiry tests need not sleep."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestFill:
    def test_fill_dedups_equal_realizations(self, store):
        pairs = small_grid()
        summary = store.fill(pairs)
        # The grid realizes more candidate workloads than unique
        # (design, workload-key) cells; the queue holds the dedup'd set.
        assert 0 < summary.added <= len(pairs)
        digests = {
            cache_mod.pair_digest(d, w.stripped.key()) for d, w in pairs
        }
        assert summary.added == len(digests)

    def test_refill_is_idempotent(self, store):
        store.fill(small_grid())
        again = store.fill(small_grid())
        assert again.added == 0
        assert again.skipped_queued == store.stats().total

    def test_fill_skips_cached_cells(self, tmp_path, queue_path,
                                     estimator):
        # Warm the cache first: a fill against it queues nothing.
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        engine = SweepEngine(estimator, cache=cache)
        engine.sweep(DESIGNS, A_DEGREES, B_DEGREES,
                     m=SIZE, k=SIZE, n=SIZE)
        engine.close()
        with JobStore(queue_path) as store:
            summary = store.fill(small_grid())
        assert summary.added == 0
        assert summary.skipped_cached > 0

    def test_model_fill_pairs_enumerates_network(self):
        from repro.dnn.models import get_model

        pairs = model_fill_pairs(
            get_model("ResNet50"), ("TC",), degrees=(0.5,)
        )
        assert pairs
        assert all(design == "TC" for design, _ in pairs)

    def test_stats_empty_queue(self, store):
        assert store.stats() == QueueStats()
        assert store.stats().remaining == 0


class TestClaims:
    def test_two_workers_partition_the_queue(self, store):
        store.fill(small_grid())
        total = store.stats().pending
        a = store.claim_batch("w-a", limit=3)
        b = store.claim_batch("w-b", limit=total)
        assert len(a) == 3
        assert len(b) == total - 3
        assert not {job.digest for job in a} & {job.digest for job in b}
        assert store.stats().pending == 0

    def test_claim_limit_validated(self, store):
        with pytest.raises(QueueError):
            store.claim_batch("w", limit=0)

    def test_complete_requires_ownership(self, store):
        store.fill(small_grid())
        jobs = store.claim_batch("w-a", limit=2)
        digests = [job.digest for job in jobs]
        assert store.complete("w-b", digests) == 0
        assert store.stats().done == 0
        assert store.complete("w-a", digests) == 2
        assert store.stats().done == 2
        # Done rows are terminal: completing again moves nothing.
        assert store.complete("w-a", digests) == 0

    def test_fail_and_requeue(self, store):
        store.fill(small_grid())
        jobs = store.claim_batch("w", limit=2)
        digests = [job.digest for job in jobs]
        assert store.fail("w", digests, "boom") == 2
        assert store.stats().failed == 2
        assert store.requeue(failed=True) == 2
        assert store.stats().failed == 0
        reclaimed = store.claim_batch("w", limit=10)
        assert {job.digest for job in reclaimed} >= set(digests)

    def test_release_hands_claims_back(self, store):
        store.fill(small_grid())
        store.claim_batch("w", limit=2)
        before = store.stats()
        assert before.claimed == 2
        assert store.release("w") == 2
        after = store.stats()
        assert after.claimed == 0
        assert after.pending == before.pending + 2

    def test_job_roundtrips_workload(self, store):
        workload = synthetic_workload(0.5, 0.25, size=SIZE)
        store.fill([("TC", workload)])
        (job,) = store.claim_batch("w")
        assert job.design == "TC"
        assert job.workload.key() == workload.stripped.key()
        assert job.attempts == 1


class TestLeases:
    def test_expired_lease_is_reclaimable(self, queue_path):
        clock = FakeClock()
        with JobStore(queue_path, clock=clock) as store:
            first = store.fill(small_grid()).added
            claimed = store.claim_batch("w-dead", limit=100,
                                        lease_s=30.0)
            assert len(claimed) == first
            # Nothing pending and every lease live: nothing to claim.
            assert store.claim_batch("w-live", limit=100) == []
            clock.advance(31.0)
            assert store.stats().stale == first
            stolen = store.claim_batch("w-live", limit=100,
                                       lease_s=30.0)
            assert {j.digest for j in stolen} == {
                j.digest for j in claimed
            }
            # The reclaim is recorded on the attempts counter.
            assert all(job.attempts == 2 for job in stolen)

    def test_renew_extends_the_lease(self, queue_path):
        clock = FakeClock()
        with JobStore(queue_path, clock=clock) as store:
            store.fill(small_grid())
            jobs = store.claim_batch("w", limit=100, lease_s=30.0)
            digests = [job.digest for job in jobs]
            clock.advance(20.0)
            assert store.renew("w", digests, lease_s=30.0) == len(jobs)
            clock.advance(20.0)
            # 40s elapsed but renewed at 20s: still live.
            assert store.stats().stale == 0
            assert store.claim_batch("thief", limit=100) == []

    def test_dead_worker_cannot_clobber_the_new_owner(self, queue_path):
        clock = FakeClock()
        with JobStore(queue_path, clock=clock) as store:
            store.fill(small_grid())
            jobs = store.claim_batch("w-dead", limit=1, lease_s=10.0)
            digests = [job.digest for job in jobs]
            clock.advance(11.0)
            store.claim_batch("w-live", limit=1)
            # The original owner lost the lease: its renew/complete
            # are no-ops, the thief's complete wins.
            assert store.renew("w-dead", digests) == 0
            assert store.complete("w-dead", digests) == 0
            assert store.stats().done == 0
            assert store.complete("w-live", digests) == 1

    def test_requeue_stale(self, queue_path):
        clock = FakeClock()
        with JobStore(queue_path, clock=clock) as store:
            store.fill(small_grid())
            store.claim_batch("w", limit=2, lease_s=10.0)
            clock.advance(11.0)
            assert store.requeue(failed=False, stale=False) == 0
            assert store.requeue(failed=False, stale=True) == 2
            assert store.stats().claimed == 0

    def test_heartbeat_renews_in_background(self, queue_path):
        with JobStore(queue_path) as store:
            store.fill(small_grid())
            jobs = store.claim_batch("w", limit=2, lease_s=5.0)
            beat = LeaseHeartbeat(store, "w", lease_s=5.0,
                                  interval_s=0.01)
            with beat:
                beat.start([job.digest for job in jobs])
                deadline = time.time() + 2.0
                while beat.renewals == 0 and time.time() < deadline:
                    time.sleep(0.01)
            assert beat.renewals > 0
            # stop() is idempotent and start([]) spawns nothing.
            beat.stop()
            beat.start([])
            assert beat._thread is None


class TestFingerprint:
    def test_mismatched_fingerprint_rejected(self, queue_path,
                                             estimator):
        with JobStore(queue_path, estimator_fingerprint(estimator)):
            pass
        with pytest.raises(QueueError):
            JobStore(queue_path, "deadbeef00000000")

    def test_default_fingerprint_is_the_stem(self, queue_path):
        with JobStore(queue_path) as store:
            assert store.fingerprint == queue_path.stem

    def test_default_worker_id_is_host_scoped(self):
        assert default_worker_id().count("-") >= 1


class TestRunQueue:
    def test_single_worker_drains_exactly_once(self, tmp_path,
                                               queue_path, estimator):
        with JobStore(queue_path) as store:
            store.fill(small_grid())
            cells = store.stats().pending
            cache = PersistentCache.for_estimator(
                tmp_path, estimator, backend="sqlite"
            )
            engine = SweepEngine(estimator, cache=cache)
            batches = list(engine.run_queue(
                store, worker_id="w", batch_size=3, poll_s=0.01
            ))
            engine.close()
            assert sum(b.stats.evaluations for b in batches) == cells
            assert sum(b.completed for b in batches) == cells
            final = store.stats()
            assert final.done == cells
            assert final.remaining == 0

    def test_two_workers_share_exactly_once(self, tmp_path, queue_path,
                                            estimator):
        with JobStore(queue_path) as store:
            store.fill(small_grid())
            cells = store.stats().pending
        # Two independent stores/engines alternating one batch at a
        # time against the same database — the in-process stand-in for
        # two machines.
        stores = [JobStore(queue_path), JobStore(queue_path)]
        engines = [
            SweepEngine(
                estimator,
                cache=PersistentCache.for_estimator(
                    tmp_path, estimator, backend="sqlite"
                ),
            )
            for _ in stores
        ]
        batches = []
        while any(s.stats().remaining for s in stores):
            for index, (s, engine) in enumerate(zip(stores, engines)):
                batches.extend(engine.run_queue(
                    s, worker_id=f"w{index}", batch_size=2,
                    poll_s=0.01, max_batches=1,
                ))
        for engine in engines:
            engine.close()
        assert sum(b.stats.evaluations for b in batches) == cells
        final = stores[0].stats()
        assert final.done == cells
        for s in stores:
            s.close()

    def test_crash_recovery_reuses_flushed_results(self, tmp_path,
                                                   queue_path,
                                                   estimator):
        """A worker killed after the cache flush but before complete:
        its cells are reclaimed and served from disk, not re-evaluated
        — summed evaluations still equal the cell count."""
        clock = FakeClock()
        with JobStore(queue_path, clock=clock) as store:
            store.fill(small_grid())
            cells = store.stats().pending

            # Worker 1 claims a batch, evaluates, flushes... and dies
            # before complete() (simulated by just not calling it).
            dead_jobs = store.claim_batch("w-dead", limit=2,
                                          lease_s=30.0)
            cache1 = PersistentCache.for_estimator(
                tmp_path, estimator, backend="sqlite"
            )
            engine1 = SweepEngine(estimator, cache=cache1)
            engine1.evaluate_workloads([j.pair for j in dead_jobs])
            assert engine1.stats.evaluations == len(dead_jobs)
            engine1.close()  # flush + die

            clock.advance(31.0)  # the lease lapses

            cache2 = PersistentCache.for_estimator(
                tmp_path, estimator, backend="sqlite"
            )
            engine2 = SweepEngine(estimator, cache=cache2)
            batches = list(engine2.run_queue(
                store, worker_id="w-live", batch_size=3, poll_s=0.01
            ))
            engine2.close()

            # No completed cell was lost and none stranded claimed.
            final = store.stats()
            assert final.done == cells
            assert final.claimed == 0
            # Exactly-once: the dead worker's evaluations plus the
            # survivor's equal the cell count; the reclaimed cells
            # appear as disk hits on the survivor.
            survivor_evals = sum(
                b.stats.evaluations for b in batches
            )
            assert len(dead_jobs) + survivor_evals == cells
            assert sum(
                b.stats.disk_hits for b in batches
            ) == len(dead_jobs)

    def test_run_queue_requires_persistent_cache(self, store,
                                                 estimator):
        engine = SweepEngine(estimator)
        with pytest.raises(EvaluationError):
            list(engine.run_queue(store))

    def test_evaluation_error_marks_batch_failed(self, queue_path,
                                                 tmp_path, estimator):
        with JobStore(queue_path) as store:
            workload = synthetic_workload(0.5, 0.25, size=SIZE)
            store.fill([("NoSuchDesign", workload)])
            cache = PersistentCache.for_estimator(
                tmp_path, estimator, backend="sqlite"
            )
            engine = SweepEngine(estimator, cache=cache)
            with pytest.raises(Exception):
                list(engine.run_queue(store, worker_id="w",
                                      poll_s=0.01))
            engine.close()
            stats = store.stats()
            assert stats.failed == 1
            assert stats.claimed == 0

    def test_queue_fill_matches_single_process_fill(self, tmp_path,
                                                    estimator):
        """The acceptance criterion: a queue-filled cache is
        byte-equivalent to a single-process sweep fill."""
        fingerprint = estimator_fingerprint(estimator)
        queue_dir = tmp_path / "queued"
        local_dir = tmp_path / "local"
        queue_dir.mkdir()
        local_dir.mkdir()

        with JobStore(queue_db_path(queue_dir, fingerprint)) as store:
            store.fill(small_grid())
            engine = SweepEngine(
                estimator,
                cache=PersistentCache.for_estimator(
                    queue_dir, estimator, backend="sqlite"
                ),
            )
            list(engine.run_queue(store, worker_id="w",
                                  batch_size=3, poll_s=0.01))
            engine.close()

        local = SweepEngine(
            estimator,
            cache=PersistentCache.for_estimator(
                local_dir, estimator, backend="sqlite"
            ),
        )
        local.sweep(DESIGNS, A_DEGREES, B_DEGREES,
                    m=SIZE, k=SIZE, n=SIZE)
        local.close()

        # Canonical byte comparison: consolidate each fill into the
        # digest-sorted JSON format and compare the files directly.
        out_a = tmp_path / "merged-queued"
        out_b = tmp_path / "merged-local"
        cache_mod.merge_cache_dirs([queue_dir], out_a, backend="json")
        cache_mod.merge_cache_dirs([local_dir], out_b, backend="json")
        file_a = out_a / f"{fingerprint}.json"
        file_b = out_b / f"{fingerprint}.json"
        assert file_a.read_bytes() == file_b.read_bytes()


class TestQueueCounts:
    def test_plain_cache_file_has_no_queue(self, tmp_path, estimator):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        workload = synthetic_workload(0.5, 0.25, size=SIZE)
        cache.put("TC", workload.key(), None)
        cache.close()
        assert queue_counts(cache.path) is None

    def test_queue_file_reports_counts(self, store, queue_path):
        store.fill(small_grid())
        store.claim_batch("w", limit=1)
        counts = queue_counts(queue_path)
        assert counts["claimed"] == 1
        assert counts["total"] == store.stats().total

    def test_missing_file_is_none(self, tmp_path):
        assert queue_counts(tmp_path / "nope.db") is None

    def test_cache_stats_reports_queue(self, store, queue_path,
                                       tmp_path):
        store.fill(small_grid())
        stats = cache_mod.cache_stats(tmp_path)
        (info,) = [
            f for f in stats["files"]
            if f["file"] == queue_path.name
        ]
        assert info["queue"]["pending"] == store.stats().pending


class TestBusyRetry:
    def test_retry_gives_up_after_bounded_attempts(self):
        attempts = []

        def always_locked():
            attempts.append(1)
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            cache_mod._retry_locked(always_locked)
        assert len(attempts) == cache_mod.SQLITE_BUSY_RETRIES + 1

    def test_retry_recovers_from_transient_contention(self):
        state = {"left": 2}

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert cache_mod._retry_locked(flaky) == "ok"

    def test_non_busy_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: jobs")

        with pytest.raises(sqlite3.OperationalError):
            cache_mod._retry_locked(broken)
        assert len(attempts) == 1


class TestWorkerRecord:
    def test_record_from_worker_shape(self, tmp_path, queue_path,
                                      estimator):
        with JobStore(queue_path) as store:
            store.fill(small_grid())
            engine = SweepEngine(
                estimator,
                cache=PersistentCache.for_estimator(
                    tmp_path, estimator, backend="sqlite"
                ),
            )
            batches = list(engine.run_queue(
                store, worker_id="w", batch_size=3, poll_s=0.01
            ))
            engine.close()
            record = record_from_worker(
                command="worker",
                queue_path=queue_path,
                worker_id="w",
                batches=batches,
                final_stats=store.stats().as_dict(),
                engine=engine,
            )
        assert record.schema_version == 4
        assert record.grid["worker_id"] == "w"
        assert record.grid["claimed"] == record.grid["completed"]
        assert len(record.artifact_stats) == len(batches)
        first = record.artifact_stats["batch_0001"]
        assert first["claimed"] == 3
        path = record.write(tmp_path / "worker.json")
        loaded = json.loads(path.read_text())
        assert loaded["grid"]["queue_stats"]["done"] == (
            record.grid["claimed"]
        )


class TestCliQueue:
    def _fill_args(self, tmp_path):
        return [
            "queue", "fill", "--cache-dir", str(tmp_path),
            "--designs", ",".join(DESIGNS),
            "--a-degrees", ",".join(str(d) for d in A_DEGREES),
            "--b-degrees", ",".join(str(d) for d in B_DEGREES),
            "--size", str(SIZE),
        ]

    def test_fill_then_worker_then_stats(self, tmp_path, capsys):
        assert main(self._fill_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "queued" in out and "pending" in out

        record = tmp_path / "worker.json"
        assert main([
            "worker", "--cache-dir", str(tmp_path),
            "--batch-size", "3", "--poll", "0.01",
            "--worker-id", "cli-w", "--record", str(record),
        ]) == 0
        captured = capsys.readouterr()
        assert "0 pending" in captured.out
        assert "cli-w" in captured.err
        payload = json.loads(record.read_text())
        assert payload["command"] == "worker"
        assert payload["schema_version"] == 4
        assert payload["grid"]["queue_stats"]["pending"] == 0
        assert payload["grid"]["queue_stats"]["claimed"] == 0

        assert main(["queue", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "done" in capsys.readouterr().out

    def test_fill_is_idempotent_via_cli(self, tmp_path, capsys):
        assert main(self._fill_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._fill_args(tmp_path)) == 0
        assert "queued 0 cell(s)" in capsys.readouterr().out

    def test_worker_without_queue_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["worker", "--cache-dir", str(tmp_path)])
        assert "queue fill" in capsys.readouterr().err

    def test_stats_without_queue_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["queue", "stats", "--cache-dir", str(tmp_path)])
        assert "queue fill" in capsys.readouterr().err

    def test_fill_flags_rejected_on_stats(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["queue", "stats", "--cache-dir", str(tmp_path),
                  "--designs", "TC"])
        assert "queue fill" in capsys.readouterr().err

    def test_stale_flag_rejected_on_fill(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(self._fill_args(tmp_path) + ["--stale"])
        assert "requeue" in capsys.readouterr().err

    def test_mismatched_queue_path_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["queue", "fill", "--queue",
                  str(tmp_path / "wrong-name.db")])
        assert "fingerprint" in capsys.readouterr().err

    def test_cache_stats_shows_queue_line(self, tmp_path, capsys):
        assert main(self._fill_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "queue in" in capsys.readouterr().out

    def test_requeue_via_cli(self, tmp_path, capsys, estimator):
        assert main(self._fill_args(tmp_path)) == 0
        capsys.readouterr()
        path = queue_db_path(tmp_path, estimator_fingerprint(estimator))
        with JobStore(path) as store:
            jobs = store.claim_batch("w", limit=1)
            store.fail("w", [jobs[0].digest], "boom")
        assert main(["queue", "requeue", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "requeued 1 failed cell(s)" in out
