"""Tests for fibertree transforms: reorder, flatten, partition."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.fibertree import flatten, from_dense, partition, reorder


@pytest.fixture
def tensor(rng):
    array = rng.normal(size=(2, 3, 4))
    array[rng.random(array.shape) < 0.4] = 0.0
    return array, from_dense(array, ("C", "R", "S"))


class TestReorder:
    def test_permutes_content(self, tensor):
        array, tree = tensor
        reordered = reorder(tree, ("R", "S", "C"))
        np.testing.assert_allclose(
            reordered.to_dense(), np.transpose(array, (1, 2, 0))
        )

    def test_rank_names(self, tensor):
        _, tree = tensor
        assert reorder(tree, ("S", "C", "R")).rank_names == ("S", "C", "R")

    def test_identity(self, tensor):
        array, tree = tensor
        np.testing.assert_allclose(
            reorder(tree, ("C", "R", "S")).to_dense(), array
        )

    def test_rejects_non_permutation(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            reorder(tree, ("C", "R", "Z"))

    def test_preserves_present_zeros(self):
        array = np.zeros((2, 2))
        tree = from_dense(array, ("R", "S"), keep_zeros=True)
        assert reorder(tree, ("S", "R")).occupancy == 4


class TestFlatten:
    def test_flattens_adjacent(self, tensor):
        array, tree = tensor
        flat = flatten(tree, ("R", "S"), "RS")
        assert flat.rank_names == ("C", "RS")
        np.testing.assert_allclose(
            flat.to_dense(), array.reshape(2, 12)
        )

    def test_fig4b_pipeline(self, tensor):
        """The reorder-then-flatten prefix of the 2:4 spec (Fig. 4(b))."""
        array, tree = tensor
        flat = flatten(reorder(tree, ("R", "S", "C")), ("R", "S"), "RS")
        assert flat.rank_names == ("RS", "C")
        assert flat.rank_shapes == (12, 2)

    def test_rejects_non_contiguous(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            flatten(tree, ("C", "S"), "CS")

    def test_rejects_single_rank(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            flatten(tree, ("C",), "C2")

    def test_rejects_duplicate_name(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            flatten(tree, ("R", "S"), "C")


class TestPartition:
    def test_splits_rank(self, tensor):
        array, tree = tensor
        split = partition(tree, "S", 2, ("S1", "S0"))
        assert split.rank_names == ("C", "R", "S1", "S0")
        np.testing.assert_allclose(
            split.to_dense(), array.reshape(2, 3, 2, 2)
        )

    def test_pads_partial_blocks(self, tensor):
        array, tree = tensor
        split = partition(tree, "S", 3, ("S1", "S0"))
        assert split.rank_shapes == (2, 3, 2, 3)
        dense = split.to_dense()
        np.testing.assert_allclose(dense[..., 0, :], array[..., :3])
        np.testing.assert_allclose(dense[..., 1, :1], array[..., 3:])
        assert np.all(dense[..., 1, 1:] == 0)  # padded slots stay empty

    def test_rejects_bad_inner_size(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            partition(tree, "S", 0, ("S1", "S0"))

    def test_rejects_duplicate_names(self, tensor):
        _, tree = tensor
        with pytest.raises(SpecificationError):
            partition(tree, "S", 2, ("C", "S0"))

    def test_fig5_partitioning(self):
        """C split into C2 -> C1 -> C0 as in the two-rank HSS of Fig. 5."""
        array = np.arange(32.0).reshape(1, 1, 32) + 1
        tree = from_dense(array, ("R", "S", "C"), keep_zeros=True)
        split = partition(tree, "C", 4, ("Ctmp", "C0"))
        split = partition(split, "Ctmp", 4, ("C2", "C1"))
        assert split.rank_names == ("R", "S", "C2", "C1", "C0")
        assert split.rank_shapes == (1, 1, 2, 4, 4)
