"""Tests for the named pattern library (Table 2)."""

from repro.sparsity import library
from repro.sparsity.spec import SparsitySpec


class TestTable2:
    def test_seven_rows(self):
        assert len(library.table2_patterns()) == 7

    def test_all_are_specs(self):
        for named in library.table2_patterns():
            assert isinstance(named.spec, SparsitySpec)

    def test_sub_channel_name_is_ambiguous(self):
        """Three different proposals share the informal 'Sub-channel'
        name — the fibertree specs distinguish them (the paper's point)."""
        sub_channel = [
            named
            for named in library.table2_patterns()
            if named.conventional_name == "Sub-channel"
        ]
        assert len(sub_channel) >= 3
        specs = {str(named.spec) for named in sub_channel}
        assert len(specs) == len(sub_channel)

    def test_hss_row_is_hierarchical(self):
        hss_rows = [
            named
            for named in library.table2_patterns()
            if named.spec.is_hierarchical
        ]
        assert len(hss_rows) == 1
        assert "3:4" in str(hss_rows[0].spec)

    def test_named_constants(self):
        assert library.EXAMPLE_TWO_RANK.sparsity() == 0.625
        assert library.SPARSE_TENSOR_CORE_24.sparsity() == 0.5
        assert library.CHANNEL_PRUNING.density() is None
        assert library.UNSTRUCTURED.num_sparse_ranks == 1
