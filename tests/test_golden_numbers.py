"""Golden-number regression tests.

Freezes the key measured values of the calibrated reproduction with
tolerances, so refactors that silently shift results are caught. The
paper's corresponding numbers are noted inline.
"""

import pytest

from repro.arch import area_breakdown, table4
from repro.eval import experiments as E


@pytest.fixture(scope="module")
def sweep(estimator):
    return E.fig13(estimator)


class TestFig13Golden:
    def test_highlight_cells(self, sweep):
        """Spot-freeze the HighLight EDP column."""
        normalized = sweep.normalized("edp")
        expectations = {
            (0.0, 0.0): 1.01,    # paper: parity
            (0.5, 0.0): 0.285,
            (0.75, 0.0): 0.084,
            (0.75, 0.75): 0.043,
        }
        for cell, expected in expectations.items():
            assert normalized[cell]["HighLight"] == pytest.approx(
                expected, rel=0.10
            ), cell

    def test_dstc_dense_penalty(self, sweep):
        value = sweep.normalized("edp")[(0.0, 0.0)]["DSTC"]
        assert value == pytest.approx(5.3, rel=0.15)

    def test_stc_sparse_cells_flat(self, sweep):
        normalized = sweep.normalized("edp")
        values = {
            normalized[(0.5, b)]["STC"] for b in (0.0, 0.25, 0.5, 0.75)
        }
        assert max(values) - min(values) < 1e-9  # B-blind by design


class TestHeadlineGolden:
    def test_vs_dense(self, sweep):
        geomean, maximum = sweep.gain_over("TC")
        # paper: 6.4x geomean, up to 20.4x.
        assert geomean == pytest.approx(6.4, rel=0.10)
        assert maximum == pytest.approx(23.0, rel=0.15)

    def test_vs_sparse_combined(self, sweep):
        from repro.utils import geomean as gm

        combined = gm(
            [sweep.gain_over(d)[0] for d in ("STC", "DSTC", "S2TA")]
        )
        # paper: 2.7x geomean over sparse accelerators.
        assert combined == pytest.approx(2.9, rel=0.15)


class TestAreaGolden:
    def test_saf_share(self, estimator):
        areas = {
            res.arch.name: area_breakdown(res, estimator)
            for res in table4()
        }
        # paper: 5.7%.
        assert areas["HighLight"].saf_fraction == pytest.approx(
            0.056, abs=0.008
        )

    def test_total_area_ordering(self, estimator):
        areas = {
            res.arch.name: area_breakdown(res, estimator).total_mm2
            for res in table4()
        }
        assert areas["TC"] < areas["HighLight"] < areas["DSTC"]


class TestFig2Golden:
    def test_operating_points(self, estimator):
        result = E.fig2(estimator)
        resnet = result.results["ResNet50"]
        transformer = result.results["Transformer-Big"]
        assert resnet["HighLight"][0] == 0.75
        assert transformer["HighLight"][0] == 0.625
        assert resnet["DSTC"][0] == pytest.approx(0.832, abs=0.02)
        assert transformer["DSTC"][0] == pytest.approx(0.731, abs=0.02)
