"""Property-based tests for the compression formats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    decode_hierarchical_cp,
    decode_operand_b,
    encode_bitmask,
    encode_hierarchical_cp,
    encode_operand_b,
    encode_run_length,
)
from repro.sparsity import HSSPattern, sparsify


@st.composite
def sparse_vectors(draw, max_len=96):
    length = draw(st.integers(min_value=1, max_value=max_len))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    sparsity = draw(st.floats(min_value=0.0, max_value=0.95))
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.5, 1.5, size=length) * rng.choice(
        [-1.0, 1.0], size=length
    )
    values[rng.random(length) < sparsity] = 0.0
    return values


@settings(max_examples=60, deadline=None)
@given(sparse_vectors())
def test_bitmask_round_trip(vector):
    np.testing.assert_allclose(encode_bitmask(vector).decode(), vector)


@settings(max_examples=60, deadline=None)
@given(sparse_vectors(), st.integers(min_value=2, max_value=6))
def test_run_length_round_trip(vector, run_bits):
    encoded = encode_run_length(vector, run_bits=run_bits)
    np.testing.assert_allclose(encoded.decode(), vector)


@settings(max_examples=60, deadline=None)
@given(
    sparse_vectors(),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_operand_b_round_trip(vector, rank0, rank1, set_size):
    encoded = encode_operand_b(vector, rank0, rank1, set_size)
    np.testing.assert_allclose(decode_operand_b(encoded), vector)


@st.composite
def two_rank_patterns(draw):
    h0 = draw(st.integers(min_value=2, max_value=6))
    g0 = draw(st.integers(min_value=1, max_value=h0))
    h1 = draw(st.integers(min_value=2, max_value=6))
    g1 = draw(st.integers(min_value=1, max_value=h1))
    return HSSPattern.from_ratios((g0, h0), (g1, h1))


@settings(max_examples=60, deadline=None)
@given(sparse_vectors(), two_rank_patterns())
def test_hierarchical_cp_round_trip_after_sparsify(vector, pattern):
    """Any sparsified row survives the encode/decode round trip."""
    row = sparsify(vector, pattern)
    encoded = encode_hierarchical_cp(row, pattern)
    np.testing.assert_allclose(decode_hierarchical_cp(encoded), row)


@settings(max_examples=60, deadline=None)
@given(sparse_vectors(), two_rank_patterns())
def test_hierarchical_cp_offsets_in_range(vector, pattern):
    row = sparsify(vector, pattern)
    encoded = encode_hierarchical_cp(row, pattern)
    assert all(0 <= o < pattern.rank(0).h for o in encoded.rank0_offsets)
    assert all(
        0 <= position < pattern.rank(1).h
        for _, position in encoded.rank1_offsets
    )
