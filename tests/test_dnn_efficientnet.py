"""Tests for grouped convolutions and the EfficientNet-B0 table."""

import pytest

from repro.dnn.layers import ConvLayer
from repro.dnn.models import efficientnet_b0
from repro.errors import WorkloadError
from repro.eval import experiments as E


class TestGroupedConv:
    def test_depthwise_gemm_shape(self):
        layer = ConvLayer("dw", 32, 32, 3, 14, padding=1, groups=32)
        assert layer.gemm_shape() == (1, 9, 14 * 14)

    def test_gemm_instances(self):
        layer = ConvLayer("dw", 32, 32, 3, 14, padding=1, groups=32,
                          repeats=2)
        assert layer.gemm_instances == 64

    def test_grouped_weight_count(self):
        layer = ConvLayer("g", 32, 64, 3, 14, padding=1, groups=4)
        # Per group: (64/4) x (32/4)*9 weights, times 4 groups.
        assert layer.weight_count == 16 * 72 * 4

    def test_macs_scale_with_groups(self):
        dense = ConvLayer("c", 32, 32, 3, 14, padding=1)
        depthwise = ConvLayer("dw", 32, 32, 3, 14, padding=1, groups=32)
        assert depthwise.macs == dense.macs // 32

    def test_ungrouped_unchanged(self):
        layer = ConvLayer("c", 64, 128, 3, 56, padding=1)
        assert layer.gemm_shape() == (128, 64 * 9, 56 * 56)
        assert layer.gemm_instances == 1

    def test_rejects_indivisible_groups(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 30, 64, 3, 14, groups=4)


class TestEfficientNetModel:
    @pytest.fixture(scope="class")
    def model(self):
        return efficientnet_b0()

    def test_parameter_count(self, model):
        """~5M parameters (we omit squeeze-excite)."""
        assert 4e6 < model.total_weights < 6e6

    def test_mac_count(self, model):
        """~0.39 GMACs at 224x224."""
        assert 0.3e9 < model.total_macs < 0.5e9

    def test_depthwise_not_prunable(self, model):
        for layer in model.layers:
            if "_dw" in layer.name:
                assert layer.name not in model.prunable

    def test_pointwise_prunable(self, model):
        assert "mb4b_project" in model.prunable
        assert "head_conv" in model.prunable

    def test_least_prunable_model(self, model):
        from repro.dnn.models import all_models

        for other in all_models():
            assert model.prunability < other.prunability

    def test_dense_activations(self, model):
        assert model.activation_sparsity <= 0.10


class TestExtensionExperiment:
    @pytest.fixture(scope="class")
    def result(self, estimator):
        return E.ext_efficientnet(estimator)

    def test_highlight_on_frontier(self, result):
        assert result.highlight_on_frontier("EfficientNet-B0")

    def test_s2ta_unsupported(self, result):
        designs = {p.design for p in result.points["EfficientNet-B0"]}
        assert "S2TA" not in designs

    def test_compact_model_loses_accuracy_fast(self, result):
        points = result.points["EfficientNet-B0"]
        at_50 = [p for p in points if p.weight_sparsity == 0.5]
        assert all(p.accuracy_loss_pct > 0.5 for p in at_50)

    def test_gains_smaller_than_resnet(self, result, estimator):
        """Pruning buys less on the compact model than on ResNet50 at
        the same degree (dense depthwise layers dilute the wins)."""
        fig15 = E.fig15(estimator)
        resnet_hl = {
            p.weight_sparsity: p.normalized_edp
            for p in fig15.points["ResNet50"]
            if p.design == "HighLight"
        }
        efficient_hl = {
            p.weight_sparsity: p.normalized_edp
            for p in result.points["EfficientNet-B0"]
            if p.design == "HighLight"
        }
        for degree in (0.5, 0.75):
            assert efficient_hl[degree] > resnet_hl[degree]
