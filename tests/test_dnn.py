"""Tests for DNN layer descriptors, model tables, Toeplitz expansion."""

import numpy as np
import pytest

from repro.dnn import (
    ConvLayer,
    LinearLayer,
    all_models,
    conv2d_reference,
    deit_small,
    linear_reference,
    matmul,
    resnet50,
    toeplitz_expand,
    transformer_big,
)
from repro.dnn.toeplitz import flatten_weights, fold_outputs
from repro.errors import WorkloadError


class TestConvLayer:
    def layer(self):
        return ConvLayer("c", 64, 128, 3, 56, stride=1, padding=1)

    def test_output_size_same_padding(self):
        assert self.layer().output_size == 56

    def test_output_size_stride(self):
        layer = ConvLayer("c", 3, 64, 7, 224, stride=2, padding=3)
        assert layer.output_size == 112

    def test_gemm_shape(self):
        m, k, n = self.layer().gemm_shape()
        assert (m, k, n) == (128, 64 * 9, 56 * 56)

    def test_macs(self):
        layer = self.layer()
        m, k, n = layer.gemm_shape()
        assert layer.macs == m * k * n

    def test_rejects_bad_fields(self):
        with pytest.raises(WorkloadError):
            ConvLayer("c", 0, 1, 3, 8)

    def test_zero_padding_is_valid(self):
        assert ConvLayer("c", 8, 8, 3, 8, padding=0).output_size == 6

    @pytest.mark.parametrize("padding", [-1, -3])
    def test_rejects_negative_padding(self, padding):
        """Negative padding silently shrinks the Toeplitz GEMM — it
        must be rejected at construction, not produce wrong shapes."""
        with pytest.raises(WorkloadError, match="padding"):
            ConvLayer("c", 8, 8, 3, 8, padding=padding)

    @pytest.mark.parametrize("padding", [1.5, "1", None, True])
    def test_rejects_non_int_padding(self, padding):
        with pytest.raises(WorkloadError, match="padding"):
            ConvLayer("c", 8, 8, 3, 8, padding=padding)


class TestLinearLayer:
    def test_gemm_shape(self):
        layer = LinearLayer("fc", 1024, 4096, tokens=128)
        assert layer.gemm_shape() == (4096, 1024, 128)

    def test_weight_count(self):
        assert LinearLayer("fc", 10, 20).weight_count == 200

    def test_rejects_bad(self):
        with pytest.raises(WorkloadError):
            LinearLayer("fc", 10, 0)


class TestModels:
    def test_three_models(self):
        names = [model.name for model in all_models()]
        assert names == ["ResNet50", "DeiT-small", "Transformer-Big"]

    def test_resnet50_weight_count(self):
        """Conv+FC weights of ResNet50 are ~23.5M."""
        total = resnet50().total_weights
        assert 20e6 < total < 28e6

    def test_resnet50_macs(self):
        """~4.1 GMACs at 224x224."""
        total = resnet50().total_macs
        assert 3.5e9 < total < 4.5e9

    def test_resnet50_all_layers_prunable(self):
        model = resnet50()
        assert set(model.prunable) == {l.name for l in model.layers}

    def test_resnet50_sparse_activations(self):
        assert resnet50().activation_sparsity == pytest.approx(0.60)

    def test_deit_small_params(self):
        """DeiT-small has ~22M parameters."""
        total = deit_small().total_weights
        assert 18e6 < total < 26e6

    def test_deit_prunes_only_ff_and_out_proj(self):
        model = deit_small()
        assert "qkv_proj" not in model.prunable
        assert "ff1" in model.prunable

    def test_transformer_big_has_dense_layer(self):
        model = transformer_big()
        assert "dec_xattn_kv" not in model.prunable

    def test_transformers_have_dense_activations(self):
        for model in (deit_small(), transformer_big()):
            assert model.activation_sparsity <= 0.10

    def test_prunability_ordering(self):
        """ResNet50 prunes hardest; compact DeiT the least (Sec. 1)."""
        models = {m.name: m for m in all_models()}
        assert (
            models["ResNet50"].prunability
            > models["Transformer-Big"].prunability
            > models["DeiT-small"].prunability
        )

    def test_prunable_layers_helper(self):
        model = deit_small()
        names = {layer.name for layer in model.prunable_layers()}
        assert names == set(model.prunable)


class TestToeplitz:
    def test_matches_direct_convolution(self, rng):
        weights = rng.normal(size=(4, 3, 3, 3))
        inputs = rng.normal(size=(3, 8, 8))
        direct = conv2d_reference(weights, inputs, stride=1, padding=1)
        expanded = toeplitz_expand(inputs, kernel=3, stride=1, padding=1)
        gemm = matmul(flatten_weights(weights), expanded)
        np.testing.assert_allclose(
            fold_outputs(gemm, 8), direct, atol=1e-10
        )

    def test_strided_convolution(self, rng):
        weights = rng.normal(size=(2, 3, 3, 3))
        inputs = rng.normal(size=(3, 9, 9))
        direct = conv2d_reference(weights, inputs, stride=2)
        expanded = toeplitz_expand(inputs, kernel=3, stride=2)
        gemm = matmul(flatten_weights(weights), expanded)
        np.testing.assert_allclose(
            fold_outputs(gemm, direct.shape[1]), direct, atol=1e-10
        )

    def test_1x1_convolution_is_reshape(self, rng):
        inputs = rng.normal(size=(5, 4, 4))
        expanded = toeplitz_expand(inputs, kernel=1)
        np.testing.assert_allclose(expanded, inputs.reshape(5, 16))

    def test_expansion_shape(self, rng):
        expanded = toeplitz_expand(
            rng.normal(size=(3, 8, 8)), kernel=3, padding=1
        )
        assert expanded.shape == (27, 64)

    def test_rejects_non_square(self, rng):
        with pytest.raises(WorkloadError):
            toeplitz_expand(rng.normal(size=(3, 8, 9)), 3)

    def test_linear_reference(self, rng):
        weights = rng.normal(size=(4, 6))
        acts = rng.normal(size=(6, 2))
        np.testing.assert_allclose(
            linear_reference(weights, acts), weights @ acts
        )

    def test_matmul_shape_check(self):
        with pytest.raises(WorkloadError):
            matmul(np.zeros((2, 3)), np.zeros((4, 2)))
