"""Property-based tests: the simulator is exact on arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimConfig, simulate_matmul
from repro.sparsity import sparsify
from repro.utils import ceil_div


@st.composite
def sim_cases(draw):
    h1 = draw(st.integers(min_value=2, max_value=4))
    m = draw(st.integers(min_value=1, max_value=5))
    groups = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    b_sparsity = draw(st.floats(min_value=0.0, max_value=0.9))
    compress = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return h1, m, groups, n, b_sparsity, compress, seed


@settings(max_examples=40, deadline=None)
@given(sim_cases())
def test_simulator_exact_and_counts_consistent(case):
    h1, m, groups, n, b_sparsity, compress, seed = case
    rng = np.random.default_rng(seed)
    config = SimConfig()
    pattern = config.example_pattern(h1)
    k = groups * 4 * h1
    a = sparsify(rng.normal(size=(m, k)), pattern)
    b = rng.normal(size=(k, n))
    b[rng.random(b.shape) < b_sparsity] = 0.0

    result, stats = simulate_matmul(a, b, pattern, config, compress)

    # Exactness against numpy.
    np.testing.assert_allclose(result, a @ b, atol=1e-10)
    # Never more steps than the structured schedule allows.
    assert stats.steps <= m * n * ceil_div(k, 4 * h1)
    # MAC issue accounting is closed.
    assert stats.full_macs + stats.gated_macs == stats.mux_selects
    assert stats.scheduled_products >= stats.mux_selects
