"""Tests for whole-network simulated inference."""

import numpy as np
import pytest

from repro.dnn.inference import (
    SimulatedConvLayer,
    SimulatedNetwork,
    random_network,
)
from repro.errors import SimulationError
from repro.sim import SimConfig


class TestRandomNetwork:
    def test_exact_against_reference(self, rng):
        network, inputs = random_network((8, 4, 4), rng=rng)
        simulated, _ = network.forward(inputs)
        reference = SimulatedNetwork.reference_forward(
            network.layers, inputs
        )
        np.testing.assert_allclose(simulated, reference, atol=1e-9)

    def test_exact_without_compression(self, rng):
        network, inputs = random_network((8, 4), rng=rng)
        simulated, _ = network.forward(
            inputs, compress_activations=False
        )
        reference = SimulatedNetwork.reference_forward(
            network.layers, inputs
        )
        np.testing.assert_allclose(simulated, reference, atol=1e-9)

    def test_traces_per_layer(self, rng):
        network, inputs = random_network((8, 4, 4, 4), rng=rng)
        _, traces = network.forward(inputs)
        assert len(traces) == 3
        for trace in traces:
            assert trace.stats.steps > 0
            assert 0.0 <= trace.activation_sparsity <= 1.0

    def test_relu_makes_activations_sparse(self, rng):
        """The activation-function unit's ReLU zeroes ~half the maps,
        which the next layer's gating then exploits."""
        network, inputs = random_network((8, 4, 4), rng=rng)
        _, traces = network.forward(inputs)
        assert traces[0].activation_sparsity > 0.2
        assert traces[1].stats.gated_macs > 0

    def test_three_layer_deep(self, rng):
        network, inputs = random_network((8, 4, 8, 4), rng=rng)
        simulated, _ = network.forward(inputs)
        reference = SimulatedNetwork.reference_forward(
            network.layers, inputs
        )
        np.testing.assert_allclose(simulated, reference, atol=1e-9)


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            SimulatedNetwork([])

    def test_layer_kernel_property(self, rng):
        config = SimConfig()
        pattern = config.example_pattern()
        layer = SimulatedConvLayer(
            weights=np.zeros((2, 8, 3, 3)), pattern=pattern
        )
        assert layer.kernel == 3
