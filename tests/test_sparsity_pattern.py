"""Tests for per-rank pruning rules (GH, GHRange, Dense, Unconstrained)."""

from fractions import Fraction

import pytest

from repro.errors import PatternError
from repro.sparsity import GH, GHRange, Dense, Unconstrained
from repro.sparsity.pattern import parse_rule


class TestGH:
    def test_density(self):
        assert GH(2, 4).density == 0.5

    def test_sparsity(self):
        assert GH(1, 4).sparsity == 0.75

    def test_fraction_exact(self):
        assert GH(2, 3).fraction == Fraction(2, 3)

    def test_str(self):
        assert str(GH(2, 4)) == "2:4"

    def test_dense_block(self):
        assert GH(4, 4).density == 1.0

    def test_rejects_g_above_h(self):
        with pytest.raises(PatternError):
            GH(5, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(PatternError):
            GH(0, 4)
        with pytest.raises(PatternError):
            GH(2, 0)

    def test_hashable(self):
        assert len({GH(2, 4), GH(2, 4), GH(2, 8)}) == 2


class TestGHRange:
    def test_patterns(self):
        family = GHRange(2, 2, 4)
        assert family.patterns() == [GH(2, 2), GH(2, 3), GH(2, 4)]

    def test_densities_descending(self):
        densities = GHRange(2, 2, 4).densities()
        assert densities == sorted(densities, reverse=True)
        assert densities[0] == Fraction(1)

    def test_densities_deduplicated(self):
        # 2:4 and 2:4 can't repeat, but 2:2 == 4:4-style dups can't occur
        # within a fixed-G family; check count.
        assert len(GHRange(2, 2, 16).densities()) == 15

    def test_supports(self):
        family = GHRange(4, 4, 8)
        assert family.supports(GH(4, 6))
        assert not family.supports(GH(4, 9))
        assert not family.supports(GH(2, 6))

    def test_str_single(self):
        assert str(GHRange(2, 4, 4)) == "2:4"

    def test_str_range(self):
        assert str(GHRange(2, 2, 4)) == "2:{2<=H<=4}"

    def test_rejects_inverted_bounds(self):
        with pytest.raises(PatternError):
            GHRange(2, 8, 4)

    def test_rejects_h_min_below_g(self):
        with pytest.raises(PatternError):
            GHRange(4, 2, 8)


class TestDenseUnconstrained:
    def test_dense_density(self):
        assert Dense().density == 1.0

    def test_strs(self):
        assert str(Dense()) == "dense"
        assert str(Unconstrained()) == "unconstrained"


class TestParseRule:
    def test_parse_dense(self):
        assert parse_rule("dense") == Dense()

    def test_parse_unconstrained(self):
        assert parse_rule("Unconstrained") == Unconstrained()

    def test_parse_gh(self):
        assert parse_rule("2:4") == GH(2, 4)

    def test_parse_range(self):
        assert parse_rule("4:{4<=H<=8}") == GHRange(4, 4, 8)

    def test_parse_whitespace(self):
        assert parse_rule(" 3:4 ") == GH(3, 4)

    def test_parse_garbage(self):
        with pytest.raises(PatternError):
            parse_rule("banana")

    def test_parse_bad_range(self):
        with pytest.raises(PatternError):
            parse_rule("2:{4<=X<=8}")

    def test_parse_bad_numbers(self):
        with pytest.raises(PatternError):
            parse_rule("a:4")
        with pytest.raises(PatternError):
            parse_rule("2:b")
