"""Tests for the cost-model sensitivity analysis."""

import pytest

from repro.energy.tables import default_table
from repro.errors import EvaluationError
from repro.eval.sensitivity import (
    PERTURBABLE,
    perturb_table,
    summarize,
    sweep_sensitivity,
)


class TestPerturbTable:
    def test_scales_constant(self):
        table = perturb_table(default_table(), "mac_pj", 2.0)
        assert table.mac_pj == pytest.approx(default_table().mac_pj * 2)

    def test_other_constants_untouched(self):
        table = perturb_table(default_table(), "mac_pj", 2.0)
        assert table.sram_read_pj == default_table().sram_read_pj

    def test_unknown_constant(self):
        with pytest.raises(EvaluationError):
            perturb_table(default_table(), "banana_pj", 2.0)

    def test_bad_scale(self):
        with pytest.raises(EvaluationError):
            perturb_table(default_table(), "mac_pj", 0.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def outcomes(self):
        # A focused subset keeps the test fast; the full grid runs in
        # benchmarks/bench_sensitivity.py.
        return sweep_sensitivity(
            scales=(0.7, 1.3),
            constants=("mac_pj", "dram_read_pj", "intersection_pj"),
        )

    def test_headlines_robust(self, outcomes):
        """Every headline ordering survives +/-30% perturbations."""
        assert all(outcome.all_hold for outcome in outcomes)

    def test_one_outcome_per_combination(self, outcomes):
        assert len(outcomes) == 6

    def test_summary_format(self, outcomes):
        text = summarize(outcomes)
        assert "mac_pj" in text
        assert "True" in text

    def test_perturbable_constants_exist_on_table(self):
        table = default_table()
        for name in PERTURBABLE:
            assert hasattr(table, name)
