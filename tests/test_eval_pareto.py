"""Tests for Pareto-frontier utilities."""

from repro.eval.pareto import dominates, is_on_frontier, pareto_frontier


class TestDominates:
    def test_strictly_better(self):
        assert dominates((0.1, 0.5), (0.2, 0.6))

    def test_better_on_one_axis(self):
        assert dominates((0.1, 0.5), (0.1, 0.6))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((0.1, 0.5), (0.1, 0.5))

    def test_trade_off_no_domination(self):
        assert not dominates((0.1, 0.9), (0.5, 0.2))
        assert not dominates((0.5, 0.2), (0.1, 0.9))

    def test_tolerance_softens(self):
        assert dominates((0.1, 0.5), (0.1, 0.51))
        assert not dominates((0.1, 0.5), (0.1, 0.51), tolerance=0.05)


class TestFrontier:
    def test_single_point(self):
        assert pareto_frontier([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_dominated_points_removed(self):
        points = [(0.1, 0.5), (0.2, 0.6), (0.5, 0.1)]
        assert pareto_frontier(points) == [(0.1, 0.5), (0.5, 0.1)]

    def test_sorted_by_loss(self):
        frontier = pareto_frontier([(0.5, 0.1), (0.1, 0.5)])
        assert frontier == sorted(frontier)

    def test_duplicates_collapse(self):
        frontier = pareto_frontier([(0.1, 0.5), (0.1, 0.5)])
        assert frontier == [(0.1, 0.5)]

    def test_is_on_frontier(self):
        points = [(0.1, 0.5), (0.2, 0.6), (0.5, 0.1)]
        assert is_on_frontier((0.1, 0.5), points)
        assert not is_on_frontier((0.2, 0.6), points)
