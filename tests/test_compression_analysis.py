"""Tests for the cross-format storage analysis."""

import numpy as np
import pytest

from repro.compression.analysis import (
    StorageFootprint,
    format_comparison_table,
    storage_footprints,
)
from repro.errors import CompressionError
from repro.sparsity import HSSPattern, sparsify


@pytest.fixture
def hss_row(rng):
    pattern = HSSPattern.from_ratios((2, 4), (2, 4))
    return sparsify(rng.normal(size=256), pattern), pattern


class TestFootprints:
    def test_all_formats_present(self, hss_row):
        row, pattern = hss_row
        footprints = storage_footprints(row, pattern)
        assert set(footprints) == {
            "uncompressed", "bitmask", "run_length", "cp",
            "hierarchical_cp",
        }

    def test_uncompressed_is_dense_footprint(self, hss_row):
        row, pattern = hss_row
        footprints = storage_footprints(row, pattern)
        assert footprints["uncompressed"].total_bits == 256 * 16
        assert footprints["uncompressed"].ratio_vs_dense(256) == 1.0

    def test_compressed_beat_dense_at_75(self, hss_row):
        row, pattern = hss_row
        footprints = storage_footprints(row, pattern)
        for name in ("bitmask", "cp", "hierarchical_cp"):
            assert footprints[name].total_bits < 256 * 16, name

    def test_hierarchical_cp_beats_bitmask_metadata(self, hss_row):
        """Structured metadata (2 bits/nonzero + per-block offsets)
        undercuts the flat 1-bit-per-slot mask at HSS degrees."""
        row, pattern = hss_row
        footprints = storage_footprints(row, pattern)
        assert (
            footprints["hierarchical_cp"].metadata_bits
            < footprints["bitmask"].metadata_bits
        )

    def test_near_dense_compression_stops_paying(self, rng):
        row = rng.uniform(1.0, 2.0, size=128)  # fully dense
        footprints = storage_footprints(row)
        assert (
            footprints["bitmask"].total_bits
            > footprints["uncompressed"].total_bits
        )

    def test_without_pattern_no_hier_entry(self, rng):
        footprints = storage_footprints(rng.normal(size=64))
        assert "hierarchical_cp" not in footprints

    def test_ratio_rejects_bad_slots(self):
        footprint = StorageFootprint("x", 16, 0)
        with pytest.raises(CompressionError):
            footprint.ratio_vs_dense(0)


class TestTable:
    def test_table_lists_formats(self, hss_row):
        row, pattern = hss_row
        text = format_comparison_table(row, pattern)
        assert "hierarchical_cp" in text
        assert "vs dense" in text

    def test_table_sorted_by_total(self, hss_row):
        row, pattern = hss_row
        lines = format_comparison_table(row, pattern).splitlines()[1:]
        totals = [int(line.split()[3]) for line in lines]
        assert totals == sorted(totals)
