"""Tests for architecture descriptions (components, specs, designs)."""

import pytest

from repro.arch import (
    ArchitectureSpec,
    Component,
    ComponentClass,
    table4,
)
from repro.arch.components import mac, mux, regfile, sram
from repro.arch.designs import (
    NUM_MACS,
    dstc_resources,
    highlight_resources,
    s2ta_resources,
    stc_resources,
    tc_resources,
)
from repro.errors import ArchitectureError


class TestComponent:
    def test_attribute_lookup(self):
        component = sram("glb", 1024)
        assert component.attribute("capacity_bytes") == 1024

    def test_attribute_default(self):
        assert sram("glb", 1024).attribute("width", 16) == 16

    def test_attribute_missing_raises(self):
        with pytest.raises(ArchitectureError):
            sram("glb", 1024).attribute("banks")

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ArchitectureError):
            Component("x", ComponentClass.MAC, 0)

    def test_constructors(self):
        assert mac("m", 4).component_class is ComponentClass.MAC
        assert regfile("rf", 64).component_class is ComponentClass.REGFILE
        assert mux("m", 4, 16).attribute("inputs") == 4


class TestArchitectureSpec:
    def spec(self):
        return ArchitectureSpec(
            "toy", (mac("macs", 4), sram("glb_data", 64)), 4, 2, 2
        )

    def test_component_lookup(self):
        assert self.spec().component("macs").count == 4

    def test_component_missing(self):
        with pytest.raises(ArchitectureError):
            self.spec().component("rf")

    def test_has_component(self):
        assert self.spec().has_component("glb_data")
        assert not self.spec().has_component("rf")

    def test_grid_must_match_macs(self):
        with pytest.raises(ArchitectureError):
            ArchitectureSpec("bad", (mac("macs", 4),), 4, 3, 2)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ArchitectureError):
            ArchitectureSpec(
                "bad", (mac("x", 4), sram("x", 64)), 4, 2, 2
            )

    def test_components_by_class(self):
        groups = self.spec().components_by_class()
        assert [c.name for c in groups["mac"]] == ["macs"]


class TestTable4:
    """The Table 4 resource allocations."""

    def test_five_designs(self):
        names = [res.arch.name for res in table4()]
        assert names == ["TC", "STC", "DSTC", "S2TA", "HighLight"]

    def test_all_have_1024_macs(self):
        for resources in table4():
            assert resources.arch.num_macs == NUM_MACS == 1024

    def test_tc_glb_320kb(self):
        assert tc_resources().glb_data_bytes == 320 * 1024
        assert tc_resources().glb_meta_bytes == 0

    def test_sparse_designs_partition_glb(self):
        for resources in (
            stc_resources(), dstc_resources(), s2ta_resources(),
            highlight_resources(),
        ):
            assert resources.glb_data_bytes == 256 * 1024
            assert resources.glb_meta_bytes == 64 * 1024

    def test_s2ta_small_rf(self):
        rf = s2ta_resources().arch.component("rf")
        assert rf.count == 64
        assert rf.attribute("capacity_bytes") == 64

    def test_tc_rf_allocation(self):
        rf = tc_resources().arch.component("rf")
        assert rf.count == 4
        assert rf.attribute("capacity_bytes") == 2048

    def test_dstc_outer_product_config(self):
        resources = dstc_resources()
        assert resources.psum_spatial_reduction == 1
        assert resources.arch.has_component("accum_buffer")
        assert resources.arch.has_component("intersection")

    def test_highlight_saf_components(self):
        arch = highlight_resources().arch
        for name in ("rank0_mux", "rank1_addr_mux", "vfmu",
                     "compression_unit"):
            assert arch.has_component(name)

    def test_inner_product_designs_reduce_spatially(self):
        for resources in (tc_resources(), stc_resources(),
                          highlight_resources()):
            assert resources.psum_spatial_reduction == 32
