"""Tests for the design registry layer."""

import pytest

from repro.accelerators import (
    REGISTRY,
    all_designs,
    main_design_names,
)
from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import (
    DesignRegistry,
    RegistryError,
    register_design,
)


class TestDefaultRegistry:
    def test_all_six_designs_registered(self):
        assert set(REGISTRY.names()) == {
            "TC", "STC", "S2TA", "DSTC", "HighLight", "DSSO",
        }

    def test_main_design_names_in_table4_order(self):
        assert main_design_names() == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )

    def test_all_designs_matches_registry(self):
        designs = all_designs()
        assert tuple(d.name for d in designs) == main_design_names()
        assert all(isinstance(d, AcceleratorDesign) for d in designs)

    def test_create_returns_fresh_instances(self):
        assert REGISTRY.create("TC") is not REGISTRY.create("TC")

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="NoSuchDesign"):
            REGISTRY["NoSuchDesign"]
        with pytest.raises(KeyError):
            REGISTRY.create("NoSuchDesign")

    def test_get_returns_none_for_unknown(self):
        assert REGISTRY.get("NoSuchDesign") is None

    def test_metadata_filtering_dual_side(self):
        dual = {i.name for i in REGISTRY.filter(sparsity_side="dual")}
        assert dual == {"S2TA", "DSTC", "DSSO"}

    def test_metadata_filtering_conjunction(self):
        infos = REGISTRY.filter(sparsity_side="dual", category="hss")
        assert [i.name for i in infos] == ["DSSO"]

    def test_filter_on_missing_key_matches_nothing(self):
        assert REGISTRY.filter(nonexistent_key="x") == []

    def test_dsso_marked_as_study_design(self):
        info = REGISTRY["DSSO"]
        assert info.metadata["study"] == "sec7.5"
        assert info.metadata["main_evaluation"] is False
        assert "DSSO" not in main_design_names()

    def test_contains_and_len(self):
        assert "HighLight" in REGISTRY
        assert "NoSuchDesign" not in REGISTRY
        assert len(REGISTRY) == 6


class TestRegistryMechanics:
    def test_duplicate_registration_raises(self):
        registry = DesignRegistry()
        registry.register("X", object)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("X", object)

    def test_decorator_registration(self):
        registry = DesignRegistry()

        @register_design(registry, category="test", flag=1)
        class Dummy:
            name = "Dummy"

        assert "Dummy" in registry
        assert registry["Dummy"].metadata == {
            "category": "test", "flag": 1,
        }
        assert isinstance(registry.create("Dummy"), Dummy)

    def test_iteration_preserves_registration_order(self):
        registry = DesignRegistry()
        registry.register("B", object)
        registry.register("A", object)
        assert [info.name for info in registry] == ["B", "A"]
        assert registry.names() == ("B", "A")
