"""Tests for the shared GEMM cost assembly (build_metrics)."""

import pytest

from repro.arch.designs import highlight_resources, tc_resources
from repro.errors import ModelError
from repro.model.perf import build_metrics, compute_cycles
from repro.model.workload import (
    MatmulWorkload,
    dense_operand,
)


def workload():
    return MatmulWorkload(
        m=64, k=64, n=64, a=dense_operand(), b=dense_operand(), name="t"
    )


def assemble(estimator, **overrides):
    defaults = dict(
        workload=workload(),
        resources=tc_resources(),
        estimator=estimator,
        scheduled_products=64.0**3,
        utilization=1.0,
        full_macs=64.0**3,
        a_stored_words=64.0 * 64,
        b_stored_words=64.0 * 64,
        b_fetch_words=64.0**3 / 32,
    )
    defaults.update(overrides)
    return build_metrics(**defaults)


class TestComputeCycles:
    def test_basic(self):
        assert compute_cycles(2048, 1024, 1.0) == 2.0

    def test_utilization_inflates(self):
        assert compute_cycles(2048, 1024, 0.5) == 4.0

    def test_rejects_zero_work(self):
        with pytest.raises(ModelError):
            compute_cycles(0, 1024, 1.0)


class TestBuildMetrics:
    def test_cycles_from_schedule(self, estimator):
        metrics = assemble(estimator)
        assert metrics.cycles == pytest.approx(64.0**3 / 1024)

    def test_all_components_costed(self, estimator):
        metrics = assemble(estimator)
        for component in ("macs", "glb_data", "rf", "tc_dram"):
            assert metrics.energy_breakdown_pj[component] > 0

    def test_gated_macs_cheaper(self, estimator):
        full = assemble(estimator)
        gated = assemble(
            estimator, full_macs=0.0, gated_macs=64.0**3
        )
        assert (
            gated.energy_breakdown_pj["macs"]
            < full.energy_breakdown_pj["macs"] / 10
        )

    def test_metadata_requires_glb_meta(self, estimator):
        with pytest.raises(ModelError):
            assemble(estimator, a_meta_words=100.0)  # TC has no glb_meta

    def test_metadata_on_sparse_design(self, estimator):
        metrics = assemble(
            estimator,
            resources=highlight_resources(),
            a_meta_words=128.0,
        )
        assert metrics.energy_breakdown_pj["glb_meta"] > 0

    def test_saf_events_routed(self, estimator):
        metrics = assemble(
            estimator,
            resources=highlight_resources(),
            saf_events=[("rank0_mux", "select", 1000.0)],
        )
        assert metrics.energy_breakdown_pj["rank0_mux"] > 0

    def test_unknown_saf_component_rejected(self, estimator):
        with pytest.raises(Exception):
            assemble(
                estimator,
                saf_events=[("warp_scheduler", "select", 1.0)],
            )

    def test_psum_default_uses_spatial_reduction(self, estimator):
        metrics = assemble(estimator)
        rf_energy = metrics.energy_breakdown_pj["rf"]
        explicit = assemble(
            estimator, psum_updates=64.0**3 / 32
        ).energy_breakdown_pj["rf"]
        assert rf_energy == pytest.approx(explicit)

    def test_compression_events(self, estimator):
        metrics = assemble(
            estimator,
            resources=highlight_resources(),
            compress_values=1000.0,
        )
        assert metrics.energy_breakdown_pj["compression_unit"] > 0

    def test_dram_write_counts_outputs(self, estimator):
        metrics = assemble(estimator)
        dram_pj = metrics.energy_breakdown_pj["tc_dram"]
        table = estimator.table
        expected_min = 64 * 64 * table.dram_write_pj
        assert dram_pj >= expected_min
