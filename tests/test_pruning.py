"""Tests for pruning schemes, masks, fine-tuning and the accuracy model."""

import numpy as np
import pytest

from repro.dnn.models import all_models, deit_small, resnet50
from repro.errors import PruningError
from repro.pruning import (
    AccuracyModel,
    ChannelScheme,
    HSSScheme,
    MaskedMLP,
    StructuredGHScheme,
    TrainConfig,
    UnstructuredScheme,
    accuracy_loss_pct,
    apply_mask,
    make_blobs,
    mask_for,
    prune_and_finetune,
    train_dense,
)
from repro.sparsity import HSSPattern, conforms


class TestSchemes:
    def test_unstructured_sparsity(self, rng):
        scheme = UnstructuredScheme(0.7)
        out = scheme.prune(rng.normal(size=(32, 32)))
        assert np.mean(out == 0) == pytest.approx(0.7, abs=0.01)

    def test_gh_scheme_conforms(self, rng):
        scheme = StructuredGHScheme(2, 4)
        out = scheme.prune(rng.normal(size=(8, 32)))
        assert conforms(out, scheme.pattern)

    def test_hss_scheme_sparsity(self, rng):
        scheme = HSSScheme(HSSPattern.from_ratios((2, 4), (2, 4)))
        assert scheme.sparsity == pytest.approx(0.75)
        out = scheme.prune(rng.normal(size=(8, 64)))
        assert np.mean(out == 0) == pytest.approx(0.75)

    def test_channel_scheme_zeroes_columns(self, rng):
        scheme = ChannelScheme(0.5)
        out = scheme.prune(rng.normal(size=(16, 8)))
        zero_columns = np.all(out == 0, axis=0)
        assert zero_columns.sum() == 4

    def test_channel_keeps_strongest(self):
        weights = np.array([[1.0, 10.0], [1.0, 10.0]])
        out = ChannelScheme(0.5).prune(weights)
        assert np.all(out[:, 0] == 0)
        assert np.all(out[:, 1] != 0)

    def test_channel_requires_2d(self):
        with pytest.raises(PruningError):
            ChannelScheme(0.5).prune(np.zeros(8))

    def test_granularity_ordering(self):
        """Unstructured < HSS < one-rank G:H < channel (rigidity)."""
        unstructured = UnstructuredScheme(0.75).granularity_factor
        hss = HSSScheme(
            HSSPattern.from_ratios((2, 4), (2, 4))
        ).granularity_factor
        gh = StructuredGHScheme(1, 4).granularity_factor
        channel = ChannelScheme(0.75).granularity_factor
        assert unstructured < hss < gh < channel

    def test_describe(self):
        assert "HSS" in HSSScheme(
            HSSPattern.from_ratios((2, 4))
        ).describe()


class TestMasks:
    def test_mask_matches_scheme(self, rng):
        weights = rng.normal(size=(8, 32))
        scheme = StructuredGHScheme(2, 4)
        mask = mask_for(weights, scheme)
        assert mask.mean() == pytest.approx(0.5)

    def test_apply_mask(self):
        mask = np.array([True, False])
        np.testing.assert_allclose(
            apply_mask(np.array([3.0, 4.0]), mask), [3.0, 0.0]
        )

    def test_apply_mask_shape_check(self):
        with pytest.raises(PruningError):
            apply_mask(np.zeros(3), np.zeros(4, dtype=bool))


class TestFineTuning:
    @pytest.fixture(scope="class")
    def data(self):
        return make_blobs(num_samples=1200, num_features=32,
                          num_classes=4)

    @pytest.fixture(scope="class")
    def dense_model(self, data):
        x, y = data
        return train_dense(x, y, TrainConfig(hidden=64, epochs=15))

    def test_dense_model_learns(self, dense_model, data):
        x, y = data
        assert dense_model.accuracy(x, y) > 0.9

    def test_prune_finetune_recovers(self, dense_model, data):
        import copy

        x, y = data
        model = copy.deepcopy(dense_model)
        result = prune_and_finetune(
            model,
            HSSScheme(HSSPattern.from_ratios((2, 4), (2, 4))),
            x, y, TrainConfig(hidden=64, epochs=15),
        )
        # w1 hits 75% exactly; the tiny w2 (4 columns < the 16-value
        # pattern span) only reaches rank-0's 50%, diluting the total.
        assert 0.70 <= result.weight_sparsity <= 0.76
        assert result.recovered >= 0.0
        assert result.finetuned_accuracy > result.pruned_accuracy - 1e-9
        assert result.final_loss < 0.1

    def test_mask_is_static(self, dense_model, data):
        """Pruned weights never revive during fine-tuning."""
        import copy

        x, y = data
        model = copy.deepcopy(dense_model)
        prune_and_finetune(
            model, UnstructuredScheme(0.8), x, y,
            TrainConfig(hidden=64, epochs=15), finetune_epochs=3,
        )
        assert model.weight_sparsity == pytest.approx(0.8, abs=0.02)

    def test_masked_gradients(self, data):
        x, y = data
        model = MaskedMLP(32, 16, 4)
        model.install_masks(UnstructuredScheme(0.5))
        zero_before = model.w1 == 0
        model.train_epoch(x, y, 0.05, 128, np.random.default_rng(0))
        assert np.all(model.w1[zero_before] == 0)


class TestAccuracyModel:
    def test_zero_loss_when_dense(self):
        for model in all_models():
            assert accuracy_loss_pct(model, 0.0) == 0.0

    def test_monotone_in_sparsity(self):
        model = resnet50()
        losses = [
            accuracy_loss_pct(model, s) for s in (0.3, 0.5, 0.7, 0.9)
        ]
        assert losses == sorted(losses)

    def test_monotone_in_granularity(self):
        model = resnet50()
        assert accuracy_loss_pct(model, 0.7, 1.5) >= accuracy_loss_pct(
            model, 0.7, 1.0
        )

    def test_calibration_anchor(self):
        """At its prunability the loss is ~0.4 pct points."""
        model = resnet50()
        assert accuracy_loss_pct(model, model.prunability) == (
            pytest.approx(0.4, abs=0.05)
        )

    def test_compact_model_loses_more(self):
        """DeiT-small degrades faster than ResNet50 (Sec. 1)."""
        assert accuracy_loss_pct(deit_small(), 0.7) > accuracy_loss_pct(
            resnet50(), 0.7
        )

    def test_rejects_bad_inputs(self):
        model = AccuracyModel.for_model(resnet50())
        with pytest.raises(PruningError):
            model.loss_pct(1.0)
        with pytest.raises(PruningError):
            model.loss_pct(0.5, 0.5)
