"""Tests for the Fiber data structure."""

import pytest

from repro.fibertree import Fiber


class TestConstruction:
    def test_empty(self):
        fiber = Fiber(4)
        assert fiber.shape == 4
        assert fiber.occupancy == 0

    def test_with_entries(self):
        fiber = Fiber(4, {0: 1.0, 2: 3.0})
        assert fiber.occupancy == 2

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Fiber(0)

    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(IndexError):
            Fiber(4, {4: 1.0})


class TestAccess:
    def test_payload(self):
        fiber = Fiber(4, {1: 2.5})
        assert fiber.payload(1) == 2.5

    def test_payload_missing_raises(self):
        with pytest.raises(KeyError):
            Fiber(4).payload(1)

    def test_get_default(self):
        assert Fiber(4).get(1, "missing") == "missing"

    def test_contains(self):
        fiber = Fiber(4, {1: 2.5})
        assert 1 in fiber
        assert 0 not in fiber

    def test_coordinates_sorted(self):
        fiber = Fiber(8, {5: 1, 1: 2, 3: 3})
        assert fiber.coordinates() == [1, 3, 5]

    def test_iteration_order(self):
        fiber = Fiber(8, {5: "a", 1: "b"})
        assert list(fiber) == [(1, "b"), (5, "a")]


class TestMutation:
    def test_set_payload_overwrites(self):
        fiber = Fiber(4, {0: 1.0})
        fiber.set_payload(0, 9.0)
        assert fiber.payload(0) == 9.0

    def test_prune_removes(self):
        fiber = Fiber(4, {0: 1.0})
        fiber.prune(0)
        assert fiber.occupancy == 0

    def test_prune_absent_is_noop(self):
        fiber = Fiber(4)
        fiber.prune(2)
        assert fiber.occupancy == 0

    def test_prune_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Fiber(4).prune(9)


class TestDerived:
    def test_density(self):
        assert Fiber(4, {0: 1, 1: 2}).density == 0.5

    def test_len(self):
        assert len(Fiber(4, {0: 1})) == 1

    def test_equality(self):
        assert Fiber(4, {0: 1.0}) == Fiber(4, {0: 1.0})

    def test_inequality_shape(self):
        assert Fiber(4, {0: 1.0}) != Fiber(8, {0: 1.0})

    def test_repr_contains_shape(self):
        assert "shape=4" in repr(Fiber(4))


class TestBlocks:
    def test_even_split(self):
        fiber = Fiber(8, {0: 1, 5: 2})
        blocks = fiber.blocks(4)
        assert len(blocks) == 2
        assert blocks[0].coordinates() == [0]
        assert blocks[1].coordinates() == [1]  # 5 -> local coord 1

    def test_partial_final_block(self):
        fiber = Fiber(6, {5: 9})
        blocks = fiber.blocks(4)
        assert blocks[1].shape == 2
        assert blocks[1].payload(1) == 9

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            Fiber(4).blocks(0)
