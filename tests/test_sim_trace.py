"""Tests for the execution trace facility."""

import numpy as np
import pytest

from repro.sim import SimConfig
from repro.sim.trace import traced_matmul
from repro.sparsity import sparsify


@pytest.fixture
def traced(rng):
    config = SimConfig()
    pattern = config.example_pattern()
    a = sparsify(rng.normal(size=(2, 32)), pattern)
    b = rng.normal(size=(32, 3))
    b[rng.random(b.shape) < 0.5] = 0.0
    result, trace = traced_matmul(a, b, pattern, config)
    return a, b, result, trace


class TestTrace:
    def test_result_exact(self, traced):
        a, b, result, _ = traced
        np.testing.assert_allclose(result, a @ b)

    def test_step_count_matches_schedule(self, traced):
        a, b, _, trace = traced
        # 2 rows x 3 cols x 2 groups (32 values / 16-per-group).
        assert len(trace) == 2 * 3 * 2

    def test_partial_sums_reconstruct_output(self, traced):
        a, b, result, trace = traced
        accumulated = np.zeros_like(result)
        for step in trace.steps:
            accumulated[step.row, step.column] += step.partial_sum
        np.testing.assert_allclose(accumulated, result)

    def test_gating_recorded(self, traced):
        _, b, _, trace = traced
        assert any(any(step.gated_lanes) for step in trace.steps)

    def test_render_truncates(self, traced):
        *_, trace = traced
        text = trace.render(limit=2)
        assert "more steps" in text

    def test_describe_mentions_pes(self, traced):
        *_, trace = traced
        assert "PE0" in trace.steps[0].describe()
