"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SpecificationError,
    errors.PatternError,
    errors.SparsificationError,
    errors.ConformanceError,
    errors.CompressionError,
    errors.ArchitectureError,
    errors.ModelError,
    errors.UnsupportedWorkloadError,
    errors.SimulationError,
    errors.WorkloadError,
    errors.PruningError,
    errors.EvaluationError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_pattern_error_is_specification_error():
    assert issubclass(errors.PatternError, errors.SpecificationError)


def test_unsupported_workload_is_model_error():
    assert issubclass(errors.UnsupportedWorkloadError, errors.ModelError)


def test_catchable_as_base(rng=None):
    with pytest.raises(errors.ReproError):
        raise errors.SimulationError("boom")
