"""Tests for conformance checking and sparsity measurement."""

import numpy as np
import pytest

from repro.sparsity import HSSPattern, conformance_report, conforms
from repro.sparsity.analyze import measure_density, measure_sparsity


class TestMeasure:
    def test_sparsity(self):
        assert measure_sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5

    def test_density(self):
        assert measure_density(np.array([0.0, 1.0])) == 0.5

    def test_empty_array(self):
        assert measure_sparsity(np.array([])) == 0.0

    def test_all_dense(self):
        assert measure_sparsity(np.ones((3, 3))) == 0.0


class TestConforms:
    def test_conforming_24(self):
        pattern = HSSPattern.from_ratios((2, 4))
        assert conforms(np.array([1.0, 0.0, 2.0, 0.0]), pattern)

    def test_violating_24(self):
        pattern = HSSPattern.from_ratios((2, 4))
        assert not conforms(np.array([1.0, 1.0, 2.0, 0.0]), pattern)

    def test_denser_than_pattern_but_conforming(self):
        """Occupancy below G always conforms (under-full blocks)."""
        pattern = HSSPattern.from_ratios((2, 4))
        assert conforms(np.zeros(8), pattern)

    def test_two_rank_violation_at_rank1(self):
        pattern = HSSPattern.from_ratios((2, 4), (1, 2))
        # Both rank-0 blocks of the rank-1 group are non-empty: violates
        # the 1:2 rank-1 rule even though each block satisfies 2:4.
        row = np.array([1.0, 0, 0, 0, 2.0, 0, 0, 0])
        assert not conforms(row, pattern)

    def test_two_rank_conforming(self):
        pattern = HSSPattern.from_ratios((2, 4), (1, 2))
        row = np.array([1.0, 2.0, 0, 0, 0, 0, 0, 0])
        assert conforms(row, pattern)

    def test_partial_length_padded(self):
        pattern = HSSPattern.from_ratios((2, 4))
        assert conforms(np.array([1.0, 2.0, 0.0]), pattern)


class TestReport:
    def test_per_rank_details(self):
        pattern = HSSPattern.from_ratios((2, 4), (1, 2))
        row = np.array([1.0, 1.0, 1.0, 0, 2.0, 0, 0, 0])
        report = conformance_report(row, pattern)
        assert not report.ok
        assert report.ranks[0].num_violations == 1  # 3 nonzeros in block
        assert report.ranks[1].num_violations == 1  # both blocks non-empty
        assert report.ranks[0].max_occupancy == 3

    def test_measured_vs_pattern_sparsity(self, rng):
        from repro.sparsity import sparsify

        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        out = sparsify(rng.normal(size=(4, 64)), pattern)
        report = conformance_report(out, pattern)
        assert report.ok
        assert report.measured_sparsity == pytest.approx(
            report.pattern_sparsity
        )

    def test_rank_levels_labelled(self):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        report = conformance_report(np.zeros(16), pattern)
        assert [rank.level for rank in report.ranks] == [0, 1]
        assert report.ranks[1].g == 3
