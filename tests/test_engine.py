"""Tests for the memoizing/parallel sweep engine."""

import pytest

from repro.energy import Estimator
from repro.errors import EvaluationError
from repro.eval.engine import (
    Cell,
    SweepEngine,
    grid_cells,
)


@pytest.fixture
def engine(estimator):
    return SweepEngine(estimator)


SMALL = dict(m=128, k=128, n=128)


class TestCellKey:
    def test_key_is_content_based(self):
        assert Cell("TC", 0.5, 0.0).key == Cell("TC", 0.5, 0.0).key

    def test_key_absorbs_float_noise(self):
        assert Cell("TC", 0.5, 0.0).key == Cell(
            "TC", 0.5 + 1e-12, 0.0
        ).key

    def test_key_distinguishes_shape(self):
        assert Cell("TC", 0.5, 0.0, m=256).key != Cell(
            "TC", 0.5, 0.0
        ).key


class TestMemoization:
    def test_cache_hit_counting(self, engine):
        cells = [Cell("TC", 0.0, 0.0, **SMALL),
                 Cell("HighLight", 0.5, 0.0, **SMALL)]
        first = engine.evaluate_cells(cells)
        assert engine.stats.misses == 2
        assert engine.stats.hits == 0
        second = engine.evaluate_cells(cells)
        assert engine.stats.misses == 2
        assert engine.stats.hits == 2
        assert first == second

    def test_duplicates_within_one_batch_evaluated_once(self, engine):
        cell = Cell("TC", 0.0, 0.0, **SMALL)
        results = engine.evaluate_cells([cell, cell, cell])
        assert engine.stats.misses == 1
        assert engine.stats.hits == 2
        assert results[0] == results[1] == results[2]

    def test_unsupported_cells_are_cached_too(self, engine):
        cell = Cell("S2TA", 0.0, 0.0, **SMALL)  # dense-dense: None
        assert engine.evaluate_cells([cell]) == [None]
        assert engine.evaluate_cells([cell]) == [None]
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1

    def test_shared_engine_per_estimator(self):
        estimator = Estimator()
        assert SweepEngine.shared(estimator) is SweepEngine.shared(
            estimator
        )
        assert SweepEngine.shared(estimator) is not SweepEngine.shared(
            Estimator()
        )

    def test_shared_without_estimator_is_fresh(self):
        assert SweepEngine.shared() is not SweepEngine.shared()


class TestParallelism:
    def test_jobs_1_and_4_produce_identical_sweeps(self, estimator):
        serial = SweepEngine(estimator, jobs=1).sweep(**SMALL)
        parallel = SweepEngine(estimator, jobs=4).sweep(**SMALL)
        assert serial.design_order == parallel.design_order
        assert list(serial.cells) == list(parallel.cells)
        for cell in serial.cells:
            assert serial.cells[cell] == parallel.cells[cell]

    def test_deterministic_result_ordering(self, estimator):
        cells = grid_cells(("TC", "HighLight"), (0.0, 0.5), (0.0,),
                           **SMALL)
        a = SweepEngine(estimator, jobs=4).evaluate_cells(cells)
        b = SweepEngine(estimator, jobs=4).evaluate_cells(cells)
        assert a == b

    def test_invalid_jobs_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(jobs=0)


class TestSweep:
    def test_sweep_defaults_to_main_designs(self, engine):
        sweep = engine.sweep(a_degrees=(0.0,), b_degrees=(0.0,), **SMALL)
        assert sweep.design_order == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )
        assert sweep.baseline == "TC"

    def test_sweep_baseline_falls_back_to_first_design(self, engine):
        sweep = engine.sweep(
            designs=("HighLight", "DSSO"),
            a_degrees=(0.5,), b_degrees=(0.5,), **SMALL,
        )
        assert sweep.baseline == "HighLight"
        row = sweep.normalized("edp")[(0.5, 0.5)]
        assert row["HighLight"] == pytest.approx(1.0)

    def test_sweep_unknown_design_raises(self, engine):
        with pytest.raises(KeyError, match="NoSuchDesign"):
            engine.sweep(designs=("NoSuchDesign",), **SMALL)

    def test_grid_cells_order(self):
        cells = grid_cells(("TC", "STC"), (0.0, 0.5), (0.0,), **SMALL)
        assert [(c.design, c.sparsity_a) for c in cells] == [
            ("TC", 0.0), ("STC", 0.0), ("TC", 0.5), ("STC", 0.5),
        ]

    def test_design_instances_reused(self, engine):
        assert engine.design("TC") is engine.design("TC")
