"""Tests for the memoizing/parallel sweep engine."""

import threading

import pytest

from repro.energy import Estimator
from repro.errors import EvaluationError
from repro.eval.cache import MISS, PersistentCache
from repro.eval.engine import (
    Cell,
    SweepEngine,
    grid_cells,
)
from repro.model.workload import synthetic_workload


@pytest.fixture
def engine(estimator):
    return SweepEngine(estimator)


SMALL = dict(m=128, k=128, n=128)


class TestCellRealization:
    def test_degree_noise_shares_workload_keys(self):
        """Cells carry no cache key of their own; quantization inside
        the workload keys absorbs grid-arithmetic float noise."""
        exact = [w.key() for w in Cell("HighLight", 0.5, 0.25).realize()]
        noisy = [
            w.key()
            for w in Cell("HighLight", 0.5 + 1e-12, 0.25).realize()
        ]
        assert exact == noisy

    def test_shape_distinguishes_workloads(self):
        assert (
            Cell("TC", 0.5, 0.0, m=256).realize()[0].key()
            != Cell("TC", 0.5, 0.0).realize()[0].key()
        )


class TestMemoization:
    def test_cache_hit_counting(self, engine):
        # TC realizes one dense workload; HighLight(0.5, 0.0) realizes
        # its primary orientation plus the swap (B's 0% is canonical).
        cells = [Cell("TC", 0.0, 0.0, **SMALL),
                 Cell("HighLight", 0.5, 0.0, **SMALL)]
        first = engine.evaluate_cells(cells)
        assert engine.stats.misses == 3
        assert engine.stats.hits == 0
        second = engine.evaluate_cells(cells)
        assert engine.stats.misses == 3
        assert engine.stats.hits == 3
        assert first == second

    def test_duplicates_within_one_batch_evaluated_once(self, engine):
        cell = Cell("TC", 0.0, 0.0, **SMALL)
        results = engine.evaluate_cells([cell, cell, cell])
        assert engine.stats.misses == 1
        assert engine.stats.hits == 2
        assert results[0] == results[1] == results[2]

    def test_unsupported_cells_are_cached_too(self, engine):
        # Both square-cell orientations share one workload key, so the
        # first batch is 1 miss + 1 hit, the second pure hits.
        cell = Cell("S2TA", 0.0, 0.0, **SMALL)  # dense-dense: None
        assert engine.evaluate_cells([cell]) == [None]
        assert engine.evaluate_cells([cell]) == [None]
        assert engine.stats.misses == 1
        assert engine.stats.hits == 3

    def test_workloads_deduplicate_across_labels(self, engine):
        """The memoization key is workload *content*: two identically
        shaped/sparse workloads with different display names share one
        evaluation."""
        first = synthetic_workload(0.5, 0.25, size=128)
        relabeled = type(first)(
            m=first.m, k=first.k, n=first.n, a=first.a, b=first.b,
            name="a totally different label",
        )
        results = engine.evaluate_workloads(
            [("HighLight", first), ("HighLight", relabeled)]
        )
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1
        assert results[0] == results[1]

    def test_dense_workload_shared_across_degree_cells(self, engine):
        """TC's realization is degree-independent, so a whole TC degree
        column costs exactly one evaluation."""
        cells = [
            Cell("TC", a, b, **SMALL)
            for a in (0.0, 0.5, 0.75)
            for b in (0.0, 0.25, 0.5)
        ]
        engine.evaluate_cells(cells)
        assert engine.stats.misses == 1
        assert engine.stats.hits == len(cells) - 1

    def test_shared_engine_per_estimator(self):
        estimator = Estimator()
        assert SweepEngine.shared(estimator) is SweepEngine.shared(
            estimator
        )
        assert SweepEngine.shared(estimator) is not SweepEngine.shared(
            Estimator()
        )

    def test_shared_without_estimator_is_fresh(self):
        assert SweepEngine.shared() is not SweepEngine.shared()


class TestParallelism:
    def test_jobs_1_and_4_produce_identical_sweeps(self, estimator):
        serial = SweepEngine(estimator, jobs=1).sweep(**SMALL)
        parallel = SweepEngine(estimator, jobs=4).sweep(**SMALL)
        assert serial.design_order == parallel.design_order
        assert list(serial.cells) == list(parallel.cells)
        for cell in serial.cells:
            assert serial.cells[cell] == parallel.cells[cell]

    def test_deterministic_result_ordering(self, estimator):
        cells = grid_cells(("TC", "HighLight"), (0.0, 0.5), (0.0,),
                           **SMALL)
        a = SweepEngine(estimator, jobs=4).evaluate_cells(cells)
        b = SweepEngine(estimator, jobs=4).evaluate_cells(cells)
        assert a == b

    def test_invalid_jobs_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(jobs=0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(EvaluationError, match="backend"):
            SweepEngine(backend="gpu")

    def test_process_backend_matches_serial(self, estimator):
        small = dict(m=64, k=64, n=64)
        serial = SweepEngine(estimator).sweep(
            designs=("TC", "HighLight"),
            a_degrees=(0.0, 0.5), b_degrees=(0.0,), **small,
        )
        engine = SweepEngine(jobs=2, backend="process", use_batch=False)
        try:
            procs = engine.sweep(
                designs=("TC", "HighLight"),
                a_degrees=(0.0, 0.5), b_degrees=(0.0,), **small,
            )
        finally:
            engine.close()
        for cell in serial.cells:
            for design in ("TC", "HighLight"):
                ours = serial.cells[cell][design]
                theirs = procs.cells[cell][design]
                assert ours.edp == pytest.approx(theirs.edp)
                assert ours.cycles == pytest.approx(theirs.cycles)

    def test_process_pool_reused_across_batches(self):
        # Each sweep is one batch with >1 unique pair (STC/DSTC realize
        # several orientations), so both go through the pool.
        # use_batch=False: pools serve the scalar path; the batch path
        # would evaluate these misses without ever touching a pool.
        engine = SweepEngine(jobs=2, backend="process", use_batch=False)
        try:
            engine.sweep(designs=("STC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            pool = engine._process_pool
            assert pool is not None
            engine.sweep(designs=("DSTC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            assert engine._process_pool is pool
        finally:
            engine.close()
        assert engine._process_pool is None

    def test_thread_pool_reused_across_batches(self):
        """The thread backend keeps one executor alive across batches
        (mirroring the cached process pool) instead of paying pool
        construction per ``_run_batch``."""
        engine = SweepEngine(jobs=2, backend="thread", use_batch=False)
        try:
            engine.sweep(designs=("STC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            pool = engine._thread_pool
            assert pool is not None
            engine.sweep(designs=("DSTC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            assert engine._thread_pool is pool
        finally:
            engine.close()
        assert engine._thread_pool is None

    def test_thread_pool_rebuilt_when_jobs_change(self):
        engine = SweepEngine(jobs=2, backend="thread", use_batch=False)
        try:
            engine.sweep(designs=("STC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            pool = engine._thread_pool
            engine.jobs = 3
            engine.sweep(designs=("DSTC",), a_degrees=(0.0, 0.5),
                         b_degrees=(0.0,), m=64, k=64, n=64)
            assert engine._thread_pool is not pool
            assert engine._thread_pool_jobs == 3
        finally:
            engine.close()

    def test_process_initargs_stay_picklable_after_shared_use(self):
        """A used estimator carries the shared engine (locks/events)
        and cannot be pickled — which is why the process backend ships
        (table, plugins) instead of the estimator object. Guards the
        spawn/forkserver platforms where initargs really are pickled."""
        import pickle

        estimator = Estimator()
        SweepEngine.shared(estimator).evaluate_cells(
            [Cell("TC", 0.0, 0.0, m=64, k=64, n=64)]
        )
        with pytest.raises(TypeError):
            pickle.dumps(estimator)
        pickle.dumps((estimator.table, estimator._plugins))


class TestThreadSafety:
    def test_concurrent_batches_evaluate_each_pair_once(self, estimator):
        """Many threads hammering one engine with the same grid must
        agree on results and evaluate each unique pair exactly once
        (the in-flight registry makes concurrent misses collapse)."""
        engine = SweepEngine(estimator, jobs=4)
        cells = grid_cells(
            ("TC", "STC", "HighLight"), (0.0, 0.5), (0.0, 0.5), **SMALL
        )
        unique_pairs = {
            (cell.design, workload.key())
            for cell in cells
            for workload in cell.realize()
        }
        results = [None] * 8
        errors = []

        def hammer(index):
            try:
                results[index] = engine.evaluate_cells(cells)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(batch == results[0] for batch in results)
        assert engine.stats.misses == len(unique_pairs)
        requests = sum(len(cell.realize()) for cell in cells) * 8
        assert engine.stats.requests == requests


class TestSweep:
    def test_sweep_defaults_to_main_designs(self, engine):
        sweep = engine.sweep(a_degrees=(0.0,), b_degrees=(0.0,), **SMALL)
        assert sweep.design_order == (
            "TC", "STC", "DSTC", "S2TA", "HighLight",
        )
        assert sweep.baseline == "TC"

    def test_sweep_baseline_falls_back_to_first_design(self, engine):
        sweep = engine.sweep(
            designs=("HighLight", "DSSO"),
            a_degrees=(0.5,), b_degrees=(0.5,), **SMALL,
        )
        assert sweep.baseline == "HighLight"
        row = sweep.normalized("edp")[(0.5, 0.5)]
        assert row["HighLight"] == pytest.approx(1.0)

    def test_sweep_unknown_design_raises(self, engine):
        with pytest.raises(KeyError, match="NoSuchDesign"):
            engine.sweep(designs=("NoSuchDesign",), **SMALL)

    def test_grid_cells_order(self):
        cells = grid_cells(("TC", "STC"), (0.0, 0.5), (0.0,), **SMALL)
        assert [(c.design, c.sparsity_a) for c in cells] == [
            ("TC", 0.0), ("STC", 0.0), ("TC", 0.5), ("STC", 0.5),
        ]

    def test_design_instances_reused(self, engine):
        assert engine.design("TC") is engine.design("TC")


class TestClose:
    """``close()`` is the interrupt-safety valve: dirty persistent
    entries must reach disk even when a run stops mid-grid."""

    def test_close_flushes_dirty_persistent_entries(self, tmp_path):
        estimator = Estimator()
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        engine = SweepEngine(estimator, cache=cache)
        workload = synthetic_workload(0.5, 0.25, size=128)
        # Simulate an interrupt landing between put and flush (the
        # engine normally flushes at the end of each batch).
        cache.put("TC", workload.key(), None)
        assert not cache.path.exists()
        engine.close()
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        assert reloaded.get("TC", workload.key()) is not MISS

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_interrupt_mid_batch_keeps_completed_evaluations(
        self, tmp_path, jobs
    ):
        """The headline durability scenario: a whole grid is one batch,
        and Ctrl-C partway through must persist the evaluations that
        already completed (results are recorded incrementally, and the
        failure path flushes before propagating)."""
        estimator = Estimator()
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        # use_batch=False: the interrupt is injected through the scalar
        # _evaluate_pair hook, and per-*pair* durability is the scalar
        # path's guarantee (the batch path records per design group).
        engine = SweepEngine(
            estimator, jobs=jobs, cache=cache, use_batch=False
        )
        workloads = [
            synthetic_workload(0.5, degree, size=128)
            for degree in (0.0, 0.25, 0.5, 0.75)
        ]
        real = engine._evaluate_pair
        calls = []

        def interrupting(pair):
            # >= so no pair submitted after the first interrupt can
            # still evaluate (its result would never be consumed).
            if len(calls) >= 2:
                raise KeyboardInterrupt
            result = real(pair)
            calls.append(pair)
            return result

        engine._evaluate_pair = interrupting
        with pytest.raises(KeyboardInterrupt):
            engine.evaluate_workloads(
                [("TC", w) for w in workloads]
            )
        engine.close()
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        for _, workload in calls:
            assert reloaded.get("TC", workload.key()) is not MISS
        assert len(calls) >= 1

    def test_close_is_idempotent_and_engine_stays_usable(self, tmp_path):
        estimator = Estimator()
        engine = SweepEngine(
            estimator,
            cache=PersistentCache.for_estimator(tmp_path, estimator),
        )
        workload = synthetic_workload(0.5, 0.25, size=128)
        engine.close()
        engine.close()
        (metrics,) = engine.evaluate_workloads([("TC", workload)])
        assert metrics is not None
        engine.close()

    def test_pools_shut_down_even_when_cache_close_fails(self, tmp_path):
        """A failing flush (disk full, lock contention) must not leave
        worker pools lingering, and the original error propagates."""
        estimator = Estimator()
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        # use_batch=False so the sweep actually spins up a thread pool.
        engine = SweepEngine(
            estimator, jobs=2, cache=cache, use_batch=False
        )
        engine.sweep(designs=("STC",), a_degrees=(0.0, 0.5),
                     b_degrees=(0.0,), m=64, k=64, n=64)
        assert engine._thread_pool is not None

        def failing_close():
            raise OSError("disk full")

        cache.close = failing_close
        with pytest.raises(OSError, match="disk full"):
            engine.close()
        assert engine._thread_pool is None
        assert engine._process_pool is None


class TestContextClose:
    """``EngineContext.close()`` is the teardown hook signal-driven
    shutdown paths (``repro serve``) share with the CLI's ``finally:``
    blocks — both may fire for the same context, in any order, from
    different threads, and none of that may raise or lose entries."""

    @pytest.mark.parametrize("backend", ("json", "sqlite"))
    def test_double_close_flushes_once_and_never_raises(
        self, tmp_path, backend
    ):
        from repro.eval.engine import EngineContext

        ctx = EngineContext.create(
            cache_dir=str(tmp_path), cache_backend=backend
        )
        workload = synthetic_workload(0.5, 0.25, size=128)
        (metrics,) = ctx.engine.evaluate_workloads([("TC", workload)])
        assert metrics is not None
        ctx.close()
        ctx.close()  # the signal path racing the finally: path
        reloaded = PersistentCache.for_estimator(
            tmp_path, ctx.engine.estimator, backend=backend
        )
        assert reloaded.get("TC", workload.key()) is not MISS
        reloaded.close()

    def test_context_manager_closes_on_exit(self, tmp_path):
        from repro.eval.engine import EngineContext

        workload = synthetic_workload(0.5, 0.25, size=128)
        with EngineContext.create(cache_dir=str(tmp_path)) as ctx:
            ctx.engine.evaluate_workloads([("TC", workload)])
            estimator = ctx.engine.estimator
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        assert reloaded.get("TC", workload.key()) is not MISS
        reloaded.close()
        ctx.close()  # close-after-with is still a no-op

    def test_concurrent_closes_from_threads(self, tmp_path):
        from repro.eval.engine import EngineContext

        ctx = EngineContext.create(cache_dir=str(tmp_path))
        ctx.engine.evaluate_workloads(
            [("TC", synthetic_workload(0.5, 0.25, size=128))]
        )
        errors = []

        def close():
            try:
                ctx.close()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_close_then_reuse_then_close(self, tmp_path):
        """A context stays usable after close (pools and the cache
        store reopen lazily) and the later re-close flushes again."""
        from repro.eval.engine import EngineContext

        ctx = EngineContext.create(cache_dir=str(tmp_path))
        first = synthetic_workload(0.5, 0.25, size=128)
        ctx.engine.evaluate_workloads([("TC", first)])
        ctx.close()
        second = synthetic_workload(0.5, 0.75, size=128)
        ctx.engine.evaluate_workloads([("TC", second)])
        ctx.close()
        reloaded = PersistentCache.for_estimator(
            tmp_path, ctx.engine.estimator
        )
        assert reloaded.get("TC", first.key()) is not MISS
        assert reloaded.get("TC", second.key()) is not MISS
        reloaded.close()
