"""Tests for building fibertrees from numpy arrays."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.fibertree import from_dense, render


class TestFromDense:
    def test_prunes_zeros_by_default(self):
        tensor = from_dense(np.array([0.0, 1.0, 0.0, 2.0]), ("K",))
        assert tensor.occupancy == 2

    def test_prunes_empty_subtrees(self):
        array = np.zeros((2, 3))
        array[0, 1] = 5.0
        tensor = from_dense(array, ("R", "S"))
        assert tensor.root.coordinates() == [0]

    def test_all_zero_tensor(self):
        tensor = from_dense(np.zeros((2, 2)), ("R", "S"))
        assert tensor.occupancy == 0
        assert tensor.root.shape == 2

    def test_rank_count_mismatch(self):
        with pytest.raises(SpecificationError):
            from_dense(np.zeros((2, 2)), ("R",))

    def test_scalar_rejected(self):
        with pytest.raises(SpecificationError):
            from_dense(np.array(3.0), ())

    def test_values_preserved(self):
        array = np.array([[1.5, 0.0], [0.0, -2.5]])
        tensor = from_dense(array, ("R", "S"))
        np.testing.assert_allclose(tensor.to_dense(), array)

    def test_one_dimensional(self):
        tensor = from_dense(np.array([1.0, 2.0]), ("K",))
        assert tensor.num_ranks == 1
        assert tensor.rank_shapes == (2,)


class TestRender:
    def test_contains_rank_names(self):
        tensor = from_dense(np.arange(4.0).reshape(2, 2) + 1, ("R", "S"))
        text = render(tensor)
        assert "R (shape=2)" in text
        assert "S (shape=2)" in text

    def test_leaf_values_shown(self):
        tensor = from_dense(np.array([[3.0, 0.0]]), ("R", "S"))
        assert "0: 3" in render(tensor)

    def test_truncates_long_fibers(self):
        tensor = from_dense(np.arange(1.0, 101.0), ("K",))
        assert "..." in render(tensor, max_leaves=4)
