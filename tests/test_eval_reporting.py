"""Tests for the result renderers."""

import pytest

from repro.eval import experiments as E
from repro.eval.reporting import (
    format_table,
    render_fig2,
    render_fig6,
    render_fig13,
    render_fig14,
    render_fig15,
    render_fig16,
    render_fig17,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["xx", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert len(lines) == 3

    def test_separator_row(self):
        text = format_table(["col"], [["v"]])
        assert "---" in text.splitlines()[1]


class TestRenderers:
    @pytest.fixture(scope="class")
    def sweep(self, estimator):
        return E.fig13(
            estimator, size=256, a_degrees=(0.0, 0.75),
            b_degrees=(0.0, 0.75),
        )

    def test_fig13_contains_designs_and_cells(self, sweep):
        text = render_fig13(sweep, "edp")
        assert "HighLight" in text
        assert "75%" in text
        assert "n/s" in text  # S2TA's unsupported dense cell

    def test_fig14_lists_metrics(self, sweep):
        text = render_fig14(E.fig14(sweep))
        assert "edp" in text and "ed2" in text

    def test_fig6_text(self):
        text = render_fig6(E.fig6())
        assert "15 supported densities" in text
        assert "x" in text.splitlines()[-1]

    def test_fig16_text(self, estimator):
        text = render_fig16(E.fig16(estimator))
        assert "SAF area share" in text
        assert "%" in text

    def test_fig17_text(self, estimator):
        text = render_fig17(E.fig17(estimator, size=128))
        assert "C1(2:4)" in text
        assert "2.00x" in text

    def test_fig2_text(self, estimator):
        text = render_fig2(E.fig2(estimator))
        assert "ResNet50" in text and "Transformer-Big" in text

    def test_fig15_text(self, estimator):
        text = render_fig15(E.fig15(estimator))
        assert "on frontier" in text
        assert "DeiT-small" in text
