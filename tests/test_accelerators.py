"""Tests for the analytical accelerator design models.

These encode the per-design behaviours the paper attributes to each
baseline: TC's obliviousness, STC's 2x cap and single-sidedness, DSTC's
accumulation tax and imbalance, S2TA's dual-structured requirement, and
HighLight's hierarchical skipping + gating.
"""

import pytest

from repro.accelerators import (
    DSSO,
    DSTC,
    STC,
    S2TA,
    TC,
    HighLight,
    all_designs,
    best_orientation,
)
from repro.errors import UnsupportedWorkloadError
from repro.model.workload import (
    MatmulWorkload,
    dense_operand,
    hss_operand,
    structured_operand,
    synthetic_workload,
    unstructured_operand,
)
from repro.sparsity import HSSPattern

SIZE = 256


def workload(a, b, m=SIZE, k=SIZE, n=SIZE):
    return MatmulWorkload(m=m, k=k, n=n, a=a, b=b, name="t")


def hss(sparsity):
    patterns = {
        0.5: HSSPattern.from_ratios((2, 4), (4, 4)),
        0.75: HSSPattern.from_ratios((2, 4), (4, 8)),
    }
    return hss_operand(patterns[sparsity])


class TestTC:
    def test_supports_everything(self):
        assert TC().supports(workload(unstructured_operand(0.9),
                                      dense_operand()))

    def test_oblivious_to_sparsity(self, estimator):
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        sparse = TC().evaluate(
            workload(unstructured_operand(0.75), unstructured_operand(0.5)),
            estimator,
        )
        assert dense.cycles == sparse.cycles
        assert dense.energy_pj == pytest.approx(sparse.energy_pj)

    def test_cycles_are_dense_products_over_macs(self, estimator):
        metrics = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert metrics.cycles == pytest.approx(SIZE**3 / 1024)

    def test_full_utilization(self, estimator):
        metrics = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert metrics.utilization == 1.0


class TestSTC:
    def test_2x_speedup_on_24(self, estimator):
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        sparse = STC().evaluate(
            workload(hss(0.5), dense_operand()), estimator
        )
        assert dense.cycles / sparse.cycles == pytest.approx(2.0)

    def test_speedup_capped_at_2x(self, estimator):
        """75% sparse weights still only get the 2:4 cap (Sec. 2.2.3)."""
        at_50 = STC().evaluate(
            workload(hss(0.5), dense_operand()), estimator
        )
        at_75 = STC().evaluate(
            workload(hss(0.75), dense_operand()), estimator
        )
        assert at_50.cycles == pytest.approx(at_75.cycles)

    def test_cannot_exploit_b_sparsity(self, estimator):
        dense_b = STC().evaluate(
            workload(hss(0.5), dense_operand()), estimator
        )
        sparse_b = STC().evaluate(
            workload(hss(0.5), unstructured_operand(0.6)), estimator
        )
        assert dense_b.cycles == pytest.approx(sparse_b.cycles)

    def test_dense_mode_near_tc(self, estimator):
        """STC at EDP parity with TC on dense layers."""
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        stc = STC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert stc.edp / dense.edp == pytest.approx(1.0, abs=0.1)


class TestDSTC:
    def test_dual_side_skipping(self, estimator):
        metrics = DSTC().evaluate(
            workload(unstructured_operand(0.75), unstructured_operand(0.5)),
            estimator,
        )
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        # Effectual fraction is 0.125 but imbalance keeps it above that.
        assert metrics.cycles < dense.cycles
        assert metrics.cycles > 0.125 * dense.cycles

    def test_imperfect_utilization_when_sparse(self, estimator):
        metrics = DSTC().evaluate(
            workload(unstructured_operand(0.75), unstructured_operand(0.75)),
            estimator,
        )
        assert metrics.utilization < 0.6

    def test_high_tax_at_dense(self, estimator):
        """DSTC's EDP is far worse than TC's on dense workloads."""
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        dstc = DSTC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert dstc.edp / dense.edp > 3.0

    def test_accumulation_dominates_energy(self, estimator):
        metrics = DSTC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        accum = metrics.energy_breakdown_pj["accum_buffer"]
        assert accum > 0.5 * metrics.energy_pj


class TestS2TA:
    def test_requires_sparse_a(self):
        assert not S2TA().supports(
            workload(dense_operand(), unstructured_operand(0.75))
        )

    def test_supports_half_sparse_a(self):
        assert S2TA().supports(
            workload(structured_operand(4, 8), dense_operand())
        )

    def test_dual_side_speedup_with_b_cap(self, estimator):
        """B-side skipping is capped at 2x (scheduled >= 4:8)."""
        base = S2TA().evaluate(
            workload(structured_operand(4, 8), dense_operand()), estimator
        )
        both = S2TA().evaluate(
            workload(structured_operand(4, 8), structured_operand(1, 8)),
            estimator,
        )
        assert base.cycles / both.cycles == pytest.approx(2.0)

    def test_quantizes_to_eighths(self, estimator):
        exact = S2TA().evaluate(
            workload(structured_operand(4, 8), dense_operand()), estimator
        )
        rounded = S2TA().evaluate(
            workload(structured_operand(2, 8),
                     unstructured_operand(0.05)),
            estimator,
        )
        assert rounded.cycles == pytest.approx(exact.cycles / 2)


class TestHighLight:
    def test_structured_speedup_exact(self, estimator):
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        metrics = HighLight().evaluate(
            workload(hss(0.75), dense_operand()), estimator
        )
        assert dense.cycles / metrics.cycles == pytest.approx(4.0)
        assert metrics.utilization == 1.0

    def test_dense_parity(self, estimator):
        """EDP parity with TC on dense layers (headline claim)."""
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        metrics = HighLight().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert metrics.edp / dense.edp == pytest.approx(1.0, abs=0.05)

    def test_b_gating_saves_energy_not_time(self, estimator):
        dense_b = HighLight().evaluate(
            workload(hss(0.5), dense_operand()), estimator
        )
        sparse_b = HighLight().evaluate(
            workload(hss(0.5), unstructured_operand(0.6)), estimator
        )
        assert sparse_b.cycles == pytest.approx(dense_b.cycles)
        assert sparse_b.energy_pj < dense_b.energy_pj

    def test_rejects_unstructured_a(self):
        assert not HighLight().supports(
            workload(unstructured_operand(0.5), dense_operand())
        )

    def test_conservative_b_haircut(self, estimator):
        """The Fig. 13 footnote: 25% B sparsity exploited as 20%."""
        at_25 = HighLight().evaluate(
            workload(hss(0.5), unstructured_operand(0.25)), estimator
        )
        dense_b = HighLight().evaluate(
            workload(hss(0.5), dense_operand()), estimator
        )
        gated = at_25.energy_breakdown_pj["macs"]
        full = dense_b.energy_breakdown_pj["macs"]
        assert gated / full == pytest.approx(
            0.8 + 0.2 * 0.12 / 2.2, rel=0.02
        )

    def test_unsupported_degree_rounds_up(self, estimator):
        """A 3:4 (25% sparse) operand runs at the nearest supported
        density (0.8), not at 0.75."""
        metrics = HighLight().evaluate(
            workload(hss_operand(HSSPattern.from_ratios((3, 4))),
                     dense_operand()),
            estimator,
        )
        dense = TC().evaluate(
            workload(dense_operand(), dense_operand()), estimator
        )
        assert metrics.cycles / dense.cycles == pytest.approx(0.8)


class TestDSSO:
    def a_pattern(self):
        return hss_operand(HSSPattern.from_ratios((2, 4)))

    def b_pattern(self, h):
        return hss_operand(HSSPattern.from_ratios((4, 4), (2, h)))

    def test_supports_alternating_dense_ranks(self):
        assert DSSO().supports(
            workload(self.a_pattern(), self.b_pattern(4))
        )

    def test_rejects_doubly_sparse_same_rank(self):
        doubly = hss_operand(HSSPattern.from_ratios((2, 4), (2, 4)))
        assert not DSSO().supports(workload(doubly, self.b_pattern(4)))

    def test_dual_side_speedup(self, estimator):
        """Fig. 17: 2x faster than HighLight at B C1(2:4)."""
        wl = workload(self.a_pattern(), self.b_pattern(4))
        dsso = DSSO().evaluate(wl, estimator)
        highlight = HighLight().evaluate(wl, estimator)
        assert highlight.cycles / dsso.cycles == pytest.approx(2.0)

    def test_evaluate_unsupported_raises(self, estimator):
        doubly = hss_operand(HSSPattern.from_ratios((2, 4), (2, 4)))
        with pytest.raises(UnsupportedWorkloadError):
            DSSO().evaluate(workload(doubly, self.b_pattern(4)), estimator)


class TestBestOrientation:
    def test_swap_helps_stc(self, estimator):
        """B sparse + A dense: swapping exposes the structured operand."""
        wl = workload(dense_operand(), hss(0.5).pattern and hss(0.5))
        result = best_orientation(STC(), wl, estimator)
        assert result.swapped

    def test_no_swap_when_unsupported(self, estimator):
        wl = workload(dense_operand(), dense_operand())
        with pytest.raises(UnsupportedWorkloadError):
            best_orientation(S2TA(), wl, estimator)

    def test_all_designs_have_names_and_patterns(self):
        for design in all_designs():
            assert design.name
            assert design.supported_patterns

    def test_synthetic_workload_all_supported_by_tc(self, estimator):
        for sa in (0.0, 0.5, 0.75):
            wl = synthetic_workload(sa, 0.5, size=128)
            assert best_orientation(TC(), wl, estimator).supported
