"""Tests for the persistent (design, workload) evaluation cache."""

import json

import pytest

from repro.energy import Estimator
from repro.energy.tables import EnergyAreaTable
from repro.errors import CacheError
from repro.eval.cache import (
    COLUMNS_SCHEMA_VERSION,
    MISS,
    PersistentCache,
    cache_stats,
    clear_cache,
    estimator_fingerprint,
    merge_cache_dirs,
    pair_digest,
)
from repro.eval.engine import SweepEngine
from repro.model.workload import synthetic_workload


@pytest.fixture
def workload():
    return synthetic_workload(0.5, 0.25, size=128)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert estimator_fingerprint(Estimator()) == (
            estimator_fingerprint(Estimator())
        )

    def test_sensitive_to_table_changes(self):
        default = estimator_fingerprint(Estimator())
        tweaked = estimator_fingerprint(
            Estimator(table=EnergyAreaTable(mac_pj=9.9))
        )
        assert default != tweaked

    def test_pair_digest_is_content_based(self, workload):
        relabeled = type(workload)(
            m=workload.m, k=workload.k, n=workload.n,
            a=workload.a, b=workload.b, name="other label",
        )
        assert pair_digest("TC", workload.key()) == pair_digest(
            "TC", relabeled.key()
        )
        assert pair_digest("TC", workload.key()) != pair_digest(
            "STC", workload.key()
        )


class TestPersistentCache:
    def test_round_trip(self, tmp_path, estimator, workload):
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        engine = SweepEngine(estimator)
        (metrics,) = engine.evaluate_workloads([("HighLight", workload)])
        cache.put("HighLight", workload.key(), metrics)
        cache.flush()
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        assert len(reloaded) == 1
        cached = reloaded.get("HighLight", workload.key())
        assert cached is not MISS
        assert cached.edp == pytest.approx(metrics.edp)
        assert cached.cycles == pytest.approx(metrics.cycles)

    def test_none_is_a_first_class_entry(self, tmp_path, estimator,
                                         workload):
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        cache.put("S2TA", workload.key(), None)
        cache.flush()
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        assert reloaded.get("S2TA", workload.key()) is None
        assert reloaded.get("S2TA", ("other",)) is MISS

    def test_flush_merges_with_concurrent_writer(self, tmp_path,
                                                 estimator, workload):
        first = PersistentCache.for_estimator(tmp_path, estimator)
        second = PersistentCache.for_estimator(tmp_path, estimator)
        first.put("TC", workload.key(), None)
        first.flush()
        second.put("STC", workload.key(), None)
        second.flush()
        reloaded = PersistentCache.for_estimator(tmp_path, estimator)
        assert reloaded.get("TC", workload.key()) is None
        assert reloaded.get("STC", workload.key()) is None

    def test_corrupt_file_treated_as_empty(self, tmp_path, estimator):
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        cache.path.parent.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("{not json")
        assert len(PersistentCache.for_estimator(tmp_path,
                                                 estimator)) == 0

    def test_malformed_entries_treated_as_empty(self, tmp_path,
                                                estimator):
        """Valid JSON with a broken entry must not crash every
        subsequent run — the cache is best-effort."""
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        cache.path.parent.mkdir(parents=True, exist_ok=True)
        cache.path.write_text(json.dumps({
            "schema_version": 1,
            "fingerprint": cache.fingerprint,
            "entries": {"a" * 64: {"kind": "metrics"}},  # missing keys
        }))
        assert len(PersistentCache.for_estimator(tmp_path,
                                                 estimator)) == 0

    def test_different_fingerprints_are_isolated(self, tmp_path,
                                                 workload):
        default = Estimator()
        tweaked = Estimator(table=EnergyAreaTable(mac_pj=9.9))
        cache = PersistentCache.for_estimator(tmp_path, default)
        cache.put("TC", workload.key(), None)
        cache.flush()
        other = PersistentCache.for_estimator(tmp_path, tweaked)
        assert other.get("TC", workload.key()) is MISS


class TestEngineIntegration:
    def test_second_engine_served_entirely_from_disk(self, tmp_path):
        grid = dict(
            designs=("TC", "HighLight"),
            a_degrees=(0.0, 0.5), b_degrees=(0.0,),
            m=128, k=128, n=128,
        )
        cold_estimator = Estimator()
        cold = SweepEngine(
            cold_estimator,
            cache=PersistentCache.for_estimator(tmp_path, cold_estimator),
        )
        cold_sweep = cold.sweep(**grid)
        cold.flush()  # in-batch flushes are debounced
        assert cold.stats.misses > 0
        warm_estimator = Estimator()
        warm = SweepEngine(
            warm_estimator,
            cache=PersistentCache.for_estimator(tmp_path, warm_estimator),
        )
        warm_sweep = warm.sweep(**grid)
        assert warm.stats.misses == 0
        assert warm.stats.disk_hits > 0
        for cell in cold_sweep.cells:
            for design in grid["designs"]:
                ours = cold_sweep.cells[cell][design]
                theirs = warm_sweep.cells[cell][design]
                assert ours.edp == pytest.approx(theirs.edp)

    def test_cache_file_is_valid_json(self, tmp_path, workload):
        estimator = Estimator()
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        engine = SweepEngine(estimator, cache=cache)
        engine.evaluate_workloads([("HighLight", workload)])
        engine.flush()
        data = json.loads(cache.path.read_text())
        assert data["fingerprint"] == cache.fingerprint
        assert data["schema_version"] == COLUMNS_SCHEMA_VERSION
        assert len(data["columns"]["lengths"]) == 1


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path, estimator, workload):
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        cache.put("TC", workload.key(), None)
        cache.flush()
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 1
        assert len(stats["files"]) == 1
        assert clear_cache(tmp_path) == 1
        assert cache_stats(tmp_path)["total_entries"] == 0

    def test_clear_leaves_foreign_json_alone(self, tmp_path, estimator,
                                             workload):
        """Only <fingerprint>.json files are cache files; run records
        or other JSON sharing the directory must survive a clear."""
        cache = PersistentCache.for_estimator(tmp_path, estimator)
        cache.put("TC", workload.key(), None)
        cache.flush()
        record = tmp_path / "run-record.json"
        record.write_text("{}")
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 1
        assert len(stats["files"]) == 1
        assert clear_cache(tmp_path) == 1
        assert record.exists()

    def test_stats_on_missing_directory(self, tmp_path):
        stats = cache_stats(tmp_path / "nope")
        assert stats["files"] == []
        assert stats["total_entries"] == 0


class TestMergeCacheDirs:
    def _shard(self, directory, estimator, pairs):
        cache = PersistentCache.for_estimator(directory, estimator)
        engine = SweepEngine(estimator, cache=cache)
        engine.evaluate_workloads(pairs)
        return cache

    def test_union_of_shards(self, tmp_path, estimator):
        a = synthetic_workload(0.5, 0.0, size=128)
        b = synthetic_workload(0.75, 0.0, size=128)
        self._shard(tmp_path / "s1", estimator, [("HighLight", a)])
        self._shard(tmp_path / "s2", estimator, [("HighLight", b)])
        summary = merge_cache_dirs(
            [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
        )
        assert summary["total_entries"] == 2
        assert summary["new_entries"] == 2
        assert summary["fingerprint"] == estimator_fingerprint(estimator)
        merged = PersistentCache.for_estimator(
            tmp_path / "out", estimator
        )
        assert merged.get("HighLight", a.key()) is not MISS
        assert merged.get("HighLight", b.key()) is not MISS

    def test_merge_is_idempotent(self, tmp_path, estimator, workload):
        self._shard(tmp_path / "s1", estimator, [("TC", workload)])
        merge_cache_dirs([tmp_path / "s1"], tmp_path / "out")
        again = merge_cache_dirs([tmp_path / "s1"], tmp_path / "out")
        assert again["new_entries"] == 0
        assert again["total_entries"] == 1

    def test_overlapping_shards_deduplicate(self, tmp_path, estimator,
                                            workload):
        self._shard(tmp_path / "s1", estimator, [("TC", workload)])
        self._shard(tmp_path / "s2", estimator, [("TC", workload)])
        summary = merge_cache_dirs(
            [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
        )
        assert summary["total_entries"] == 1

    def test_mismatched_fingerprints_refused(self, tmp_path, workload):
        self._shard(tmp_path / "s1", Estimator(), [("TC", workload)])
        other = Estimator(table=EnergyAreaTable(mac_pj=9.9))
        self._shard(tmp_path / "s2", other, [("TC", workload)])
        with pytest.raises(CacheError, match="mismatched"):
            merge_cache_dirs(
                [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
            )

    def test_empty_source_refused(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(CacheError, match="no cache files"):
            merge_cache_dirs([tmp_path / "empty"], tmp_path / "out")

    def test_corrupt_source_is_loud(self, tmp_path, estimator):
        shard = tmp_path / "s1"
        shard.mkdir()
        path = shard / f"{estimator_fingerprint(estimator)}.json"
        path.write_text("{not json")
        with pytest.raises(CacheError, match="cannot read"):
            merge_cache_dirs([shard], tmp_path / "out")
