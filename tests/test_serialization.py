"""Tests for JSON serialization round-trips."""

import json

import pytest

from repro.errors import SpecificationError
from repro import serialization as S
from repro.model.workload import (
    dense_operand,
    hss_operand,
    synthetic_workload,
    unstructured_operand,
)
from repro.sparsity import HSSPattern, parse_spec


class TestPatternRoundTrip:
    def test_round_trip(self):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        assert S.pattern_from_dict(S.pattern_to_dict(pattern)) == pattern

    def test_json_safe(self):
        pattern = HSSPattern.from_ratios((2, 4))
        text = json.dumps(S.pattern_to_dict(pattern))
        assert S.pattern_from_dict(json.loads(text)) == pattern

    def test_wrong_kind_rejected(self):
        with pytest.raises(SpecificationError):
            S.pattern_from_dict({"kind": "operand", "version": 1})

    def test_wrong_version_rejected(self):
        data = S.pattern_to_dict(HSSPattern.from_ratios((2, 4)))
        data["version"] = 99
        with pytest.raises(SpecificationError):
            S.pattern_from_dict(data)


class TestSpecRoundTrip:
    def test_round_trip(self):
        spec = parse_spec("RS->C2->C1(3:4)->C0(2:4)")
        assert S.spec_from_dict(S.spec_to_dict(spec)) == spec

    def test_unconstrained_round_trip(self):
        spec = parse_spec("C(unconstrained)->R->S")
        assert S.spec_from_dict(S.spec_to_dict(spec)) == spec


class TestWorkloadRoundTrip:
    @pytest.mark.parametrize(
        "operand",
        [
            dense_operand(),
            unstructured_operand(0.6),
            hss_operand(HSSPattern.from_ratios((2, 4), (2, 4))),
        ],
    )
    def test_operand_round_trip(self, operand):
        assert S.operand_from_dict(S.operand_to_dict(operand)) == operand

    def test_workload_round_trip(self):
        workload = synthetic_workload(0.75, 0.5, size=128)
        restored = S.workload_from_dict(S.workload_to_dict(workload))
        assert restored == workload

    def test_workload_json_safe(self):
        workload = synthetic_workload(0.5, 0.25, size=64)
        text = json.dumps(S.workload_to_dict(workload))
        assert S.workload_from_dict(json.loads(text)) == workload


class TestMetricsRoundTrip:
    def test_round_trip_preserves_derived(self, estimator):
        from repro.accelerators import HighLight

        workload = synthetic_workload(0.75, 0.5, size=128)
        metrics = HighLight().evaluate(workload, estimator)
        data = S.metrics_to_dict(metrics)
        restored = S.metrics_from_dict(data)
        assert restored.edp == pytest.approx(metrics.edp)
        assert restored.energy_pj == pytest.approx(metrics.energy_pj)
        assert data["edp"] == pytest.approx(metrics.edp)

    def test_json_safe(self, estimator):
        from repro.accelerators import TC

        metrics = TC().evaluate(
            synthetic_workload(0.0, 0.0, size=64), estimator
        )
        text = json.dumps(S.metrics_to_dict(metrics))
        restored = S.metrics_from_dict(json.loads(text))
        assert restored.design == "TC"
