"""Tests for activity-count accumulation and energy conversion."""

import pytest

from repro.arch.designs import tc_resources
from repro.energy import Estimator
from repro.errors import ModelError
from repro.model.activity import ActivityCounts


class TestAccumulation:
    def test_add_accumulates(self):
        counts = ActivityCounts()
        counts.add("macs", "mac", 10)
        counts.add("macs", "mac", 5)
        assert counts.counts[("macs", "mac")] == 15

    def test_zero_count_ignored(self):
        counts = ActivityCounts()
        counts.add("macs", "mac", 0)
        assert not counts.counts

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            ActivityCounts().add("macs", "mac", -1)

    @pytest.mark.parametrize(
        "count",
        (float("nan"), float("inf"), float("-inf")),
        ids=("nan", "inf", "-inf"),
    )
    def test_non_finite_rejected(self, count):
        """NaN passes every ordering comparison, so without an explicit
        guard it would flow into cached Metrics undetected."""
        with pytest.raises(ModelError, match="non-finite count"):
            ActivityCounts().add("macs", "mac", count)

    def test_total_across_actions(self):
        counts = ActivityCounts()
        counts.add("glb_data", "read", 3)
        counts.add("glb_data", "write", 4)
        counts.add("macs", "mac", 9)
        assert counts.total("glb_data") == 7


class TestEnergyConversion:
    def test_energy_matches_per_action(self):
        estimator = Estimator()
        resources = tc_resources()
        counts = ActivityCounts()
        counts.add("macs", "mac", 1000)
        energy = counts.energy_pj(resources.arch, estimator)
        expected = 1000 * estimator.energy_pj(
            resources.arch.component("macs"), "mac"
        )
        assert energy["macs"] == pytest.approx(expected)

    def test_unknown_component_raises(self):
        counts = ActivityCounts()
        counts.add("nonexistent", "read", 1)
        with pytest.raises(Exception):
            counts.energy_pj(tc_resources().arch, Estimator())
