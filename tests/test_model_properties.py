"""Property-based tests on the analytical model's invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import DSTC, STC, TC, HighLight
from repro.energy import Estimator
from repro.eval.harness import evaluate_cell
from repro.model.workload import (
    MatmulWorkload,
    dense_operand,
    unstructured_operand,
)

ESTIMATOR = Estimator()
A_DEGREES = st.sampled_from([0.0, 0.5, 0.625, 0.75])
B_DEGREES = st.floats(min_value=0.0, max_value=0.9)
SIZES = st.sampled_from([128, 256, 512, 1024])


@settings(max_examples=40, deadline=None)
@given(A_DEGREES, B_DEGREES, SIZES)
def test_metrics_well_formed(sparsity_a, sparsity_b, size):
    for design in (TC(), STC(), DSTC(), HighLight()):
        metrics = evaluate_cell(
            design, sparsity_a, sparsity_b, ESTIMATOR, size, size, size
        )
        assert metrics is not None
        assert metrics.energy_pj > 0
        assert metrics.cycles > 0
        assert math.isclose(
            metrics.edp, metrics.energy_pj * metrics.cycles
        )
        assert 0 < metrics.utilization <= 1.0


@settings(max_examples=40, deadline=None)
@given(A_DEGREES, B_DEGREES, SIZES)
def test_highlight_never_slower_than_dense(sparsity_a, sparsity_b, size):
    dense = evaluate_cell(TC(), sparsity_a, sparsity_b, ESTIMATOR,
                          size, size, size)
    ours = evaluate_cell(HighLight(), sparsity_a, sparsity_b, ESTIMATOR,
                         size, size, size)
    assert ours.cycles <= dense.cycles * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(A_DEGREES, B_DEGREES, SIZES)
def test_stc_speedup_capped(sparsity_a, sparsity_b, size):
    dense = evaluate_cell(TC(), sparsity_a, sparsity_b, ESTIMATOR,
                          size, size, size)
    stc = evaluate_cell(STC(), sparsity_a, sparsity_b, ESTIMATOR,
                        size, size, size)
    assert stc.cycles >= dense.cycles * 0.5 - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.0, max_value=0.9),
)
def test_dstc_energy_monotone_in_density(sparsity_a, sparsity_b):
    """Sparser operands never cost DSTC more energy."""
    size = 512
    base = DSTC().evaluate(
        MatmulWorkload(
            m=size, k=size, n=size,
            a=unstructured_operand(sparsity_a),
            b=unstructured_operand(sparsity_b),
        ),
        ESTIMATOR,
    )
    sparser = DSTC().evaluate(
        MatmulWorkload(
            m=size, k=size, n=size,
            a=unstructured_operand(min(0.95, sparsity_a + 0.05)),
            b=unstructured_operand(sparsity_b),
        ),
        ESTIMATOR,
    )
    assert sparser.energy_pj <= base.energy_pj * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(SIZES)
def test_tc_scale_free_normalization(size):
    """TC's EDP scales as size^5 (E ~ size^3 compute + size^2 traffic,
    D ~ size^3): the dense baseline is sane across sizes."""
    small = TC().evaluate(
        MatmulWorkload(m=size, k=size, n=size, a=dense_operand(),
                       b=dense_operand()),
        ESTIMATOR,
    )
    double = TC().evaluate(
        MatmulWorkload(m=2 * size, k=size, n=size, a=dense_operand(),
                       b=dense_operand()),
        ESTIMATOR,
    )
    assert double.cycles == 2 * small.cycles
    assert double.energy_pj > small.energy_pj
