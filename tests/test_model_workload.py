"""Tests for workload descriptions."""

import pytest

from repro.errors import WorkloadError
from repro.model.workload import (
    MatmulWorkload,
    Structure,
    dense_operand,
    hss_operand,
    structured_operand,
    synthetic_workload,
    unstructured_operand,
)
from repro.sparsity import HSSPattern


class TestOperandSparsity:
    def test_dense(self):
        operand = dense_operand()
        assert operand.density == 1.0
        assert operand.is_dense

    def test_hss_operand_density_from_pattern(self):
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        operand = hss_operand(pattern)
        assert operand.density == pytest.approx(0.25)
        assert operand.structure is Structure.HSS

    def test_structured_shorthand(self):
        operand = structured_operand(4, 8)
        assert operand.density == 0.5
        assert operand.pattern.num_ranks == 1

    def test_unstructured(self):
        operand = unstructured_operand(0.6)
        assert operand.sparsity == pytest.approx(0.6)
        assert operand.structure is Structure.UNSTRUCTURED

    def test_unstructured_zero_is_dense(self):
        assert unstructured_operand(0.0).is_dense

    def test_rejects_density_pattern_mismatch(self):
        from repro.model.workload import OperandSparsity

        with pytest.raises(WorkloadError):
            OperandSparsity(
                0.5, Structure.HSS, HSSPattern.from_ratios((2, 4), (2, 4))
            )

    def test_rejects_pattern_on_unstructured(self):
        from repro.model.workload import OperandSparsity

        with pytest.raises(WorkloadError):
            OperandSparsity(
                0.25, Structure.UNSTRUCTURED,
                HSSPattern.from_ratios((2, 4), (2, 4)),
            )

    def test_rejects_zero_density(self):
        from repro.model.workload import OperandSparsity

        with pytest.raises(WorkloadError):
            OperandSparsity(0.0, Structure.DENSE)

    def test_describe(self):
        assert dense_operand().describe() == "dense"
        assert "unstructured" in unstructured_operand(0.5).describe()
        assert "C0" in structured_operand(2, 4).describe()


class TestMatmulWorkload:
    def workload(self):
        return MatmulWorkload(
            m=4, k=8, n=2,
            a=structured_operand(2, 4), b=unstructured_operand(0.5),
            name="toy",
        )

    def test_dense_products(self):
        assert self.workload().dense_products == 64

    def test_effectual_products(self):
        assert self.workload().effectual_products == pytest.approx(16.0)

    def test_swapped_shape(self):
        swapped = self.workload().swapped()
        assert (swapped.m, swapped.k, swapped.n) == (2, 8, 4)

    def test_swapped_operands(self):
        swapped = self.workload().swapped()
        assert swapped.a.structure is Structure.UNSTRUCTURED
        assert swapped.b.structure is Structure.HSS

    def test_swap_involution_products(self):
        workload = self.workload()
        assert (
            workload.swapped().swapped().dense_products
            == workload.dense_products
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            MatmulWorkload(0, 8, 2, dense_operand(), dense_operand())

    def test_describe_contains_name(self):
        assert "toy" in self.workload().describe()


class TestQuantizeDegree:
    def test_absorbs_float_noise(self):
        from repro.model.workload import quantize_degree

        assert quantize_degree(0.5 + 1e-12) == 0.5
        assert quantize_degree(0.75 - 1e-13) == 0.75

    def test_preserves_real_degrees(self):
        from repro.model.workload import quantize_degree

        assert quantize_degree(0.625) == 0.625
        assert quantize_degree(0.5) != quantize_degree(0.50001)


class TestContentKeys:
    def workload(self, name="toy"):
        return MatmulWorkload(
            m=4, k=8, n=2,
            a=structured_operand(2, 4), b=unstructured_operand(0.5),
            name=name,
        )

    def test_operand_key_distinguishes_structure(self):
        assert dense_operand().key() != unstructured_operand(0.5).key()
        assert (
            structured_operand(2, 4).key()
            != unstructured_operand(0.5).key()
        )

    def test_operand_key_serializes_hss_ranks(self):
        pattern = HSSPattern.from_ratios((2, 4), (4, 8))
        operand = hss_operand(pattern)
        assert operand.key()[2] == ((2, 4), (4, 8))

    def test_operand_key_distinguishes_equal_density_patterns(self):
        """2:4 and 4:8 have equal density but different block
        hierarchies — they must not share a cache entry."""
        assert (
            structured_operand(2, 4).key()
            != structured_operand(4, 8).key()
        )

    def test_operand_key_absorbs_density_noise(self):
        assert (
            unstructured_operand(0.5).key()
            == unstructured_operand(0.5 + 1e-12).key()
        )

    def test_workload_key_ignores_name(self):
        assert self.workload("a").key() == self.workload("b").key()

    def test_workload_key_hashable_and_content_based(self):
        assert hash(self.workload().key()) == hash(self.workload().key())
        other = MatmulWorkload(
            m=4, k=8, n=4,
            a=structured_operand(2, 4), b=unstructured_operand(0.5),
        )
        assert other.key() != self.workload().key()

    def test_swapped_workload_has_distinct_key(self):
        workload = self.workload()
        assert workload.swapped().key() != workload.key()


class TestSyntheticWorkload:
    def test_dense(self):
        workload = synthetic_workload(0.0, 0.0)
        assert workload.a.is_dense and workload.b.is_dense

    def test_sparsity_degrees(self):
        workload = synthetic_workload(0.75, 0.5)
        assert workload.a.sparsity == pytest.approx(0.75)
        assert workload.b.sparsity == pytest.approx(0.5)

    def test_a_is_hss_within_highlight_family(self):
        from repro.model.density import highlight_supported_density

        workload = synthetic_workload(0.5, 0.0)
        assert highlight_supported_density(workload.a) == pytest.approx(
            0.5
        )

    def test_unknown_degree_rejected(self):
        with pytest.raises(WorkloadError):
            synthetic_workload(0.33, 0.0)

    def test_size_parameter(self):
        assert synthetic_workload(0.0, 0.0, size=64).dense_products == 64**3
