"""The packed metrics codec (`repro.eval.codec`).

The codec's contract is *exactness*: a decode returns the same floats
that were encoded (raw IEEE-754, no text round-trip) and preserves
energy-breakdown key order, so every equality here is ``==``. The
legacy forms — v1 tagged dicts (JSON store schema 1, SQLite TEXT
rows) — must keep decoding next to v2 blobs, and structural corruption
must surface as :class:`~repro.errors.CacheError`, never a silent
wrong answer.
"""

from __future__ import annotations

import base64
import dataclasses
import json

import pytest

import repro.accelerators  # noqa: F401 - populates the registry
from repro.accelerators.base import evaluate_workloads_batch
from repro.accelerators.registry import REGISTRY
from repro.energy.estimator import Estimator
from repro.errors import CacheError
from repro.eval import codec
from repro.model.metrics import Metrics
from repro.model.workload import synthetic_workload
from repro.serialization import metrics_to_dict


@pytest.fixture(scope="module")
def estimator():
    return Estimator()


@pytest.fixture(scope="module")
def metrics(estimator):
    design = REGISTRY.shared("HighLight")
    workload = synthetic_workload(0.5, 0.25, size=128)
    return design.evaluate(workload, estimator)


def _assert_exact(a: Metrics, b: Metrics) -> None:
    assert a == b
    # Dict equality is order-insensitive; the render/serialize paths
    # are not, so key order is part of the contract.
    assert list(a.energy_breakdown_pj) == list(b.energy_breakdown_pj)
    assert a.energy_pj == b.energy_pj
    assert a.edp == b.edp


class TestBlobRoundTrip:
    def test_decode_is_bit_exact(self, metrics):
        _assert_exact(codec.decode_blob(codec.encode_metrics(metrics)), metrics)

    def test_flags_round_trip(self, metrics):
        for supported, swapped in (
            (True, True), (True, False), (False, True), (False, False)
        ):
            variant = dataclasses.replace(
                metrics, supported=supported, swapped=swapped
            )
            decoded = codec.decode_blob(codec.encode_metrics(variant))
            assert decoded.supported is supported
            assert decoded.swapped is swapped

    def test_non_ascii_strings_round_trip(self, metrics):
        variant = dataclasses.replace(
            metrics, design="TensorCore-µ", workload="résumé 128³"
        )
        decoded = codec.decode_blob(codec.encode_metrics(variant))
        assert decoded.design == variant.design
        assert decoded.workload == variant.workload

    def test_pack_blob_matches_encode_metrics(self, metrics):
        """The batch assembler's column entry point and the scalar
        encoder must produce identical bytes for the same Metrics."""
        breakdown = metrics.energy_breakdown_pj
        values = codec._values_struct(len(breakdown)).pack(
            *breakdown.values()
        )
        packed = codec.pack_blob(
            (1 if metrics.supported else 0)
            | (2 if metrics.swapped else 0),
            metrics.cycles,
            metrics.utilization,
            codec.utf8(metrics.design),
            codec.utf8(metrics.workload),
            codec.utf8("\0".join(breakdown)),
            values,
            len(breakdown),
        )
        assert packed == codec.encode_metrics(metrics)

    def test_batch_stash_matches_fresh_encode(self, estimator):
        """Metrics built by the vectorized path carry a pre-packed
        blob; encode_metrics must return exactly what a from-scratch
        encode of the same (stash-free) Metrics would."""
        design = REGISTRY.shared("HighLight")
        workloads = [
            synthetic_workload(0.5, 0.25, size=size)
            for size in (64, 128, 256)
        ]
        batch = [
            m for m in evaluate_workloads_batch(
                design, workloads, estimator
            )
            if m is not None
        ]
        assert batch
        for m in batch:
            assert codec.BLOB_STASH in m.__dict__
            bare = dataclasses.replace(m)  # drops the stash
            assert codec.BLOB_STASH not in bare.__dict__
            assert codec.encode_metrics(m) == codec.encode_metrics(bare)
            _assert_exact(codec.decode_blob(codec.encode_metrics(m)), m)


class TestBlobCorruption:
    def test_unknown_version_refused(self, metrics):
        blob = bytearray(codec.encode_metrics(metrics))
        blob[0] = 9
        with pytest.raises(CacheError, match="codec version 9"):
            codec.decode_blob(bytes(blob))

    def test_truncated_blob_refused(self, metrics):
        blob = codec.encode_metrics(metrics)
        with pytest.raises(CacheError, match="corrupt metrics blob"):
            codec.decode_blob(blob[: len(blob) - 3])

    def test_name_count_mismatch_refused(self, metrics):
        blob = bytearray(codec.encode_metrics(metrics))
        # Corrupt the names block: NUL out a separator-adjacent byte so
        # the split yields a different name count than the header's n.
        names = "\0".join(metrics.energy_breakdown_pj).encode()
        start = bytes(blob).index(names)
        blob[start] = 0
        with pytest.raises(CacheError, match="names"):
            codec.decode_blob(bytes(blob))


class TestLegacyForms:
    def test_v1_sqlite_text_row_decodes(self, metrics):
        text = json.dumps(metrics_to_dict(metrics))
        _assert_exact(codec.decode_sqlite_value(text), metrics)

    def test_v1_json_dict_entry_decodes(self, metrics):
        _assert_exact(
            codec.decode_json_entry(metrics_to_dict(metrics)), metrics
        )

    def test_base64_json_entry_decodes(self, metrics):
        _assert_exact(
            codec.decode_json_entry(codec.json_entry_from_metrics(metrics)),
            metrics,
        )

    def test_none_passes_through_every_decoder(self):
        assert codec.decode_sqlite_value(None) is None
        assert codec.decode_json_entry(None) is None
        assert codec.raw_from_sqlite_value(None) is None
        assert codec.raw_from_json_entry(None) is None
        assert codec.json_entry_from_blob(None) is None

    def test_raw_bridges_agree_across_forms(self, metrics):
        """Whatever stored form an entry arrives in, the canonical raw
        blob is the same bytes."""
        blob = codec.encode_metrics(metrics)
        v1_dict = metrics_to_dict(metrics)
        assert codec.raw_from_sqlite_value(blob) == blob
        assert codec.raw_from_sqlite_value(json.dumps(v1_dict)) == blob
        assert codec.raw_from_json_entry(v1_dict) == blob
        entry = codec.json_entry_from_blob(blob)
        assert codec.raw_from_json_entry(entry) == blob


class TestColumnarBlock:
    def _raw(self, metrics):
        blob = codec.encode_metrics(metrics)
        other = codec.encode_metrics(
            dataclasses.replace(metrics, workload="other 64x64x64")
        )
        return {"aa" * 8: blob, "bb" * 8: None, "cc" * 8: other}

    def test_round_trip_preserves_entries_and_order(self, metrics):
        raw = self._raw(metrics)
        columns = codec.columns_from_raw(raw)
        decoded = codec.raw_from_columns(columns)
        assert decoded == raw
        assert list(decoded) == list(raw)

    def test_empty_mapping_round_trips(self):
        assert codec.raw_from_columns(codec.columns_from_raw({})) == {}

    def test_none_only_mapping_round_trips(self):
        raw = {"aa" * 8: None}
        assert codec.raw_from_columns(codec.columns_from_raw(raw)) == raw

    def test_missing_key_refused(self):
        with pytest.raises(CacheError, match="corrupt columnar"):
            codec.raw_from_columns({"digests": "", "lengths": []})

    def test_invalid_base64_refused(self, metrics):
        columns = codec.columns_from_raw(self._raw(metrics))
        columns["blob"] = "!!not base64!!"
        with pytest.raises(CacheError, match="corrupt columnar"):
            codec.raw_from_columns(columns)

    def test_count_mismatch_refused(self, metrics):
        columns = codec.columns_from_raw(self._raw(metrics))
        columns["digests"] += " dd" + "dd" * 7
        with pytest.raises(CacheError, match="digests"):
            codec.raw_from_columns(columns)

    def test_bad_length_refused(self, metrics):
        columns = codec.columns_from_raw(self._raw(metrics))
        columns["lengths"][0] = -4
        with pytest.raises(CacheError, match="bad length"):
            codec.raw_from_columns(columns)

    def test_trailing_bytes_refused(self, metrics):
        columns = codec.columns_from_raw(self._raw(metrics))
        blob = base64.b64decode(columns["blob"])
        columns["blob"] = base64.b64encode(blob + b"xx").decode()
        with pytest.raises(CacheError, match="lengths cover"):
            codec.raw_from_columns(columns)

    def test_short_blob_refused(self, metrics):
        columns = codec.columns_from_raw(self._raw(metrics))
        blob = base64.b64decode(columns["blob"])
        columns["blob"] = base64.b64encode(blob[:-8]).decode()
        with pytest.raises(CacheError, match="lengths cover"):
            codec.raw_from_columns(columns)


class TestHumanExport:
    def test_raw_dict_matches_v1_serialization(self, metrics):
        blob = codec.encode_metrics(metrics)
        assert codec.raw_dict_from_blob(blob) == metrics_to_dict(metrics)
