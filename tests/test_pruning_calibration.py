"""Tests for the accuracy-model calibration experiment."""

import pytest

from repro.pruning import TrainConfig
from repro.pruning.calibration import (
    CalibrationPoint,
    check_granularity_ordering,
    check_monotone_in_sparsity,
    mean_loss_by_family,
    run_calibration,
    scheme_ladders,
    summarize_calibration,
)


class TestLadders:
    def test_three_families(self):
        assert set(scheme_ladders()) == {
            "unstructured", "hss", "channel",
        }

    def test_comparable_degrees(self):
        ladders = scheme_ladders()
        degrees = {
            family: [round(s.sparsity, 3) for s in ladder]
            for family, ladder in ladders.items()
        }
        assert degrees["unstructured"] == degrees["channel"]
        assert degrees["hss"] == degrees["unstructured"]


class TestChecks:
    def points(self, *losses_by_family):
        out = []
        for family, losses in losses_by_family:
            for degree, loss in zip((0.5, 0.75), losses):
                out.append(
                    CalibrationPoint(
                        scheme=family, granularity=1.0,
                        target_sparsity=degree,
                        measured_sparsity=degree, loss_pct=loss,
                    )
                )
        return out

    def test_monotone_detects_violation(self):
        bad = self.points(("hss", (5.0, 1.0)))
        assert not check_monotone_in_sparsity(bad)

    def test_monotone_allows_slack(self):
        noisy = self.points(("hss", (1.0, 0.5)))
        assert check_monotone_in_sparsity(noisy, slack_pct=1.0)

    def test_granularity_detects_violation(self):
        bad = self.points(
            ("channel", (0.0, 0.0)), ("unstructured", (5.0, 5.0))
        )
        assert not check_granularity_ordering(bad)

    def test_mean_loss(self):
        points = self.points(("hss", (1.0, 3.0)))
        assert mean_loss_by_family(points)["hss"] == 2.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def points(self):
        # Small-but-real run (the full ladder runs in benchmarks).
        return run_calibration(
            TrainConfig(hidden=48, epochs=8),
            num_samples=900, num_features=32, num_classes=4,
        )

    def test_all_families_measured(self, points):
        assert {p.scheme for p in points} == {
            "unstructured", "hss", "channel",
        }

    def test_assumptions_hold(self, points):
        assert check_monotone_in_sparsity(points, slack_pct=2.0)
        assert check_granularity_ordering(points, slack_pct=2.0)

    def test_channel_clearly_worst(self, points):
        means = mean_loss_by_family(points)
        assert means["channel"] > means["hss"]
        assert means["channel"] > means["unstructured"]

    def test_summary_renders(self, points):
        text = summarize_calibration(points)
        assert "channel" in text and "hss" in text
