"""Tests for compressed operand B with three-level metadata (Fig. 12)."""

import numpy as np
import pytest

from repro.compression import decode_operand_b, encode_operand_b
from repro.errors import CompressionError


class TestEncodeDecode:
    def test_round_trip(self, rng):
        stream = rng.normal(size=96)
        stream[rng.random(96) < 0.7] = 0.0
        encoded = encode_operand_b(
            stream, rank0_block=4, rank1_block=4, set_size=3
        )
        np.testing.assert_allclose(decode_operand_b(encoded), stream)

    def test_round_trip_unaligned(self, rng):
        stream = rng.normal(size=50)
        stream[rng.random(50) < 0.5] = 0.0
        encoded = encode_operand_b(
            stream, rank0_block=4, rank1_block=2, set_size=3
        )
        np.testing.assert_allclose(decode_operand_b(encoded), stream)

    def test_all_zero(self):
        encoded = encode_operand_b(
            np.zeros(48), rank0_block=4, rank1_block=4, set_size=3
        )
        assert encoded.num_stored_values == 0
        np.testing.assert_allclose(decode_operand_b(encoded), np.zeros(48))

    def test_dense_stream(self, rng):
        stream = rng.uniform(1.0, 2.0, size=48)
        encoded = encode_operand_b(
            stream, rank0_block=4, rank1_block=4, set_size=3
        )
        assert encoded.num_stored_values == 48
        np.testing.assert_allclose(decode_operand_b(encoded), stream)

    def test_rejects_matrix(self):
        with pytest.raises(CompressionError):
            encode_operand_b(np.zeros((2, 2)), 4, 4, 3)

    def test_rejects_bad_blocks(self):
        with pytest.raises(CompressionError):
            encode_operand_b(np.zeros(8), 0, 4, 3)
        with pytest.raises(CompressionError):
            encode_operand_b(np.zeros(8), 4, 4, -1)


class TestMetadataLevels:
    def stream(self):
        # Three Rank1 blocks of 4 values each (rank1_block=1), one set.
        return np.array([1.0, 0, 2.0, 0,  0, 3.0, 0, 0,  0, 0, 0, 0])

    def encoded(self):
        return encode_operand_b(
            self.stream(), rank0_block=4, rank1_block=1, set_size=3
        )

    def test_set_counts(self):
        assert self.encoded().set_counts == (3,)

    def test_block_end_addresses_cumulative(self):
        assert self.encoded().block_end_addresses == (2, 3, 3)

    def test_offsets_rank0_local(self):
        assert self.encoded().offsets == (0, 2, 1)

    def test_metadata_bits_positive(self):
        assert self.encoded().metadata_bits > 0

    def test_compression_ratio(self):
        assert self.encoded().compression_ratio == pytest.approx(4.0)

    def test_compression_ratio_empty(self):
        encoded = encode_operand_b(np.zeros(12), 4, 1, 3)
        assert encoded.compression_ratio == float("inf")


class TestFig12Shifts:
    """The shift amounts the VFMU consumes are the per-set counts."""

    def test_shifts_sum_to_total_nonzeros(self, rng):
        stream = rng.normal(size=144)
        stream[rng.random(144) < 0.6] = 0.0
        encoded = encode_operand_b(
            stream, rank0_block=4, rank1_block=1, set_size=3
        )
        assert sum(encoded.set_counts) == encoded.num_stored_values

    def test_counts_match_block_ends(self, rng):
        stream = rng.normal(size=96)
        stream[rng.random(96) < 0.4] = 0.0
        encoded = encode_operand_b(
            stream, rank0_block=4, rank1_block=2, set_size=2
        )
        # Every set's count equals the delta of its boundary addresses.
        per_set = []
        for index in range(len(encoded.set_counts)):
            hi = encoded.block_end_addresses[(index + 1) * 2 - 1]
            lo = (
                encoded.block_end_addresses[index * 2 - 1]
                if index
                else 0
            )
            per_set.append(hi - lo)
        assert tuple(per_set) == encoded.set_counts
