"""Tests for hierarchical CP compression (Fig. 9)."""

import numpy as np
import pytest

from repro.compression import (
    decode_hierarchical_cp,
    encode_hierarchical_cp,
)
from repro.errors import CompressionError
from repro.sparsity import HSSPattern, sparsify


@pytest.fixture
def pattern():
    return HSSPattern.from_ratios((2, 4), (2, 4))


class TestFig9Example:
    """The exact operand-A row of paper Fig. 9 (values renamed)."""

    def row(self):
        # Blocks: [a,0,c,0] [0,0,0,0] [j,0,0,k] [0,0,0,0], C1(2:4)->C0(2:4)
        return np.array(
            [1.0, 0, 2.0, 0,  0, 0, 0, 0,  3.0, 0, 0, 4.0,  0, 0, 0, 0]
        )

    def test_rank0_offsets(self, pattern):
        encoded = encode_hierarchical_cp(self.row(), pattern)
        assert encoded.rank0_offsets == (0, 2, 0, 3)

    def test_rank1_offsets(self, pattern):
        """Non-empty blocks are the first and third: positions 0 and 2."""
        encoded = encode_hierarchical_cp(self.row(), pattern)
        assert encoded.rank1_offsets == ((0, 0), (0, 2))

    def test_values_packed_in_order(self, pattern):
        encoded = encode_hierarchical_cp(self.row(), pattern)
        np.testing.assert_allclose(encoded.values, [1.0, 2.0, 3.0, 4.0])

    def test_metadata_bits(self, pattern):
        encoded = encode_hierarchical_cp(self.row(), pattern)
        # 4 nonzeros x 2 bits (rank0) + 2 blocks x 2 bits (rank1).
        assert encoded.metadata_bits == 4 * 2 + 2 * 2

    def test_round_trip(self, pattern):
        encoded = encode_hierarchical_cp(self.row(), pattern)
        np.testing.assert_allclose(
            decode_hierarchical_cp(encoded), self.row()
        )


class TestGeneral:
    def test_round_trip_random(self, rng, pattern):
        row = sparsify(rng.normal(size=128), pattern)
        encoded = encode_hierarchical_cp(row, pattern)
        np.testing.assert_allclose(decode_hierarchical_cp(encoded), row)

    def test_one_rank_pattern(self, rng):
        pattern = HSSPattern.from_ratios((2, 4))
        row = sparsify(rng.normal(size=32), pattern)
        encoded = encode_hierarchical_cp(row, pattern)
        np.testing.assert_allclose(decode_hierarchical_cp(encoded), row)

    def test_unaligned_length_padded(self, rng, pattern):
        row = sparsify(rng.normal(size=21), pattern)
        encoded = encode_hierarchical_cp(row, pattern)
        decoded = decode_hierarchical_cp(encoded)
        assert decoded.size == 21
        np.testing.assert_allclose(decoded, row)

    def test_all_zero_row(self, pattern):
        encoded = encode_hierarchical_cp(np.zeros(32), pattern)
        assert encoded.num_stored_values == 0
        assert encoded.metadata_bits == 0
        np.testing.assert_allclose(
            decode_hierarchical_cp(encoded), np.zeros(32)
        )

    def test_rejects_rank0_violation(self, pattern):
        row = np.array([1.0, 1.0, 1.0, 0.0] + [0.0] * 12)
        with pytest.raises(CompressionError):
            encode_hierarchical_cp(row, pattern)

    def test_rejects_rank1_violation(self, pattern):
        # Three non-empty blocks in one group of four: violates 2:4.
        row = np.array([1.0, 0, 0, 0,  1.0, 0, 0, 0,  1.0, 0, 0, 0,
                        0, 0, 0, 0])
        with pytest.raises(CompressionError):
            encode_hierarchical_cp(row, pattern)

    def test_rejects_matrix_input(self, pattern):
        with pytest.raises(CompressionError):
            encode_hierarchical_cp(np.zeros((2, 2)), pattern)

    def test_rejects_three_rank_pattern(self):
        pattern = HSSPattern.from_ratios((1, 2), (1, 2), (1, 2))
        with pytest.raises(CompressionError):
            encode_hierarchical_cp(np.zeros(8), pattern)

    def test_metadata_smaller_than_bitmask_when_sparse(self, rng, pattern):
        """Hierarchical CP's metadata beats a flat bitmask at 75%."""
        row = sparsify(rng.normal(size=256), pattern)
        encoded = encode_hierarchical_cp(row, pattern)
        assert encoded.metadata_bits < 256
