"""Tests for the JSON run-record layer."""

import json

import pytest

from repro.eval.engine import SweepEngine
from repro.eval.runs import (
    SCHEMA_VERSION,
    load_record,
    metrics_summary,
    record_from_sweep,
)


@pytest.fixture
def engine(estimator):
    return SweepEngine(estimator)


@pytest.fixture
def sweep(engine):
    return engine.sweep(
        designs=("TC", "HighLight"),
        a_degrees=(0.0, 0.5), b_degrees=(0.0,),
        m=128, k=128, n=128,
    )


class TestRecordFromSweep:
    def test_captures_grid_and_cells(self, sweep, engine):
        record = record_from_sweep("sweep", sweep, engine,
                                   wall_time_s=1.5)
        assert record.schema_version == SCHEMA_VERSION
        assert record.grid["designs"] == ["TC", "HighLight"]
        assert record.grid["a_degrees"] == [0.0, 0.5]
        assert record.grid["baseline"] == "TC"
        assert len(record.cells) == 4
        assert record.wall_time_s == 1.5
        assert record.cache["misses"] == 4

    def test_geomeans_present_with_baseline(self, sweep, engine):
        record = record_from_sweep("sweep", sweep, engine)
        assert set(record.geomeans) == {
            "edp", "energy_pj", "cycles", "ed2",
        }
        assert record.geomeans["edp"]["TC"] == pytest.approx(1.0)

    def test_cell_metrics_shape(self, sweep, engine):
        record = record_from_sweep("sweep", sweep, engine)
        summary = record.cells[0]["metrics"]
        assert set(summary) == {
            "cycles", "energy_pj", "edp", "utilization", "supported",
            "swapped",
        }

    def test_unsupported_cell_serializes_as_null(self, engine):
        sweep = engine.sweep(
            designs=("TC", "S2TA"),
            a_degrees=(0.0,), b_degrees=(0.0,),
            m=128, k=128, n=128,
        )
        record = record_from_sweep("sweep", sweep, engine)
        by_design = {c["design"]: c["metrics"] for c in record.cells}
        assert by_design["S2TA"] is None
        assert by_design["TC"] is not None

    def test_metrics_summary_none_passthrough(self):
        assert metrics_summary(None) is None

    def test_shape_recorded_when_given(self, sweep, engine):
        record = record_from_sweep("sweep", sweep, engine,
                                   shape=(128, 128, 128))
        assert record.grid["shape_mkn"] == [128, 128, 128]
        assert "shape_mkn" not in record_from_sweep(
            "sweep", sweep, engine
        ).grid


class TestWriteAndLoad:
    def test_round_trip(self, sweep, engine, tmp_path):
        record = record_from_sweep("sweep", sweep, engine,
                                   wall_time_s=0.25)
        path = record.write(tmp_path / "nested" / "run.json")
        assert path.exists()
        loaded = load_record(path)
        assert loaded["command"] == "sweep"
        assert loaded["wall_time_s"] == 0.25
        assert loaded["grid"]["designs"] == ["TC", "HighLight"]
        # The artifact is valid, indented JSON (trend-diffable).
        assert json.dumps(loaded)

    def test_created_at_stamp(self, sweep, engine):
        record = record_from_sweep(
            "sweep", sweep, engine, created_at="2026-07-25T00:00:00",
        )
        assert record.created_at == "2026-07-25T00:00:00"
