"""Tests for the loopnest dataflow representation."""

import pytest

from repro.errors import ModelError
from repro.model.dataflow import Loop, LoopKind, Loopnest, highlight_loopnest


class TestLoop:
    def test_str_temporal(self):
        assert str(Loop("m", 4)) == "for m in [0, 4)"

    def test_str_spatial(self):
        assert "par-for" in str(Loop("k", 4, LoopKind.SPATIAL))

    def test_rejects_bad_bound(self):
        with pytest.raises(ModelError):
            Loop("m", 0)


class TestLoopnest:
    def nest(self):
        return Loopnest(
            (
                Loop("m1", 2),
                Loop("n", 3),
                Loop("m0", 4, LoopKind.SPATIAL),
            )
        )

    def test_temporal_iterations(self):
        assert self.nest().temporal_iterations == 6

    def test_spatial_width(self):
        assert self.nest().spatial_width == 4

    def test_total(self):
        assert self.nest().total_iterations == 24

    def test_str_indents(self):
        text = str(self.nest())
        assert text.splitlines()[1].startswith("  ")

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            Loopnest(())


class TestHighlightLoopnest:
    def test_dense_covers_workload(self):
        nest = highlight_loopnest(64, 64, 10, 1.0)
        assert nest.total_iterations == 64 * 64 * 10

    def test_skipping_shrinks_k(self):
        dense = highlight_loopnest(64, 64, 10, 1.0)
        sparse = highlight_loopnest(64, 64, 10, 0.25)
        assert (
            sparse.total_iterations == dense.total_iterations / 4
        )

    def test_spatial_grid(self):
        nest = highlight_loopnest(64, 64, 10, 1.0)
        assert nest.spatial_width == 32 * 32

    def test_small_workload_clamps(self):
        nest = highlight_loopnest(4, 4, 2, 1.0, 32, 32)
        assert nest.spatial_width == 16
