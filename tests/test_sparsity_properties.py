"""Property-based tests (hypothesis) for the sparsity core."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity import (
    GH,
    HSSPattern,
    compose_densities,
    conforms,
    sparsify,
    sparsify_unstructured,
)
from repro.sparsity.analyze import measure_sparsity


@st.composite
def gh_patterns(draw):
    h = draw(st.integers(min_value=1, max_value=8))
    g = draw(st.integers(min_value=1, max_value=h))
    return GH(g, h)


@st.composite
def hss_patterns(draw, max_ranks=3):
    num_ranks = draw(st.integers(min_value=1, max_value=max_ranks))
    return HSSPattern(tuple(draw(gh_patterns()) for _ in range(num_ranks)))


@st.composite
def matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=6))
    cols = draw(st.integers(min_value=1, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    # Values away from zero so kept entries are always nonzero.
    return rng.uniform(0.5, 1.5, size=(rows, cols)) * rng.choice(
        [-1.0, 1.0], size=(rows, cols)
    )


@given(hss_patterns())
def test_density_in_unit_interval(pattern):
    assert 0.0 < pattern.density <= 1.0
    assert pattern.sparsity + pattern.density == 1.0


@given(hss_patterns())
def test_density_is_product_of_rank_fractions(pattern):
    product = Fraction(1)
    for rank in pattern.ranks:
        product *= rank.fraction
    assert pattern.density_fraction == product


@settings(max_examples=50, deadline=None)
@given(matrices(), hss_patterns())
def test_sparsify_output_conforms(matrix, pattern):
    """Any sparsified tensor conforms to its pattern."""
    out = sparsify(matrix, pattern)
    assert conforms(out, pattern)


@settings(max_examples=50, deadline=None)
@given(matrices(), hss_patterns())
def test_sparsify_is_a_masking(matrix, pattern):
    """Sparsify only zeroes entries; survivors keep their values."""
    out = sparsify(matrix, pattern)
    survivors = out != 0
    np.testing.assert_allclose(out[survivors], matrix[survivors])


@settings(max_examples=50, deadline=None)
@given(matrices(), hss_patterns())
def test_sparsify_idempotent(matrix, pattern):
    once = sparsify(matrix, pattern)
    twice = sparsify(once, pattern)
    np.testing.assert_allclose(once, twice)


@settings(max_examples=50, deadline=None)
@given(matrices(), hss_patterns())
def test_sparsity_never_below_pattern_degree(matrix, pattern):
    """Measured sparsity >= pattern sparsity minus padding slack."""
    out = sparsify(matrix, pattern)
    # Padding at the row tail can only *increase* measured density of
    # kept slots, never allow more survivors than G per block; allow a
    # small slack for the final partial block.
    span = pattern.block_sizes()[-1]
    slack = span / matrix.shape[1]
    assert measure_sparsity(out) >= pattern.sparsity - slack - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    matrices(),
    st.floats(min_value=0.0, max_value=0.95),
)
def test_unstructured_hits_target(matrix, sparsity):
    out = sparsify_unstructured(matrix, sparsity)
    expected = round(sparsity * matrix.size) / matrix.size
    assert measure_sparsity(out) <= expected + 1e-9
    # Values away from zero: count is exact.
    assert measure_sparsity(out) >= expected - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(
            st.fractions(
                min_value=Fraction(1, 16), max_value=Fraction(1)
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=3,
    )
)
def test_compose_densities_closed_and_sorted(sets):
    result = compose_densities(*sets)
    assert result == sorted(set(result), reverse=True)
    assert all(0 < d <= 1 for d in result)
    # The largest product is the product of the maxima.
    expected_max = 1
    for density_set in sets:
        expected_max *= max(density_set)
    assert result[0] == expected_max
