"""Tests for the declarative artifact registry, EngineContext, and the
text/json/csv renderer layer.

The golden files under ``tests/golden/`` were captured from the seed
CLI (``python -m repro artifact <name>``) before the artifact registry
existed; the parity tests assert the registry's ``text`` rendering is
byte-identical to them.
"""

import csv
import io
import json
from pathlib import Path

import pytest

from repro.cli import ORDER, main
from repro.errors import EvaluationError
from repro.eval.artifacts import (
    ARTIFACTS,
    FORMATS,
    compute_artifacts,
    render,
)
from repro.eval.engine import EngineContext, SweepEngine

GOLDEN = Path(__file__).parent / "golden"

PAPER_ORDER = (
    "tables", "fig2", "fig6", "fig13", "fig14", "fig15", "fig16",
    "fig17",
)


class TestRegistry:
    def test_paper_order(self):
        assert ARTIFACTS.names() == PAPER_ORDER
        assert ORDER == list(PAPER_ORDER)

    def test_supported_formats(self):
        assert FORMATS == ("text", "json", "csv", "md")

    def test_specs_are_complete(self):
        for info in ARTIFACTS.infos():
            assert callable(info.compute)
            assert callable(info.render_text)
            assert isinstance(info.result_type, type)
            assert info.title

    def test_duplicate_registration_rejected(self):
        info = ARTIFACTS["fig6"]
        with pytest.raises(EvaluationError, match="already registered"):
            ARTIFACTS.register(info)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="fig13"):
            ARTIFACTS["fig99"]

    def test_result_type_dispatch(self):
        result = ARTIFACTS["fig6"].compute(EngineContext.coerce(None))
        assert ARTIFACTS.for_result(result).name == "fig6"

    def test_unregistered_result_type_rejected(self):
        with pytest.raises(EvaluationError, match="no registered"):
            ARTIFACTS.for_result(object())

    def test_compute_artifacts_rejects_unknown_before_work(self):
        with pytest.raises(KeyError):
            compute_artifacts(["fig6", "fig99"])


class TestEngineContext:
    def test_coerce_none_is_fresh(self):
        assert (
            EngineContext.coerce(None).engine
            is not EngineContext.coerce(None).engine
        )

    def test_coerce_estimator_shares_engine(self, estimator):
        first = EngineContext.coerce(estimator)
        second = EngineContext.coerce(estimator)
        assert first.engine is second.engine

    def test_coerce_engine_and_context_pass_through(self, estimator):
        engine = SweepEngine(estimator)
        ctx = EngineContext.coerce(engine)
        assert ctx.engine is engine
        assert EngineContext.coerce(ctx) is ctx

    def test_coerce_rejects_junk(self):
        with pytest.raises(EvaluationError, match="EngineContext"):
            EngineContext.coerce(42)

    def test_create_wires_cache_and_policy(self, tmp_path):
        ctx = EngineContext.create(
            jobs=3, backend="thread",
            cache_dir=str(tmp_path / "cache"), record="run.json",
        )
        assert ctx.jobs == 3
        assert ctx.backend == "thread"
        assert ctx.cache_dir == str(tmp_path / "cache")
        assert ctx.record_path == "run.json"
        assert ctx.engine.persistent is not None
        assert ctx.estimator is ctx.engine.estimator

    def test_no_cache_means_no_cache_dir(self):
        assert EngineContext.create().cache_dir is None


class TestGoldenTextParity:
    """Every artifact's text rendering is byte-identical to seed."""

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_artifact_text_matches_seed(self, name, capsys):
        assert main(["artifact", name]) == 0
        golden = (GOLDEN / f"{name}.txt").read_text()
        assert capsys.readouterr().out == golden

    def test_all_matches_seed(self, capsys):
        assert main(["all"]) == 0
        golden = (GOLDEN / "all.txt").read_text()
        assert capsys.readouterr().out == golden


@pytest.fixture(scope="module")
def results(estimator):
    """All artifacts computed once under one shared context."""
    return compute_artifacts(
        list(ARTIFACTS), EngineContext.coerce(estimator)
    )


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_json_render_round_trips_payload(self, name, results):
        result = results[name]
        assert json.loads(render(result, "json")) == result.to_payload()

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_payload_rows_are_tabular(self, name, results):
        payload = results[name].to_payload()
        rows = payload["rows"]
        assert rows and all(isinstance(row, dict) for row in rows)


class TestCsvRenderer:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_csv_has_header_and_all_rows(self, name, results):
        result = results[name]
        rendered = render(result, "csv")
        parsed = list(csv.reader(io.StringIO(rendered)))
        assert len(parsed) == len(result.to_payload()["rows"]) + 1

    def test_mixed_tables_csv_unions_headers(self, results):
        rendered = render(results["tables"], "csv")
        header = rendered.splitlines()[0].split(",")
        assert header[0] == "table"
        assert "patterns" in header and "macs" in header

    def test_none_and_bools_are_csv_friendly(self, results):
        rendered = render(results["fig13"], "csv")
        assert "None" not in rendered
        assert "true" in rendered or "false" in rendered

    def test_unknown_format_rejected(self, results):
        with pytest.raises(EvaluationError, match="unknown format"):
            render(results["fig6"], "yaml")


class TestCachedArtifactPipeline:
    def test_repro_all_warm_cache_evaluates_nothing(self, tmp_path):
        """The acceptance shape: ``repro all --jobs 4 --cache-dir D``
        run twice performs zero estimator evaluations the second
        time, and the structured payloads are identical."""
        cache_dir = str(tmp_path / "cache")
        cold = EngineContext.create(jobs=4, cache_dir=cache_dir)
        cold_results = compute_artifacts(list(ARTIFACTS), cold)
        assert cold.engine.stats.evaluations > 0

        warm = EngineContext.create(jobs=4, cache_dir=cache_dir)
        warm_results = compute_artifacts(list(ARTIFACTS), warm)
        assert warm.engine.stats.evaluations == 0
        assert warm.engine.stats.misses == 0
        assert warm.engine.stats.disk_hits > 0
        for name in ARTIFACTS:
            assert (
                warm_results[name].to_payload()
                == cold_results[name].to_payload()
            )
