"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.energy import Estimator


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def estimator():
    """One shared energy estimator (costing is pure, caching helps)."""
    return Estimator()
