"""The ``repro lint`` invariant checker: rules, registry, CLI.

Every rule is exercised in both directions — a fixture that must
trigger it and a near-identical fixture that must not — so a rule
that silently stops firing (or starts flagging compliant code) fails
here before it rots the committed baseline.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    RULES,
    Finding,
    RuleRegistry,
    lint_paths,
    load_baseline,
    rule,
    write_baseline,
)
from repro.cli import main
from repro.errors import (
    EvaluationError,
    LintError,
    LintUsageError,
    QueueError,
)


def run_rule(tmp_path, source, rule_id, relpath="mod.py"):
    """Lint ``source`` (written at ``relpath``) with one rule."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules=[rule_id]).findings


# ---------------------------------------------------------------------------
# REP001 lock-discipline


LOCK_BAD = """
    import threading

    class Engine:
        _lock_guarded = frozenset({"_entries"})

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def size(self):
            return len(self._entries)
"""

LOCK_GOOD_WITH = """
    import threading

    class Engine:
        _lock_guarded = frozenset({"_entries"})

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def size(self):
            with self._lock:
                return len(self._entries)
"""

LOCK_GOOD_SUFFIX = """
    import threading

    class Engine:
        _lock_guarded = frozenset({"_entries"})

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def _size_locked(self):
            return len(self._entries)
"""

LOCK_GOOD_UNGUARDED_FIELD = """
    import threading

    class Engine:
        _lock_guarded = frozenset({"_entries"})

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}
            self.stats = 0

        def bump(self):
            self.stats += 1
"""


class TestLockDiscipline:
    def test_unlocked_access_flagged(self, tmp_path):
        findings = run_rule(tmp_path, LOCK_BAD, "REP001")
        assert [f.rule for f in findings] == ["REP001"]
        assert "_entries" in findings[0].message

    def test_init_is_exempt(self, tmp_path):
        # LOCK_BAD touches _entries in __init__ too; only the method
        # access may be flagged.
        findings = run_rule(tmp_path, LOCK_BAD, "REP001")
        assert len(findings) == 1

    @pytest.mark.parametrize(
        "source",
        [LOCK_GOOD_WITH, LOCK_GOOD_SUFFIX, LOCK_GOOD_UNGUARDED_FIELD],
        ids=["with-lock", "locked-suffix", "unlisted-field"],
    )
    def test_compliant_patterns_pass(self, tmp_path, source):
        assert run_rule(tmp_path, source, "REP001") == ()


# ---------------------------------------------------------------------------
# REP002 sql-transaction


SQL_BAD_NO_COMMIT = """
    def fill(conn, rows):
        conn.execute("BEGIN IMMEDIATE")
        conn.executemany("INSERT INTO jobs (digest) VALUES (?)", rows)
"""

SQL_BAD_FSTRING = """
    def probe(conn, table):
        conn.execute(f"SELECT digest FROM {table}")
"""

SQL_BAD_CONCAT = """
    def probe(conn, table):
        conn.execute("SELECT digest FROM " + table)
"""

SQL_GOOD_TXN = """
    def fill(conn, rows):
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany(
                "INSERT INTO jobs (digest) VALUES (?)", rows
            )
        except Exception:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
"""

SQL_GOOD_PLACEHOLDERS = """
    def get_many(conn, digests):
        placeholders = ",".join("?" * len(digests))
        return conn.execute(
            f"SELECT digest FROM entries WHERE digest IN"
            f" ({placeholders})",
            digests,
        ).fetchall()
"""

SQL_GOOD_PROSE = """
    def describe(count, table):
        return f"evaluated {count} cells from {table}"
"""


class TestSqlTransaction:
    @pytest.mark.parametrize(
        "source",
        [SQL_BAD_NO_COMMIT, SQL_BAD_FSTRING, SQL_BAD_CONCAT],
        ids=["no-commit", "fstring-sql", "concat-sql"],
    )
    def test_violations_flagged(self, tmp_path, source):
        findings = run_rule(tmp_path, source, "REP002")
        assert findings and all(f.rule == "REP002" for f in findings)

    @pytest.mark.parametrize(
        "source",
        [SQL_GOOD_TXN, SQL_GOOD_PLACEHOLDERS, SQL_GOOD_PROSE],
        ids=["full-txn", "placeholder-expansion", "prose-fstring"],
    )
    def test_compliant_patterns_pass(self, tmp_path, source):
        assert run_rule(tmp_path, source, "REP002") == ()


# ---------------------------------------------------------------------------
# REP003 float-determinism (path-scoped)


FLOAT_BAD_SET = """
    def total(values):
        return sum(set(values))
"""

FLOAT_BAD_KEYS = """
    def total(table):
        return sum(table.keys())
"""

FLOAT_GOOD_SORTED = """
    def total(values):
        return sum(sorted(values))
"""

FLOAT_GOOD_FSUM = """
    import math

    def total(values):
        return math.fsum(values)
"""

FLOAT_GOOD_VALUES = """
    def total(table):
        return sum(table.values())
"""


class TestFloatDeterminism:
    @pytest.mark.parametrize(
        "source",
        [FLOAT_BAD_SET, FLOAT_BAD_KEYS],
        ids=["set-fold", "keys-fold"],
    )
    def test_unordered_reductions_flagged(self, tmp_path, source):
        findings = run_rule(
            tmp_path, source, "REP003", relpath="model/batch.py"
        )
        assert findings and all(f.rule == "REP003" for f in findings)

    @pytest.mark.parametrize(
        "source",
        [FLOAT_GOOD_SORTED, FLOAT_GOOD_FSUM, FLOAT_GOOD_VALUES],
        ids=["sorted", "fsum", "dict-values"],
    )
    def test_ordered_reductions_pass(self, tmp_path, source):
        assert (
            run_rule(
                tmp_path, source, "REP003", relpath="model/batch.py"
            )
            == ()
        )

    def test_rule_is_path_scoped(self, tmp_path):
        # The same unordered fold outside the pinned numeric modules
        # is not this rule's business.
        assert (
            run_rule(tmp_path, FLOAT_BAD_SET, "REP003", relpath="util.py")
            == ()
        )


# ---------------------------------------------------------------------------
# REP004 close-discipline


CLOSE_BAD_LEAK = """
    def count(path):
        store = JobStore(path)
        return store.stats()
"""

CLOSE_GOOD_CLOSING = """
    from contextlib import closing

    def count(path):
        with closing(JobStore(path)) as store:
            return store.stats()
"""

CLOSE_GOOD_FINALLY = """
    def count(path):
        store = JobStore(path)
        try:
            return store.stats()
        finally:
            store.close()
"""

CLOSE_GOOD_RETURN_TRANSFER = """
    def open_store(path):
        store = JobStore(path)
        return store
"""

CLOSE_GOOD_ATTR_BINDING = """
    class Holder:
        def __init__(self, path):
            self._store = JobStore(path)
"""

CLOSE_BAD_SERVICE_LEAK = """
    def serve_forever(ctx):
        service = EvaluationService(ctx, port=0)
        return asyncio.run(service.run())
"""

CLOSE_GOOD_SERVICE_FINALLY = """
    def serve_forever(ctx):
        service = EvaluationService(ctx, port=0)
        try:
            return asyncio.run(service.run())
        finally:
            service.close()
"""


class TestCloseDiscipline:
    def test_leaked_construction_flagged(self, tmp_path):
        findings = run_rule(tmp_path, CLOSE_BAD_LEAK, "REP004")
        assert [f.rule for f in findings] == ["REP004"]
        assert "JobStore" in findings[0].message

    def test_leaked_service_flagged(self, tmp_path):
        # The serve layer is watched too: a service that never closes
        # leaks the engine (and its dirty cache entries) it wraps.
        findings = run_rule(tmp_path, CLOSE_BAD_SERVICE_LEAK, "REP004")
        assert [f.rule for f in findings] == ["REP004"]
        assert "EvaluationService" in findings[0].message

    def test_service_closed_in_finally_passes(self, tmp_path):
        assert (
            run_rule(tmp_path, CLOSE_GOOD_SERVICE_FINALLY, "REP004")
            == ()
        )

    @pytest.mark.parametrize(
        "source",
        [
            CLOSE_GOOD_CLOSING,
            CLOSE_GOOD_FINALLY,
            CLOSE_GOOD_RETURN_TRANSFER,
            CLOSE_GOOD_ATTR_BINDING,
        ],
        ids=["closing", "finally", "return-transfer", "attr-binding"],
    )
    def test_ownership_transfers_pass(self, tmp_path, source):
        assert run_rule(tmp_path, source, "REP004") == ()


# ---------------------------------------------------------------------------
# REP005 registry-hygiene


HYGIENE_BAD_MISSING_KW = """
    from repro.eval.artifacts import artifact

    @artifact("fig99")
    def fig99(ctx):
        return None
"""

HYGIENE_BAD_EMPTY_VALUE = """
    from repro.eval.artifacts import artifact

    @artifact("fig99", title="")
    def fig99(ctx):
        return None
"""

HYGIENE_BAD_DUPLICATE = """
    from repro.eval.artifacts import artifact

    @artifact("fig99", title="First")
    def first(ctx):
        return None

    @artifact("fig99", title="Second")
    def second(ctx):
        return None
"""

HYGIENE_GOOD = """
    from repro.eval.artifacts import artifact

    @artifact("fig99", title="Figure 99")
    def fig99(ctx):
        return None
"""


class TestRegistryHygiene:
    @pytest.mark.parametrize(
        "source",
        [
            HYGIENE_BAD_MISSING_KW,
            HYGIENE_BAD_EMPTY_VALUE,
            HYGIENE_BAD_DUPLICATE,
        ],
        ids=["missing-title", "empty-title", "duplicate-name"],
    )
    def test_violations_flagged(self, tmp_path, source):
        findings = run_rule(tmp_path, source, "REP005")
        assert findings and all(f.rule == "REP005" for f in findings)

    def test_complete_registration_passes(self, tmp_path):
        assert run_rule(tmp_path, HYGIENE_GOOD, "REP005") == ()


# ---------------------------------------------------------------------------
# REP006 error-taxonomy


class TestErrorTaxonomy:
    def test_bare_assert_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path, "def f(x):\n    assert x > 0\n    return x\n",
            "REP006",
        )
        assert [f.rule for f in findings] == ["REP006"]

    def test_raise_passes(self, tmp_path):
        source = """
            def f(x):
                if x <= 0:
                    raise ValueError("x must be positive")
                return x
        """
        assert run_rule(tmp_path, source, "REP006") == ()

    def test_inline_suppression(self, tmp_path):
        source = (
            "def f(x):\n"
            "    assert x > 0  # repro-lint: ignore[REP006]\n"
        )
        assert run_rule(tmp_path, source, "REP006") == ()

    def test_wildcard_suppression(self, tmp_path):
        source = (
            "def f(x):\n"
            "    assert x > 0  # repro-lint: ignore[*]\n"
        )
        assert run_rule(tmp_path, source, "REP006") == ()


# ---------------------------------------------------------------------------
# REP000 syntax errors, runner, registry machinery


class TestRunner:
    def test_unparseable_file_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = lint_paths([path])
        assert [f.rule for f in result.findings] == ["REP000"]

    def test_unknown_rule_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(LintError):
            lint_paths([tmp_path], rules=["NOPE999"])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintUsageError):
            lint_paths(["no/such/dir"])

    def test_excluding_everything_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path], exclude=list(RULES.ids()))

    def test_src_tree_is_clean_against_near_empty_baseline(self):
        baseline = load_baseline("lint-baseline.json")
        result = lint_paths(["src"], baseline=baseline)
        assert result.clean
        assert result.files > 50


class TestRegistry:
    def _info(self, rule_id="REP900", name="demo"):
        registry = RuleRegistry()
        return rule(
            name, id=rule_id, category="demo", registry=registry
        )(lambda ctx: [])

    def test_decorator_returns_info(self):
        info = self._info()
        assert (info.id, info.name) == ("REP900", "demo")

    def test_duplicate_id_raises(self):
        registry = RuleRegistry()
        registry.register(self._info())
        with pytest.raises(LintError, match="already registered"):
            registry.register(self._info(name="other"))

    def test_skip_keeps_incumbent(self):
        registry = RuleRegistry()
        first = registry.register(self._info(name="first"))
        kept = registry.register(
            self._info(name="second"), on_collision="skip"
        )
        assert kept is first
        assert registry.resolve("REP900").name == "first"

    def test_replace_takes_newcomer(self):
        registry = RuleRegistry()
        registry.register(self._info(name="first"))
        registry.register(
            self._info(name="second"), on_collision="replace"
        )
        assert registry.resolve("REP900").name == "second"

    def test_malformed_id_rejected(self):
        with pytest.raises(LintError, match="rule id"):
            RuleRegistry().register(self._info(rule_id="rep1"))

    def test_builtins_present(self):
        expected = {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        }
        assert expected <= set(RULES.ids())


# ---------------------------------------------------------------------------
# Baseline round-trips


class TestBaseline:
    def test_roundtrip_suppresses_exact_findings(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(x):\n    assert x\n")
        first = lint_paths([target])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        second = lint_paths(
            [target], baseline=load_baseline(baseline_path)
        )
        assert second.clean
        assert second.baselined == 1

    def test_baseline_is_content_keyed(self, tmp_path):
        # Pure line drift (a comment added above) must not invalidate
        # the baseline entry.
        target = tmp_path / "bad.py"
        target.write_text("def f(x):\n    assert x\n")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([target]).findings)
        target.write_text("# shifted\ndef f(x):\n    assert x\n")
        result = lint_paths(
            [target], baseline=load_baseline(baseline_path)
        )
        assert result.clean

    def test_new_findings_escape_the_baseline(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(x):\n    assert x\n")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([target]).findings)
        target.write_text(
            "def f(x):\n    assert x\n\ndef g(y):\n    assert y\n"
        )
        result = lint_paths(
            [target], baseline=load_baseline(baseline_path)
        )
        # f's assert is baselined; g's identical-rule finding is new.
        assert len(result.findings) == 1
        assert result.baselined == 1

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(LintUsageError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# Plugins


PLUGIN_TODO = '''
from repro.analysis import Finding, rule


@rule("no-todo", id="REP900", category="style")
def check_no_todo(ctx):
    """Flag TODO markers."""
    for index, line in enumerate(ctx.lines, start=1):
        if "TODO" in line:
            yield Finding(
                rule="REP900", path=ctx.display, line=index,
                column=1, message="TODO marker", snippet=line.strip(),
            )
'''

PLUGIN_COLLIDING = '''
from repro.analysis import rule


@rule("quiet-taxonomy", id="REP006", category="errors")
def check_nothing(ctx):
    """Replacement REP006 that never fires."""
    return []
'''


class TestPlugins:
    def test_plugin_rule_fires(self, tmp_path):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "todo.py").write_text(PLUGIN_TODO)
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # TODO later\n")
        registry = RULES.clone()
        from repro.analysis import load_plugins

        load_plugins(plugins, registry=registry)
        result = lint_paths(
            [target], rules=["REP900"], registry=registry
        )
        assert [f.rule for f in result.findings] == ["REP900"]

    def test_plugin_load_does_not_touch_global_registry(self, tmp_path):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "todo.py").write_text(PLUGIN_TODO)
        from repro.analysis import load_plugins

        load_plugins(plugins, registry=RULES.clone())
        assert "REP900" not in RULES

    def test_collision_raise_mode(self, tmp_path):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "collide.py").write_text(PLUGIN_COLLIDING)
        from repro.analysis import load_plugins

        with pytest.raises(LintError):
            load_plugins(plugins, registry=RULES.clone())

    @pytest.mark.parametrize(
        "mode, expected_name",
        [("skip", "error-taxonomy"), ("replace", "quiet-taxonomy")],
    )
    def test_collision_skip_and_replace(
        self, tmp_path, mode, expected_name
    ):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "collide.py").write_text(PLUGIN_COLLIDING)
        registry = RULES.clone()
        from repro.analysis import load_plugins

        load_plugins(plugins, registry=registry, on_collision=mode)
        assert registry.resolve("REP006").name == expected_name

    def test_missing_plugin_dir_is_usage_error(self, tmp_path):
        from repro.analysis import load_plugins

        with pytest.raises(LintUsageError):
            load_plugins(tmp_path / "absent")


# ---------------------------------------------------------------------------
# CLI


class TestLintCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP006" in out and "bad.py" in out

    def test_unknown_path_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path / "absent")])
        assert excinfo.value.code == 2

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path), "--rules", "NOPE999"])
        assert excinfo.value.code == 2

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"REP006": 1}
        assert payload["findings"][0]["rule"] == "REP006"
        assert payload["schema_version"] == 1

    def test_rule_selection(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x):\n    assert x\n")
        assert (
            main(["lint", str(tmp_path), "--rules", "REP001,REP002"])
            == 0
        )
        assert (
            main(
                ["lint", str(tmp_path), "--exclude-rules",
                 "error-taxonomy"]
            )
            == 0
        )

    def test_baseline_workflow(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x):\n    assert x\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                ["lint", str(tmp_path), "--baseline", str(baseline),
                 "--write-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            main(["lint", str(tmp_path), "--baseline", str(baseline)])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_write_baseline_requires_destination(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path), "--write-baseline"])
        assert excinfo.value.code == 2

    def test_plugins_flag(self, tmp_path, capsys):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "todo.py").write_text(PLUGIN_TODO)
        target = tmp_path / "src"
        target.mkdir()
        (target / "mod.py").write_text("x = 1  # TODO later\n")
        assert (
            main(["lint", str(target), "--plugins", str(plugins)]) == 1
        )
        assert "REP900" in capsys.readouterr().out

    def test_plugin_collision_exits_two(self, tmp_path, capsys):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "collide.py").write_text(PLUGIN_COLLIDING)
        target = tmp_path / "src"
        target.mkdir()
        (target / "ok.py").write_text("x = 1\n")
        assert (
            main(["lint", str(target), "--plugins", str(plugins)]) == 2
        )

    def test_plugin_collision_replace_mode(self, tmp_path, capsys):
        plugins = tmp_path / "plugins"
        plugins.mkdir()
        (plugins / "collide.py").write_text(PLUGIN_COLLIDING)
        target = tmp_path / "src"
        target.mkdir()
        (target / "bad.py").write_text("def f(x):\n    assert x\n")
        assert (
            main(
                ["lint", str(target), "--plugins", str(plugins),
                 "--on-collision", "replace"]
            )
            == 0
        )

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP006"):
            assert rule_id in out


# ---------------------------------------------------------------------------
# Regression coverage for the violations the linter surfaced


class TestSurfacedViolationFixes:
    def test_existing_probe_rejects_unknown_table(self):
        from repro.eval.queue import JobStore

        with pytest.raises(QueueError, match="existence probe"):
            JobStore._existing(None, "pragma", ["digest"])

    def test_run_plan_without_finish_event_raises(self):
        from repro.eval.artifacts import RunPlan

        class StalledPlan(RunPlan):
            def events(self):
                return iter(())

        plan = RunPlan.from_names([])
        stalled = StalledPlan(specs=plan.specs, ctx=plan.ctx)
        with pytest.raises(EvaluationError, match="RunFinished"):
            stalled.run()

    def test_sweep_shapes_closes_engine_it_creates(self, monkeypatch):
        from repro.eval import shapes as shapes_mod

        closed = []

        class TrackingEngine(shapes_mod.SweepEngine):
            def close(self):
                closed.append(self)
                super().close()

        monkeypatch.setattr(shapes_mod, "SweepEngine", TrackingEngine)
        shapes_mod.sweep_shapes(shapes=[(64, 64, 64)])
        assert len(closed) == 1

    def test_sweep_shapes_leaves_borrowed_engine_open(self):
        from repro.eval import shapes as shapes_mod
        from repro.eval.engine import SweepEngine

        engine = SweepEngine(None)
        try:
            shapes_mod.sweep_shapes(shapes=[(64, 64, 64)], engine=engine)
            # Still usable: close was NOT called on the borrowed engine.
            shapes_mod.sweep_shapes(shapes=[(64, 64, 64)], engine=engine)
        finally:
            engine.close()

    def test_sweep_sensitivity_closes_every_engine(self, monkeypatch):
        from repro.eval import sensitivity as sens_mod

        created, closed = [], []

        class TrackingEngine(sens_mod.SweepEngine):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

            def close(self):
                closed.append(self)
                super().close()

        monkeypatch.setattr(sens_mod, "SweepEngine", TrackingEngine)
        sens_mod.sweep_sensitivity(
            scales=(1.0,),
            constants=sens_mod.PERTURBABLE[:2],
            size=64,
        )
        assert len(created) == 2
        assert created == closed

    def test_lock_guarded_manifests_cover_shared_state(self):
        from repro.eval.cache import PersistentCache
        from repro.eval.engine import SweepEngine
        from repro.eval.queue import JobStore

        assert "_entries" in PersistentCache._lock_guarded
        assert "_conn" in JobStore._lock_guarded
        assert "_cache" in SweepEngine._lock_guarded
