"""Tests for the Accelergy-style energy/area estimator."""

import pytest

from repro.arch import table4, area_breakdown
from repro.arch.components import Component, ComponentClass, mac, mux, sram, regfile
from repro.arch.spec import ArchitectureSpec
from repro.energy import Estimator, default_table
from repro.errors import ArchitectureError


@pytest.fixture(scope="module")
def est():
    return Estimator()


class TestMemoryPlugin:
    def test_sram_reference_energy(self, est):
        glb = sram("glb", default_table().sram_ref_bytes)
        assert est.energy_pj(glb, "read") == pytest.approx(
            default_table().sram_read_pj
        )

    def test_sram_sqrt_scaling(self, est):
        small = sram("s", default_table().sram_ref_bytes // 4)
        big = sram("b", default_table().sram_ref_bytes)
        assert est.energy_pj(small, "read") == pytest.approx(
            est.energy_pj(big, "read") / 2
        )

    def test_write_above_read(self, est):
        glb = sram("glb", 256 * 1024)
        assert est.energy_pj(glb, "write") > est.energy_pj(glb, "read")

    def test_regfile_cheaper_than_glb(self, est):
        rf = regfile("rf", 2048)
        glb = sram("glb", 256 * 1024)
        assert est.energy_pj(rf, "read") < est.energy_pj(glb, "read")

    def test_unknown_action_raises(self, est):
        with pytest.raises(ArchitectureError):
            est.energy_pj(sram("glb", 1024), "flush")


class TestLogicPlugin:
    def test_mac_actions(self, est):
        macs = mac("macs", 1)
        assert est.energy_pj(macs, "mac") > est.energy_pj(
            macs, "gated_mac"
        )

    def test_gating_cheap(self, est):
        """Gating is a trivial tax (an AND gate, Sec. 5.1)."""
        macs = mac("macs", 1)
        ratio = est.energy_pj(macs, "gated_mac") / est.energy_pj(
            macs, "mac"
        )
        assert ratio < 0.1

    def test_mux_energy_scales_with_inputs(self, est):
        narrow = mux("n", 4, 16)
        wide = mux("w", 16, 16)
        assert est.energy_pj(wide, "select") == pytest.approx(
            4 * est.energy_pj(narrow, "select")
        )

    def test_mux_energy_scales_with_width(self, est):
        data = mux("d", 4, 16)
        addr = mux("a", 4, 4)
        assert est.energy_pj(addr, "select") == pytest.approx(
            est.energy_pj(data, "select") / 4
        )

    def test_intersection_expensive(self, est):
        unit = Component("ix", ComponentClass.INTERSECTION, 1)
        assert est.energy_pj(unit, "intersect") > est.energy_pj(
            mux("m", 4, 16), "select"
        )


class TestDram:
    def test_dram_dominates_sram(self, est):
        dram = Component("dram", ComponentClass.DRAM, 1)
        glb = sram("glb", 256 * 1024)
        assert est.energy_pj(dram, "read") > 5 * est.energy_pj(glb, "read")

    def test_dram_has_no_area(self, est):
        dram = Component("dram", ComponentClass.DRAM, 1)
        assert est.area_um2(dram) == 0.0


class TestArea:
    def test_area_scales_with_count(self, est):
        one = mac("one", 1)
        many = mac("many", 100)
        assert est.area_um2(many) == pytest.approx(100 * est.area_um2(one))

    def test_architecture_area_positive(self, est):
        for resources in table4():
            assert est.architecture_area_um2(resources.arch) > 0

    def test_highlight_saf_share_near_paper(self, est):
        """Fig. 16(b): SAFs are ~5.7% of HighLight's area."""
        areas = {
            res.arch.name: area_breakdown(res, est) for res in table4()
        }
        assert 0.04 <= areas["HighLight"].saf_fraction <= 0.07

    def test_dense_design_has_no_saf_area(self, est):
        areas = {
            res.arch.name: area_breakdown(res, est) for res in table4()
        }
        assert areas["TC"].fraction("saf") == 0.0

    def test_unstructured_design_pays_most_saf_area(self, est):
        areas = {
            res.arch.name: area_breakdown(res, est) for res in table4()
        }
        assert areas["DSTC"].saf_fraction > areas["HighLight"].saf_fraction
        assert areas["S2TA"].saf_fraction > areas["HighLight"].saf_fraction

    def test_total_mm2_reasonable(self, est):
        for resources in table4():
            area = area_breakdown(resources, est)
            assert 1.0 < area.total_mm2 < 10.0


class TestEstimatorPlumbing:
    def test_caching_stable(self, est):
        glb = sram("glb", 256 * 1024)
        assert est.energy_pj(glb, "read") == est.energy_pj(glb, "read")

    def test_unknown_class_raises(self):
        estimator = Estimator(plugins=[])
        with pytest.raises(ArchitectureError):
            estimator.energy_pj(mac("m", 1), "mac")
