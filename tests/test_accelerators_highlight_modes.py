"""Tests for HighLight's operand-B mode selection (dense vs compressed)."""

import pytest

from repro.accelerators import HighLight
from repro.model.workload import (
    MatmulWorkload,
    hss_operand,
    unstructured_operand,
)
from repro.sparsity import HSSPattern


def workload(b_sparsity, size=512):
    return MatmulWorkload(
        m=size, k=size, n=size,
        a=hss_operand(HSSPattern.from_ratios((2, 4), (4, 4))),
        b=unstructured_operand(b_sparsity),
    )


class TestBModeSelection:
    def test_compression_chosen_for_sparse_b(self, estimator):
        """At 60% B sparsity the compressed mode stores/moves less."""
        design = HighLight()
        chosen = design.evaluate(workload(0.6), estimator)
        dense_mode = design._evaluate(workload(0.6), estimator, False)
        compressed = design._evaluate(workload(0.6), estimator, True)
        assert compressed.edp < dense_mode.edp
        assert chosen.edp == compressed.edp

    def test_dense_mode_chosen_for_near_dense_b(self, estimator):
        """At 10% B sparsity the metadata + compression-unit overhead
        outweighs the savings: the hardware streams B uncompressed."""
        design = HighLight()
        chosen = design.evaluate(workload(0.1), estimator)
        dense_mode = design._evaluate(workload(0.1), estimator, False)
        compressed = design._evaluate(workload(0.1), estimator, True)
        assert dense_mode.edp < compressed.edp
        assert chosen.edp == dense_mode.edp

    def test_gating_active_in_both_modes(self, estimator):
        """Zero detection at the MACs is independent of compression."""
        design = HighLight()
        dense_mode = design._evaluate(workload(0.6), estimator, False)
        no_sparsity = design._evaluate(workload(0.0), estimator, False)
        assert (
            dense_mode.energy_breakdown_pj["macs"]
            < no_sparsity.energy_breakdown_pj["macs"]
        )

    def test_cycles_identical_across_modes(self, estimator):
        """B handling never changes the schedule (gating only)."""
        design = HighLight()
        dense_mode = design._evaluate(workload(0.6), estimator, False)
        compressed = design._evaluate(workload(0.6), estimator, True)
        assert dense_mode.cycles == pytest.approx(compressed.cycles)

    def test_dense_b_single_variant(self, estimator):
        design = HighLight()
        metrics = design.evaluate(workload(0.0), estimator)
        assert metrics.energy_pj > 0
