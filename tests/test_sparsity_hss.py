"""Tests for HSSPattern and the Fig. 6 design-space math."""

from fractions import Fraction

import pytest

from repro.errors import PatternError
from repro.sparsity import GH, GHRange, HSSPattern
from repro.sparsity.hss import (
    compose_densities,
    fig6_designs,
    mux_cost,
    supported_degrees,
)


class TestHSSPattern:
    def test_paper_example_sparsity(self):
        """Fig. 5: C1(3:4)->C0(2:4) has sparsity 1 - 3/4 * 2/4 = 0.625."""
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        assert pattern.sparsity == pytest.approx(0.625)

    def test_density_fraction_exact(self):
        pattern = HSSPattern.from_ratios((2, 3), (2, 3))
        assert pattern.density_fraction == Fraction(4, 9)

    def test_single_rank(self):
        assert HSSPattern.from_ratios((2, 4)).num_ranks == 1

    def test_block_sizes(self):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        assert pattern.block_sizes() == (4, 16)

    def test_max_speedup(self):
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        assert pattern.max_speedup() == pytest.approx(4.0)

    def test_succinct_order(self):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        assert pattern.succinct() == "C1(3:4)->C0(2:4)"

    def test_rank_accessor(self):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        assert pattern.rank(0) == GH(2, 4)
        assert pattern.rank(1) == GH(3, 4)

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            HSSPattern(())

    def test_rejects_non_gh_rank(self):
        with pytest.raises(PatternError):
            HSSPattern((GHRange(2, 2, 4),))


class TestComposeDensities:
    def test_fig1_example(self):
        """Composing a 2-set with a 3-set yields six degrees (Fig. 1)."""
        s0 = [Fraction(1), Fraction(1, 2)]
        s1 = [Fraction(1), Fraction(2, 3), Fraction(2, 5)]
        assert len(compose_densities(s0, s1)) == 6

    def test_descending_order(self):
        result = compose_densities([Fraction(1), Fraction(1, 2)])
        assert result == sorted(result, reverse=True)

    def test_deduplicates(self):
        # 1/2 x 1 == 1 x 1/2
        result = compose_densities(
            [Fraction(1), Fraction(1, 2)], [Fraction(1), Fraction(1, 2)]
        )
        assert len(result) == 3

    def test_rejects_empty_set(self):
        with pytest.raises(PatternError):
            compose_densities([])


class TestFig6Designs:
    def test_both_support_15_degrees(self):
        design_s, design_ss = fig6_designs()
        assert len(supported_degrees(design_s)) == 15
        assert len(supported_degrees(design_ss)) == 15

    def test_degree_range_covers_87_5(self):
        design_s, design_ss = fig6_designs()
        for design in (design_s, design_ss):
            degrees = supported_degrees(design)
            assert max(degrees) == 1
            assert min(degrees) == Fraction(1, 8)

    def test_ss_hmax_smaller(self):
        design_s, design_ss = fig6_designs()
        assert design_s[0].h_max == 16
        assert max(f.h_max for f in design_ss) == 8

    def test_mux_overhead_ratio_above_2(self):
        """Paper: SS introduces > 2x less muxing overhead than S."""
        design_s, design_ss = fig6_designs()
        assert mux_cost(design_s) / mux_cost(design_ss) > 2.0

    def test_mux_cost_linear_in_hmax(self):
        """Sec. 5.2: tax grows ~linearly with Hmax at fixed G."""
        cost_8 = mux_cost([GHRange(2, 2, 8)])
        cost_16 = mux_cost([GHRange(2, 2, 16)])
        assert cost_16 == pytest.approx(2 * cost_8)

    def test_mux_cost_rejects_empty(self):
        with pytest.raises(PatternError):
            mux_cost([])

    def test_supported_degrees_rejects_empty(self):
        with pytest.raises(PatternError):
            supported_degrees([])
