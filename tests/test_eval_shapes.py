"""Tests for the workload-shape robustness sweep."""

import pytest

from repro.eval.shapes import (
    SHAPE_GRID,
    ShapeOutcome,
    summarize_shapes,
    sweep_shapes,
)


@pytest.fixture(scope="module")
def outcomes(estimator):
    # A fast subset for unit testing; the full grid runs in benchmarks.
    return sweep_shapes(
        shapes=((256, 256, 256), (1024, 1024, 128)),
        estimator=estimator,
        parity_tolerance=0.10,
    )


class TestSweep:
    def test_one_outcome_per_shape(self, outcomes):
        assert len(outcomes) == 2

    def test_orderings_hold(self, outcomes):
        for outcome in outcomes:
            assert outcome.highlight_best
            assert outcome.dense_parity

    def test_sparse_gains_substantial(self, outcomes):
        for outcome in outcomes:
            assert outcome.sparse_gain_vs_dense > 5.0

    def test_grid_includes_paper_cube(self):
        assert (1024, 1024, 1024) in SHAPE_GRID

    def test_summary_lists_shapes(self, outcomes):
        text = summarize_shapes(outcomes)
        assert "256x256x256" in text
        assert "gain" in text

    def test_outcome_fields(self, outcomes):
        assert isinstance(outcomes[0], ShapeOutcome)
        assert len(outcomes[0].shape) == 3
