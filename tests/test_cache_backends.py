"""Cross-backend cache suite: JSON and SQLite stores must agree.

Every semantic test here is parametrized over both storage backends —
get/put/flush/merge/stats behavior, cached-``None`` entries, concurrent
two-writer flushes — plus the backend-specific paths: ``auto``
resolution, JSON-to-SQLite migration, corrupt-database recovery, and
the acceptance shape (``repro all --cache-backend sqlite`` twice
performs zero evaluations on the warm run).
"""

import json
import sqlite3

import pytest

from repro.energy import Estimator
from repro.energy.tables import EnergyAreaTable
from repro.errors import CacheError
from repro.eval import cache as cache_mod
from repro.eval.artifacts import ARTIFACTS, compute_artifacts
from repro.eval.cache import (
    CACHE_SCHEMA_VERSION,
    MISS,
    JsonCacheStore,
    PersistentCache,
    SqliteCacheStore,
    cache_stats,
    clear_cache,
    estimator_fingerprint,
    merge_cache_dirs,
    migrate_cache_dir,
    resolve_backend,
)
from repro.eval.engine import EngineContext, SweepEngine
from repro.model.workload import synthetic_workload

BACKENDS = ("json", "sqlite")

SUFFIX = {"json": ".json", "sqlite": ".db"}


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def workload():
    return synthetic_workload(0.5, 0.25, size=128)


@pytest.fixture
def metrics(estimator, workload):
    engine = SweepEngine(estimator)
    (result,) = engine.evaluate_workloads([("HighLight", workload)])
    return result


def _shard(directory, estimator, pairs, backend="json"):
    cache = PersistentCache.for_estimator(
        directory, estimator, backend=backend
    )
    engine = SweepEngine(estimator, cache=cache)
    engine.evaluate_workloads(pairs)
    engine.close()
    return cache


class TestStoreSemantics:
    def test_backend_and_suffix_resolved(self, tmp_path, estimator,
                                         backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert cache.backend == backend
        assert cache.path.suffix == SUFFIX[backend]

    def test_round_trip(self, tmp_path, estimator, workload, metrics,
                        backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.flush()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert len(reloaded) == 1
        cached = reloaded.get("HighLight", workload.key())
        assert cached is not MISS
        assert cached.edp == pytest.approx(metrics.edp)
        assert cached.cycles == pytest.approx(metrics.cycles)

    def test_none_is_a_first_class_entry(self, tmp_path, estimator,
                                         workload, backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("S2TA", workload.key(), None)
        cache.flush()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert reloaded.get("S2TA", workload.key()) is None
        assert reloaded.get("S2TA", ("other",)) is MISS

    def test_two_concurrent_writers_union_on_disk(self, tmp_path,
                                                  estimator, workload,
                                                  backend):
        first = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        second = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        first.put("TC", workload.key(), None)
        first.flush()
        second.put("STC", workload.key(), None)
        second.flush()
        first.close()
        second.close()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert reloaded.get("TC", workload.key()) is None
        assert reloaded.get("STC", workload.key()) is None

    def test_flush_without_dirty_entries_writes_nothing(self, tmp_path,
                                                        estimator,
                                                        backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.flush()
        assert not cache.path.exists()

    def test_different_fingerprints_are_isolated(self, tmp_path,
                                                 workload, backend):
        default = Estimator()
        tweaked = Estimator(table=EnergyAreaTable(mac_pj=9.9))
        cache = PersistentCache.for_estimator(
            tmp_path, default, backend=backend
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        other = PersistentCache.for_estimator(
            tmp_path, tweaked, backend=backend
        )
        assert other.get("TC", workload.key()) is MISS

    def test_closed_cache_stays_usable(self, tmp_path, estimator,
                                       workload, backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("TC", workload.key(), None)
        cache.close()
        cache.put("STC", workload.key(), None)
        cache.flush()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert len(reloaded) == 2

    def test_backends_agree_on_cached_values(self, tmp_path, estimator,
                                             workload, metrics):
        for name in BACKENDS:
            cache = PersistentCache.for_estimator(
                tmp_path / name, estimator, backend=name
            )
            cache.put("HighLight", workload.key(), metrics)
            cache.put("S2TA", workload.key(), None)
            cache.flush()
        via_json = PersistentCache.for_estimator(
            tmp_path / "json", estimator, backend="json"
        )
        via_sqlite = PersistentCache.for_estimator(
            tmp_path / "sqlite", estimator, backend="sqlite"
        )
        a = via_json.get("HighLight", workload.key())
        b = via_sqlite.get("HighLight", workload.key())
        assert a.edp == pytest.approx(b.edp)
        assert a.energy_pj == pytest.approx(b.energy_pj)
        assert via_json.get("S2TA", workload.key()) is None
        assert via_sqlite.get("S2TA", workload.key()) is None


class TestAutoResolution:
    def test_fresh_directory_defaults_to_json(self, tmp_path):
        assert resolve_backend(tmp_path, "0" * 16, "auto") == "json"

    def test_existing_db_wins(self, tmp_path, estimator, workload):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        auto = PersistentCache.for_estimator(tmp_path, estimator)
        assert auto.backend == "sqlite"
        assert auto.get("TC", workload.key()) is None

    def test_large_json_upgrades_to_sqlite(self, tmp_path, estimator,
                                           workload, monkeypatch):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        monkeypatch.setattr(cache_mod, "AUTO_SQLITE_SIZE_BYTES", 1)
        auto = PersistentCache.for_estimator(tmp_path, estimator)
        assert auto.backend == "sqlite"
        # The legacy JSON entries seed the upgraded store, so the
        # switchover never goes cold ...
        assert auto.get("TC", workload.key()) is None
        auto.close()
        # ... the import is durable, and the JSON file is retired so
        # stats never double-count and no run re-parses it.
        assert not cache.path.exists()
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 1
        again = PersistentCache.for_estimator(tmp_path, estimator)
        assert again.backend == "sqlite"
        assert again.get("TC", workload.key()) is None

    def test_json_entries_beside_a_database_are_folded_in(
        self, tmp_path, estimator
    ):
        """Mixed-backend usage must not shadow entries: a json-backend
        writer landing entries next to an existing database gets them
        imported (database rows win) and the JSON retired, so stats
        never double-count."""
        a = synthetic_workload(0.5, 0.0, size=128)
        b = synthetic_workload(0.75, 0.0, size=128)
        sq = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        sq.put("TC", a.key(), None)
        sq.flush()
        sq.close()
        js = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        js.put("TC", b.key(), None)
        js.flush()
        auto = PersistentCache.for_estimator(tmp_path, estimator)
        assert auto.backend == "sqlite"
        assert auto.get("TC", a.key()) is None
        assert auto.get("TC", b.key()) is None
        auto.close()
        assert not js.path.exists()
        stats = cache_stats(tmp_path)
        assert len(stats["files"]) == 1
        assert stats["total_entries"] == 2

    def test_unknown_backend_rejected(self, tmp_path, estimator):
        with pytest.raises(CacheError, match="unknown cache backend"):
            PersistentCache.for_estimator(
                tmp_path, estimator, backend="shelve"
            )
        with pytest.raises(CacheError, match="unknown cache backend"):
            merge_cache_dirs([tmp_path], tmp_path, backend="shelve")


class TestMaintenanceAcrossBackends:
    def test_stats_and_clear(self, tmp_path, estimator, workload,
                             backend):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 1
        assert len(stats["files"]) == 1
        assert stats["files"][0]["backend"] == backend
        assert clear_cache(tmp_path) == 1
        assert cache_stats(tmp_path)["total_entries"] == 0

    def test_stats_and_clear_cover_rotated_databases(self, tmp_path,
                                                     estimator,
                                                     workload):
        """Databases set aside by flush recovery occupy real space:
        stats must show them and clear must reclaim them."""
        fingerprint = estimator_fingerprint(estimator)
        (tmp_path / f"{fingerprint}.db").write_text("garbage")
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        rotated = tmp_path / f"{fingerprint}.db.corrupt"
        assert rotated.exists()
        stats = cache_stats(tmp_path)
        assert rotated.name in [f["file"] for f in stats["files"]]
        by_name = {f["file"]: f for f in stats["files"]}
        assert by_name[rotated.name]["backend"] == "rotated"
        assert stats["total_entries"] == 1  # usable entries only
        assert clear_cache(tmp_path) == 1
        assert not rotated.exists()
        assert not any(tmp_path.iterdir())

    def test_clear_removes_wal_sidecars(self, tmp_path, estimator,
                                        workload):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        # The connection is still open, so the WAL sidecars exist.
        wal = cache.path.with_name(cache.path.name + "-wal")
        assert wal.exists()
        assert clear_cache(tmp_path) == 1
        assert not wal.exists()
        assert not any(tmp_path.iterdir())

    def test_special_characters_in_cache_dir(self, tmp_path, estimator,
                                             workload):
        """Read-only SQLite opens go through a percent-encoded URI, so
        cache directories containing '#', '%', or spaces still work
        for stats/merge (the write path uses plain connects)."""
        directory = tmp_path / "run #1, 50% sparse"
        _shard(directory, estimator, [("TC", workload)], "sqlite")
        stats = cache_stats(directory)
        assert stats["total_entries"] == 1
        summary = merge_cache_dirs([directory], tmp_path / "out")
        assert summary["total_entries"] == 1

    def test_stats_mixed_directory(self, tmp_path, workload):
        default = Estimator()
        tweaked = Estimator(table=EnergyAreaTable(mac_pj=9.9))
        for est, backend in ((default, "json"), (tweaked, "sqlite")):
            cache = PersistentCache.for_estimator(
                tmp_path, est, backend=backend
            )
            cache.put("TC", workload.key(), None)
            cache.flush()
            cache.close()
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 2
        assert sorted(f["backend"] for f in stats["files"]) == [
            "json", "sqlite"
        ]


class TestMergeAcrossBackends:
    def test_same_backend_shards(self, tmp_path, estimator, backend):
        a = synthetic_workload(0.5, 0.0, size=128)
        b = synthetic_workload(0.75, 0.0, size=128)
        _shard(tmp_path / "s1", estimator, [("HighLight", a)], backend)
        _shard(tmp_path / "s2", estimator, [("HighLight", b)], backend)
        summary = merge_cache_dirs(
            [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out",
            backend=backend,
        )
        assert summary["total_entries"] == 2
        assert summary["backend"] == backend
        merged = PersistentCache.for_estimator(
            tmp_path / "out", estimator
        )
        assert merged.backend == backend
        assert merged.get("HighLight", a.key()) is not MISS
        assert merged.get("HighLight", b.key()) is not MISS

    def test_mixed_format_shards(self, tmp_path, estimator):
        a = synthetic_workload(0.5, 0.0, size=128)
        b = synthetic_workload(0.75, 0.0, size=128)
        _shard(tmp_path / "s1", estimator, [("HighLight", a)], "json")
        _shard(tmp_path / "s2", estimator, [("HighLight", b)], "sqlite")
        summary = merge_cache_dirs(
            [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
        )
        assert summary["total_entries"] == 2
        merged = PersistentCache.for_estimator(
            tmp_path / "out", estimator
        )
        assert merged.get("HighLight", a.key()) is not MISS
        assert merged.get("HighLight", b.key()) is not MISS

    def test_auto_dest_keeps_existing_format(self, tmp_path, estimator,
                                             workload):
        _shard(tmp_path / "s1", estimator, [("TC", workload)], "json")
        _shard(tmp_path / "out", estimator, [("STC", workload)],
               "sqlite")
        summary = merge_cache_dirs(
            [tmp_path / "s1"], tmp_path / "out"
        )
        assert summary["backend"] == "sqlite"
        assert summary["total_entries"] == 2
        assert summary["new_entries"] == 1

    def test_merge_consolidates_dual_format_dest(self, tmp_path,
                                                 estimator, workload):
        """A dest directory holding both formats of one fingerprint
        (the auto-upgrade flow) collapses into a single file."""
        other = synthetic_workload(0.75, 0.0, size=128)
        _shard(tmp_path / "out", estimator, [("TC", workload)], "json")
        _shard(tmp_path / "out", estimator, [("STC", workload)],
               "sqlite")
        _shard(tmp_path / "s1", estimator, [("HighLight", other)],
               "json")
        summary = merge_cache_dirs(
            [tmp_path / "s1"], tmp_path / "out", backend="sqlite"
        )
        assert summary["total_entries"] >= 3
        fingerprint = estimator_fingerprint(estimator)
        assert not (tmp_path / "out" / f"{fingerprint}.json").exists()
        merged = PersistentCache.for_estimator(
            tmp_path / "out", estimator
        )
        assert merged.backend == "sqlite"
        assert merged.get("TC", workload.key()) is not MISS
        assert merged.get("STC", workload.key()) is not MISS
        assert merged.get("HighLight", other.key()) is not MISS

    def test_merge_is_idempotent(self, tmp_path, estimator, workload,
                                 backend):
        _shard(tmp_path / "s1", estimator, [("TC", workload)], backend)
        merge_cache_dirs([tmp_path / "s1"], tmp_path / "out",
                         backend=backend)
        again = merge_cache_dirs([tmp_path / "s1"], tmp_path / "out",
                                 backend=backend)
        assert again["new_entries"] == 0
        assert again["total_entries"] == 1

    def test_mismatched_fingerprints_refused(self, tmp_path, workload,
                                             backend):
        _shard(tmp_path / "s1", Estimator(), [("TC", workload)],
               backend)
        other = Estimator(table=EnergyAreaTable(mac_pj=9.9))
        _shard(tmp_path / "s2", other, [("TC", workload)], backend)
        with pytest.raises(CacheError, match="mismatched"):
            merge_cache_dirs(
                [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
            )


class TestMigrate:
    def test_json_converted_in_place(self, tmp_path, estimator,
                                     workload, metrics):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.put("S2TA", workload.key(), None)
        cache.flush()
        json_path = cache.path
        summary = migrate_cache_dir(tmp_path)
        assert len(summary["files"]) == 1
        assert summary["total_entries"] == 2
        assert not json_path.exists()
        migrated = PersistentCache.for_estimator(tmp_path, estimator)
        assert migrated.backend == "sqlite"
        cached = migrated.get("HighLight", workload.key())
        assert cached.edp == pytest.approx(metrics.edp)
        assert migrated.get("S2TA", workload.key()) is None

    def test_migrate_empty_directory_is_a_noop(self, tmp_path):
        summary = migrate_cache_dir(tmp_path)
        assert summary["files"] == []
        assert summary["total_entries"] == 0

    def test_migrate_folds_into_existing_db(self, tmp_path, estimator,
                                            workload):
        other = synthetic_workload(0.75, 0.0, size=128)
        _shard(tmp_path, estimator, [("TC", workload)], "sqlite")
        _shard(tmp_path, estimator, [("STC", other)], "json")
        migrate_cache_dir(tmp_path)
        merged = PersistentCache.for_estimator(tmp_path, estimator)
        assert merged.backend == "sqlite"
        assert merged.get("TC", workload.key()) is not MISS
        assert merged.get("STC", other.key()) is not MISS

    def test_migrate_is_loud_on_corrupt_json(self, tmp_path):
        (tmp_path / f"{'0' * 16}.json").write_text("{not json")
        with pytest.raises(CacheError, match="cannot read"):
            migrate_cache_dir(tmp_path)

    def test_migrate_refuses_unusable_destination_db(self, tmp_path,
                                                     estimator,
                                                     workload):
        """Folding JSON entries into a corrupt destination database and
        then deleting the JSON would lose them: the destination must be
        validated as loudly as the source, before anything is deleted."""
        _shard(tmp_path, estimator, [("TC", workload)], "json")
        fingerprint = estimator_fingerprint(estimator)
        json_path = tmp_path / f"{fingerprint}.json"
        (tmp_path / f"{fingerprint}.db").write_text("not a database")
        with pytest.raises(CacheError, match="cannot read"):
            migrate_cache_dir(tmp_path)
        assert json_path.exists()  # nothing deleted


class TestRawValidation:
    """The loud merge/migrate readers must refuse unidentified files
    (a missing fingerprint field used to pass the mismatch check)."""

    def test_json_missing_fingerprint_field_refused(self, tmp_path):
        shard = tmp_path / "s1"
        shard.mkdir()
        (shard / f"{'0' * 16}.json").write_text(json.dumps({
            "schema_version": CACHE_SCHEMA_VERSION,
            "entries": {},
        }))
        with pytest.raises(CacheError, match="missing the fingerprint"):
            merge_cache_dirs([shard], tmp_path / "out")

    def test_sqlite_missing_fingerprint_field_refused(self, tmp_path):
        shard = tmp_path / "s1"
        shard.mkdir()
        path = shard / f"{'0' * 16}.db"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE entries (digest TEXT PRIMARY KEY, "
            "metrics TEXT)"
        )
        conn.execute(
            "INSERT INTO meta VALUES ('schema_version', ?)",
            (str(CACHE_SCHEMA_VERSION),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(CacheError, match="missing the fingerprint"):
            merge_cache_dirs([shard], tmp_path / "out")

    def test_wrong_fingerprint_still_refused(self, tmp_path):
        shard = tmp_path / "s1"
        shard.mkdir()
        (shard / f"{'0' * 16}.json").write_text(json.dumps({
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": "f" * 16,
            "entries": {},
        }))
        with pytest.raises(CacheError, match="records fingerprint"):
            merge_cache_dirs([shard], tmp_path / "out")

    def test_corrupt_sqlite_source_is_loud(self, tmp_path):
        shard = tmp_path / "s1"
        shard.mkdir()
        (shard / f"{'0' * 16}.db").write_text("not a database")
        with pytest.raises(CacheError, match="cannot read"):
            merge_cache_dirs([shard], tmp_path / "out")


class TestCorruptionRecovery:
    def test_corrupt_db_reads_as_empty(self, tmp_path, estimator):
        fingerprint = estimator_fingerprint(estimator)
        (tmp_path / f"{fingerprint}.db").write_text("garbage")
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert len(cache) == 0

    def test_flush_recovers_from_corrupt_db(self, tmp_path, estimator,
                                            workload):
        """Parity with the JSON store, where a torn file is simply
        overwritten on the next flush: a corrupt database is set aside
        and rebuilt rather than crashing the run."""
        fingerprint = estimator_fingerprint(estimator)
        (tmp_path / f"{fingerprint}.db").write_text("garbage")
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert reloaded.get("TC", workload.key()) is None
        assert (tmp_path / f"{fingerprint}.db.corrupt").exists()

    def test_transient_errors_never_rotate_the_db(self, tmp_path,
                                                  estimator, workload,
                                                  monkeypatch):
        """Lock contention or a full disk is not corruption: the
        database (possibly held by a concurrent writer) must stay in
        place and the error must propagate."""
        from repro.eval.cache import SqliteCacheStore

        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        db_path = cache.path

        def locked(self, dirty):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(SqliteCacheStore, "_upsert", locked)
        writer = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        writer.put("STC", workload.key(), None)
        with pytest.raises(sqlite3.OperationalError):
            writer.flush()
        assert db_path.exists()
        assert not list(tmp_path.glob("*.corrupt"))

    def test_stale_schema_db_rebuilt_on_flush(self, tmp_path,
                                              estimator, workload):
        """A database from a different schema version reads as empty
        (best-effort) and is rotated aside and rebuilt at the current
        schema on flush — never silently mixed into."""
        fingerprint = estimator_fingerprint(estimator)
        path = tmp_path / f"{fingerprint}.db"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, "
            "value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE entries (digest TEXT PRIMARY KEY, "
            "metrics TEXT)"
        )
        conn.execute(
            "INSERT INTO meta VALUES ('schema_version', '9999'), "
            "('fingerprint', ?)", (fingerprint,),
        )
        conn.execute("INSERT INTO entries VALUES ('future', 'null')")
        conn.commit()
        conn.close()
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert len(cache) == 0
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        assert (tmp_path / f"{fingerprint}.db.stale").exists()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert reloaded.get("TC", workload.key()) is None
        assert len(reloaded) == 1


    def test_poisoned_row_triggers_rebuild_on_flush(self, tmp_path,
                                                    estimator,
                                                    workload):
        """One undecodable row must not leave a permanently cold,
        never-healing cache: load reads empty (best-effort) and the
        next flush rotates and rebuilds, like any other corruption."""
        fingerprint = estimator_fingerprint(estimator)
        path = tmp_path / f"{fingerprint}.db"
        from repro.eval.cache import _sqlite_connect_rw

        conn = _sqlite_connect_rw(path, fingerprint)
        conn.execute(
            "INSERT INTO entries VALUES ('aaaaaaaa', '{\"bad\": 1}')"
        )
        conn.commit()
        conn.close()
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert len(cache) == 0
        cache.put("TC", workload.key(), None)
        cache.flush()
        cache.close()
        assert (tmp_path / f"{fingerprint}.db.corrupt").exists()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        assert len(reloaded) == 1
        assert reloaded.get("TC", workload.key()) is None

    def test_cache_close_releases_store_when_flush_fails(self, tmp_path,
                                                         estimator,
                                                         workload):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("TC", workload.key(), None)
        cache.flush()
        assert cache.store._conn is not None
        cache.put("STC", workload.key(), None)

        def failing_flush(entries, dirty):
            raise sqlite3.OperationalError("disk I/O error")

        cache.store.flush = failing_flush
        with pytest.raises(sqlite3.OperationalError):
            cache.close()
        assert cache.store._conn is None


class TestEngineIntegration:
    def test_warm_engine_served_entirely_from_disk(self, tmp_path,
                                                   backend):
        grid = dict(
            designs=("TC", "HighLight"),
            a_degrees=(0.0, 0.5), b_degrees=(0.0,),
            m=128, k=128, n=128,
        )
        cold_estimator = Estimator()
        cold = SweepEngine(
            cold_estimator,
            cache=PersistentCache.for_estimator(
                tmp_path, cold_estimator, backend=backend
            ),
        )
        cold_sweep = cold.sweep(**grid)
        assert cold.stats.misses > 0
        cold.close()
        warm_estimator = Estimator()
        warm = SweepEngine(
            warm_estimator,
            cache=PersistentCache.for_estimator(
                tmp_path, warm_estimator, backend=backend
            ),
        )
        warm_sweep = warm.sweep(**grid)
        assert warm.stats.misses == 0
        assert warm.stats.disk_hits > 0
        warm.close()
        for cell in cold_sweep.cells:
            for design in grid["designs"]:
                ours = cold_sweep.cells[cell][design]
                theirs = warm_sweep.cells[cell][design]
                assert ours.edp == pytest.approx(theirs.edp)

    def test_repro_all_sqlite_warm_cache_evaluates_nothing(
        self, tmp_path
    ):
        """The acceptance shape: ``repro all --cache-dir D
        --cache-backend sqlite`` run twice performs zero evaluations
        the second time, with identical payloads."""
        cache_dir = str(tmp_path / "cache")
        cold = EngineContext.create(
            jobs=4, cache_dir=cache_dir, cache_backend="sqlite"
        )
        cold_results = compute_artifacts(list(ARTIFACTS), cold)
        assert cold.cache_backend == "sqlite"
        assert cold.engine.stats.evaluations > 0
        cold.engine.close()

        warm = EngineContext.create(
            jobs=4, cache_dir=cache_dir, cache_backend="sqlite"
        )
        warm_results = compute_artifacts(list(ARTIFACTS), warm)
        assert warm.engine.stats.evaluations == 0
        assert warm.engine.stats.misses == 0
        assert warm.engine.stats.disk_hits > 0
        warm.engine.close()
        for name in ARTIFACTS:
            assert (
                warm_results[name].to_payload()
                == cold_results[name].to_payload()
            )


class TestStoreClasses:
    def test_store_classes_exported(self):
        assert JsonCacheStore.backend == "json"
        assert SqliteCacheStore.backend == "sqlite"
        assert JsonCacheStore.suffix == ".json"
        assert SqliteCacheStore.suffix == ".db"


class TestBulkAccess:
    """get_many/put_many: the engine's bulk cache interface."""

    def test_get_many_mixes_hits_and_misses_in_order(
        self, tmp_path, estimator, workload, metrics, backend
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.put("S2TA", workload.key(), None)
        results = cache.get_many(
            [
                ("HighLight", workload.key()),
                ("TC", workload.key()),
                ("S2TA", workload.key()),
            ]
        )
        assert results[0] is metrics
        assert results[1] is MISS
        assert results[2] is None

    def test_get_many_probes_store_for_unknown_digests(
        self, tmp_path, estimator, workload, metrics, backend
    ):
        """Entries another process flushed after our load must be
        found by the bulk probe (and not re-marked dirty)."""
        writer = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        reader = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        writer.put("HighLight", workload.key(), metrics)
        writer.flush()
        if backend == "json":
            # The JSON store reads whole files at load; a live probe
            # only sees what this instance already has in memory.
            (result,) = reader.get_many([("HighLight", workload.key())])
            assert result is MISS
        else:
            (result,) = reader.get_many([("HighLight", workload.key())])
            assert result is not MISS
            assert result.cycles == metrics.cycles
            # The probed entry is already on disk: closing the reader
            # must not rewrite it.
            reader.close()

    def test_put_many_equals_repeated_put(
        self, tmp_path, estimator, workload, metrics, backend
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put_many(
            [
                ("HighLight", workload.key(), metrics),
                ("S2TA", workload.key(), None),
            ]
        )
        cache.flush()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert len(reloaded) == 2
        assert reloaded.get("S2TA", workload.key()) is None


class TestDebouncedFlush:
    def test_maybe_flush_defers_within_interval(
        self, tmp_path, estimator, workload, backend
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("TC", workload.key(), None)
        assert cache.maybe_flush(3600.0) is False
        assert not cache.path.exists()
        assert cache.maybe_flush(0.0) is True
        assert cache.path.exists()
        # Nothing dirty anymore: even an expired interval is a no-op.
        assert cache.maybe_flush(0.0) is False

    def test_close_persists_what_maybe_flush_deferred(
        self, tmp_path, estimator, workload, backend
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        cache.put("TC", workload.key(), None)
        assert cache.maybe_flush(3600.0) is False
        cache.close()
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend=backend
        )
        assert reloaded.get("TC", workload.key()) is None


class TestJsonIncrementalEncoding:
    """The JSON store caches encoded entry runs across flushes; the
    assembled file must stay byte-identical to a canonical
    ``json.dumps`` of its payload through appends and overwrites."""

    def _assert_canonical(self, cache):
        text = cache.path.read_text()
        assert text == json.dumps(json.loads(text))

    def test_file_stays_canonical_across_flushes(
        self, tmp_path, estimator, workload, metrics
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.flush()
        self._assert_canonical(cache)
        cache.put("TC", workload.key(), None)
        cache.flush()
        self._assert_canonical(cache)
        # Overwrite an entry from the first flush's encoded run.
        cache.put("HighLight", workload.key(), None)
        cache.flush()
        self._assert_canonical(cache)
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        assert reloaded.get("HighLight", workload.key()) is None
        assert reloaded.get("TC", workload.key()) is None

    def test_foreign_writes_merge_canonically(
        self, tmp_path, estimator, workload, metrics
    ):
        ours = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        theirs = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        ours.put("HighLight", workload.key(), metrics)
        ours.flush()
        theirs.put("TC", workload.key(), None)
        theirs.flush()
        ours.put("S2TA", workload.key(), None)
        ours.flush()
        self._assert_canonical(ours)
        reloaded = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        assert len(reloaded) == 3


class TestColumnarAndLegacyFiles:
    """The JSON store writes columnar schema-2 files; schema-1 files
    (per-entry dicts: v1 tagged dicts or base64 blob strings) must keep
    loading on both the best-effort runtime path and the loud
    merge/migrate path, and both backends must hold byte-identical
    codec payloads for the same entries."""

    def _legacy_file(self, tmp_path, estimator, workload, metrics):
        from repro.eval import codec
        from repro.serialization import metrics_to_dict

        fingerprint = estimator_fingerprint(estimator)
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / f"{fingerprint}.json"
        entries = {
            cache_mod.pair_digest("HighLight", workload.key()):
                metrics_to_dict(metrics),
            cache_mod.pair_digest("TC", workload.key()):
                codec.json_entry_from_metrics(metrics),
            cache_mod.pair_digest("S2TA", workload.key()): None,
        }
        path.write_text(json.dumps({
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "entries": entries,
        }))
        return path

    def test_schema1_file_loads_at_runtime(
        self, tmp_path, estimator, workload, metrics
    ):
        self._legacy_file(tmp_path, estimator, workload, metrics)
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cached = cache.get("HighLight", workload.key())
        assert cached == metrics
        assert cache.get("TC", workload.key()) == metrics
        assert cache.get("S2TA", workload.key()) is None

    def test_schema1_file_rewrites_columnar_on_flush(
        self, tmp_path, estimator, workload, metrics
    ):
        path = self._legacy_file(tmp_path, estimator, workload, metrics)
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        other = synthetic_workload(0.75, 0.0, size=64)
        cache.put("DSTC", other.key(), metrics)
        cache.flush()
        data = json.loads(path.read_text())
        assert data["schema_version"] == cache_mod.COLUMNS_SCHEMA_VERSION
        assert len(data["columns"]["lengths"]) == 4

    def test_schema1_file_merges_loudly(
        self, tmp_path, estimator, workload, metrics
    ):
        """merge reads schema-1 shards through the validating raw
        reader, so their entries land re-encoded as v2 blobs."""
        from repro.eval import codec

        self._legacy_file(tmp_path / "src", estimator, workload, metrics)
        merge_cache_dirs([tmp_path / "src"], tmp_path / "dest")
        (dest,) = cache_mod.cache_files(tmp_path / "dest")
        raw = cache_mod._read_raw_entries(dest)
        digest = cache_mod.pair_digest("HighLight", workload.key())
        assert raw[digest] == codec.encode_metrics(metrics)

    def test_corrupt_columns_read_empty_at_runtime_loud_on_merge(
        self, tmp_path, estimator, workload, metrics
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.flush()
        data = json.loads(cache.path.read_text())
        data["columns"]["lengths"][0] += 7
        cache.path.write_text(json.dumps(data))
        runtime = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        assert runtime.get("HighLight", workload.key()) is MISS
        with pytest.raises(CacheError, match="cannot read"):
            merge_cache_dirs([tmp_path], tmp_path / "dest")

    def test_stats_count_columnar_entries(
        self, tmp_path, estimator, workload, metrics
    ):
        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="json"
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.put("TC", workload.key(), None)
        cache.flush()
        record = cache_stats(tmp_path)
        assert record["total_entries"] == 2
        (per_file,) = record["files"]
        assert per_file["entries"] == 2

    def test_backends_hold_identical_raw_payloads(
        self, tmp_path, estimator, workload, metrics
    ):
        """Payload equality through the codec: the raw blob stored for
        a digest must be the same bytes in a JSON file and a SQLite
        database."""
        for name in BACKENDS:
            cache = PersistentCache.for_estimator(
                tmp_path / name, estimator, backend=name
            )
            cache.put("HighLight", workload.key(), metrics)
            cache.put("S2TA", workload.key(), None)
            cache.flush()
        raw = {
            name: cache_mod._read_raw_entries(
                cache_mod.cache_files(tmp_path / name)[0]
            )
            for name in BACKENDS
        }
        assert raw["json"] == raw["sqlite"]
        assert any(blob is None for blob in raw["json"].values())

    def test_migrate_reencodes_v1_sqlite_rows(
        self, tmp_path, estimator, workload, metrics
    ):
        """A database carrying v1 JSON TEXT rows comes out of migrate
        holding only v2 blobs."""
        from repro.eval import codec
        from repro.serialization import metrics_to_dict

        cache = PersistentCache.for_estimator(
            tmp_path, estimator, backend="sqlite"
        )
        cache.put("HighLight", workload.key(), metrics)
        cache.flush()
        digest = cache_mod.pair_digest("HighLight", workload.key())
        with sqlite3.connect(cache.path) as conn:
            conn.execute(
                "UPDATE entries SET metrics = ? WHERE digest = ?",
                (json.dumps(metrics_to_dict(metrics)), digest),
            )
        cache.close()
        summary = migrate_cache_dir(tmp_path)
        assert summary["reencoded_rows"] == 1
        with sqlite3.connect(tmp_path / f"{cache.fingerprint}.db") as conn:
            (value,) = conn.execute(
                "SELECT metrics FROM entries WHERE digest = ?", (digest,)
            ).fetchone()
        assert isinstance(value, bytes)
        assert value == codec.encode_metrics(metrics)
