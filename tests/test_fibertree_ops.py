"""Tests for fibertree algebra (intersect, union, dot)."""

import pytest

from repro.errors import SpecificationError
from repro.fibertree import Fiber
from repro.fibertree.ops import (
    dot,
    intersect,
    intersection_balance,
    map_payloads,
    union,
)


def fiber(shape, entries):
    return Fiber(shape, entries)


class TestIntersect:
    def test_common_coordinates_only(self):
        a = fiber(4, {0: 1.0, 2: 2.0})
        b = fiber(4, {2: 3.0, 3: 4.0})
        result = intersect(a, b)
        assert result.coordinates() == [2]
        assert result.payload(2) == (2.0, 3.0)

    def test_payload_order_preserved_when_b_leads(self):
        a = fiber(4, {0: 1.0, 1: 5.0, 2: 2.0})
        b = fiber(4, {1: 7.0})
        result = intersect(a, b)
        assert result.payload(1) == (5.0, 7.0)

    def test_empty_intersection(self):
        a = fiber(4, {0: 1.0})
        b = fiber(4, {1: 1.0})
        assert intersect(a, b).occupancy == 0

    def test_dense_sparse(self):
        dense = fiber(4, {i: 1.0 for i in range(4)})
        sparse = fiber(4, {1: 2.0, 3: 3.0})
        assert intersect(dense, sparse).occupancy == 2

    def test_shape_mismatch(self):
        with pytest.raises(SpecificationError):
            intersect(fiber(4, {}), fiber(8, {}))


class TestUnion:
    def test_all_coordinates(self):
        a = fiber(4, {0: 1.0})
        b = fiber(4, {1: 2.0})
        result = union(a, b)
        assert result.coordinates() == [0, 1]
        assert result.payload(0) == (1.0, None)
        assert result.payload(1) == (None, 2.0)

    def test_common_coordinate_pairs(self):
        result = union(fiber(4, {0: 1.0}), fiber(4, {0: 2.0}))
        assert result.payload(0) == (1.0, 2.0)


class TestDot:
    def test_value_and_effectual_count(self):
        a = fiber(4, {0: 2.0, 1: 3.0})
        b = fiber(4, {1: 4.0, 2: 5.0})
        value, effectual = dot(a, b)
        assert value == 12.0
        assert effectual == 1

    def test_dense_dot(self):
        a = fiber(3, {0: 1.0, 1: 2.0, 2: 3.0})
        b = fiber(3, {0: 1.0, 1: 1.0, 2: 1.0})
        value, effectual = dot(a, b)
        assert value == 6.0
        assert effectual == 3


class TestBalance:
    def test_dense_sparse_balance_is_exact(self):
        """Dense-sparse intersections keep every sparse coordinate —
        the perfectly balanced case of Sec. 7.5."""
        dense = fiber(8, {i: 1.0 for i in range(8)})
        sparse = fiber(8, {0: 1.0, 5: 1.0})
        assert intersection_balance(dense, sparse) == 1.0

    def test_sparse_sparse_balance_varies(self):
        a = fiber(8, {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        b = fiber(8, {3: 1.0, 4: 1.0, 5: 1.0, 6: 1.0})
        assert intersection_balance(a, b) == 0.25

    def test_empty_leader(self):
        assert intersection_balance(fiber(4, {}), fiber(4, {0: 1})) == 1.0


class TestMapPayloads:
    def test_applies_function(self):
        result = map_payloads(fiber(4, {0: 2.0, 1: 3.0}), lambda v: v * v)
        assert result.payload(1) == 9.0
