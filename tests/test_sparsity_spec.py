"""Tests for the fibertree-based sparsity specification and parser."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.sparsity import GH, RankSpec, SparsitySpec, parse_spec
from repro.sparsity.pattern import Dense, GHRange, Unconstrained
from repro.sparsity.spec import weight_tensor_spec_view


class TestRankSpec:
    def test_default_rule_is_dense(self):
        assert isinstance(RankSpec("C").rule, Dense)

    def test_is_sparse(self):
        assert RankSpec("C0", GH(2, 4)).is_sparse
        assert not RankSpec("C").is_sparse

    def test_str_with_rule(self):
        assert str(RankSpec("C0", GH(2, 4))) == "C0(2:4)"

    def test_str_dense(self):
        assert str(RankSpec("RS")) == "RS"

    def test_bad_name(self):
        with pytest.raises(SpecificationError):
            RankSpec("C->0")


class TestParse:
    def test_channel_spec(self):
        spec = parse_spec("C(unconstrained)->R->S")
        assert spec.rank_names == ("C", "R", "S")
        assert isinstance(spec.ranks[0].rule, Unconstrained)

    def test_stc_spec(self):
        spec = parse_spec("RS->C1->C0(2:4)")
        assert spec.ranks[2].rule == GH(2, 4)
        assert spec.num_sparse_ranks == 1

    def test_two_rank_hss_spec(self):
        spec = parse_spec("RS->C2->C1(3:4)->C0(2:4)")
        assert spec.num_sparse_ranks == 2
        assert spec.is_hierarchical

    def test_unicode_arrow(self):
        spec = parse_spec("RS→C1→C0(2:4)")
        assert spec.rank_names == ("RS", "C1", "C0")

    def test_range_rule(self):
        spec = parse_spec("C1(4:{4<=H<=8})->C0(2:4)")
        assert isinstance(spec.ranks[0].rule, GHRange)

    def test_round_trip_str(self):
        text = "RS->C2->C1(3:4)->C0(2:4)"
        assert str(parse_spec(text)) == text

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            parse_spec("")

    def test_rejects_empty_rank(self):
        with pytest.raises(SpecificationError):
            parse_spec("C->->S")

    def test_rejects_unbalanced_parens(self):
        with pytest.raises(SpecificationError):
            parse_spec("C0(2:4")

    def test_rejects_duplicate_ranks(self):
        with pytest.raises(SpecificationError):
            parse_spec("C->C")


class TestDerived:
    def test_density_of_hss(self):
        spec = parse_spec("RS->C2->C1(3:4)->C0(2:4)")
        assert spec.density() == pytest.approx(0.375)
        assert spec.sparsity() == pytest.approx(0.625)

    def test_density_dense(self):
        assert parse_spec("C->R->S").density() == 1.0

    def test_density_none_for_unconstrained(self):
        assert parse_spec("C(unconstrained)->R->S").density() is None

    def test_succinct(self):
        spec = parse_spec("RS->C2->C1(3:4)->C0(2:4)")
        assert spec.succinct() == "C1(3:4)->C0(2:4)"

    def test_succinct_dense(self):
        assert parse_spec("C->R->S").succinct() == "dense"


class TestWeightTensorView:
    def test_two_level_partition(self, rng):
        weights = rng.normal(size=(32, 3, 3))
        view = weight_tensor_spec_view(weights, (4, 4))
        assert view.rank_names == ("RS", "C2", "C1", "C0")
        assert view.rank_shapes == (9, 2, 4, 4)

    def test_one_level_partition(self, rng):
        weights = rng.normal(size=(8, 1, 1))
        view = weight_tensor_spec_view(weights, (4,))
        assert view.rank_names == ("RS", "C1", "C0")

    def test_content_preserved(self, rng):
        weights = rng.normal(size=(8, 2, 2))
        view = weight_tensor_spec_view(weights, (4,))
        # occupancy must equal the number of (nonzero) weights
        assert view.occupancy == np.count_nonzero(weights)

    def test_rejects_non_3d(self):
        with pytest.raises(SpecificationError):
            weight_tensor_spec_view(np.zeros((2, 2)), (4,))
