"""Tests for the density/utilization models."""

import pytest

from repro.errors import ModelError
from repro.model.density import (
    balance_efficiency,
    fits_2_of_4,
    highlight_supported_densities,
    highlight_supported_density,
    random_balance_utilization,
    s2ta_quantized_density,
    stc_effective_density,
)
from repro.model.workload import (
    dense_operand,
    hss_operand,
    structured_operand,
    unstructured_operand,
)
from repro.sparsity import HSSPattern


class TestHighlightDensities:
    def test_supported_set_contains_key_degrees(self):
        supported = highlight_supported_densities()
        for density in (1.0, 0.5, 0.25):
            assert any(abs(d - density) < 1e-12 for d in supported)

    def test_min_supported_is_quarter(self):
        assert min(highlight_supported_densities()) == pytest.approx(0.25)

    def test_descending(self):
        supported = highlight_supported_densities()
        assert supported == sorted(supported, reverse=True)

    def test_dense_runs_at_one(self):
        assert highlight_supported_density(dense_operand()) == 1.0

    def test_exact_match(self):
        operand = hss_operand(HSSPattern.from_ratios((2, 4), (4, 8)))
        assert highlight_supported_density(operand) == pytest.approx(0.25)

    def test_rounds_up_to_supported(self):
        # 3:4 single-rank = 0.75 density; nearest supported >= is 0.8.
        operand = hss_operand(HSSPattern.from_ratios((3, 4)))
        assert highlight_supported_density(operand) == pytest.approx(0.8)

    def test_sparser_than_supported_clamps(self):
        operand = hss_operand(HSSPattern.from_ratios((1, 8), (1, 8)))
        assert highlight_supported_density(operand) == pytest.approx(0.25)

    def test_rejects_unstructured(self):
        with pytest.raises(ModelError):
            highlight_supported_density(unstructured_operand(0.5))


class TestStc:
    def test_dense_mode(self):
        assert stc_effective_density(dense_operand()) == (1.0, False)

    def test_24_exploited(self):
        density, sparse = stc_effective_density(structured_operand(2, 4))
        assert (density, sparse) == (0.5, True)

    def test_hss_75_capped_at_2x(self):
        """A 75%-sparse HSS tensor with rank0 2:4 runs at 0.5 (cap)."""
        operand = hss_operand(HSSPattern.from_ratios((2, 4), (4, 8)))
        assert stc_effective_density(operand) == (0.5, True)

    def test_unstructured_falls_back_dense(self):
        assert stc_effective_density(unstructured_operand(0.7)) == (
            1.0, False,
        )

    def test_incompatible_structure_falls_back(self):
        operand = hss_operand(HSSPattern.from_ratios((3, 4)))
        assert stc_effective_density(operand) == (1.0, False)


class TestFits24:
    def test_24_fits(self):
        assert fits_2_of_4(HSSPattern.from_ratios((2, 4)))

    def test_28_fits(self):
        assert fits_2_of_4(HSSPattern.from_ratios((2, 8)))

    def test_12_fits(self):
        assert fits_2_of_4(HSSPattern.from_ratios((1, 2)))

    def test_22_does_not_fit(self):
        assert not fits_2_of_4(HSSPattern.from_ratios((2, 2)))

    def test_34_does_not_fit(self):
        assert not fits_2_of_4(HSSPattern.from_ratios((3, 4)))

    def test_none(self):
        assert not fits_2_of_4(None)


class TestS2taQuantization:
    def test_exact_eighths(self):
        assert s2ta_quantized_density(structured_operand(4, 8)) == 0.5

    def test_rounds_up(self):
        assert s2ta_quantized_density(unstructured_operand(0.6)) == (
            pytest.approx(0.5)
        )
        assert s2ta_quantized_density(unstructured_operand(0.55)) == (
            pytest.approx(0.5)
        )
        assert s2ta_quantized_density(unstructured_operand(0.7)) == (
            pytest.approx(0.375)
        )

    def test_dense(self):
        assert s2ta_quantized_density(dense_operand()) == 1.0


class TestBalance:
    def test_dense_perfect(self):
        assert random_balance_utilization(1.0) == pytest.approx(1.0)

    def test_monotone_in_density(self):
        values = [
            random_balance_utilization(d) for d in (0.1, 0.3, 0.5, 0.9)
        ]
        assert values == sorted(values)

    def test_bounds(self):
        for density in (0.05, 0.25, 0.75, 1.0):
            assert 0.0 < random_balance_utilization(density) <= 1.0

    def test_rejects_zero_density(self):
        with pytest.raises(ModelError):
            random_balance_utilization(0.0)

    def test_balance_efficiency_multiples(self):
        """Perfect only in the limit of many full groups."""
        assert balance_efficiency(3200, 32) > balance_efficiency(32, 32)

    def test_balance_efficiency_empty_slice(self):
        assert balance_efficiency(0, 32) == 1.0

    def test_balance_efficiency_rejects_bad_lanes(self):
        with pytest.raises(ModelError):
            balance_efficiency(10, 0)
