"""Tests for HSS sparsification (paper Sec. 4.2)."""

import numpy as np
import pytest

from repro.errors import SparsificationError
from repro.sparsity import (
    HSSPattern,
    conforms,
    random_hss_matrix,
    scaled_l2_norm,
    sparsify,
    sparsify_unstructured,
)


class TestRank0:
    def test_keeps_largest_magnitudes(self):
        pattern = HSSPattern.from_ratios((2, 4))
        row = np.array([1.0, -9.0, 2.0, 8.0])
        out = sparsify(row, pattern)
        np.testing.assert_allclose(out, [0.0, -9.0, 0.0, 8.0])

    def test_exact_density(self, rng):
        pattern = HSSPattern.from_ratios((2, 4))
        out = sparsify(rng.normal(size=(16, 64)), pattern)
        assert np.mean(out == 0) == pytest.approx(0.5)

    def test_dense_rule_is_identity(self, rng):
        pattern = HSSPattern.from_ratios((4, 4))
        array = rng.normal(size=(4, 16))
        np.testing.assert_allclose(sparsify(array, pattern), array)

    def test_partial_block_padding(self):
        """Length not a multiple of the span: real values win over pad."""
        pattern = HSSPattern.from_ratios((2, 4))
        row = np.array([3.0, 2.0, 1.0, 5.0, 4.0, 6.0])  # last block of 2
        out = sparsify(row, pattern)
        # Last (partial) block keeps both its values.
        np.testing.assert_allclose(out[4:], [4.0, 6.0])


class TestIntermediateRank:
    def test_prunes_lowest_scaled_l2_blocks(self):
        pattern = HSSPattern.from_ratios((2, 2), (1, 2))
        # Two blocks of 2; second block has larger average magnitude.
        row = np.array([1.0, 1.0, 5.0, 5.0])
        out = sparsify(row, pattern)
        np.testing.assert_allclose(out, [0.0, 0.0, 5.0, 5.0])

    def test_rank_by_rank_lower_first(self):
        """Rank0 prunes inside blocks before rank1 scores them."""
        pattern = HSSPattern.from_ratios((1, 2), (1, 2))
        # Block A: [10, 0], block B: [6, 5]. After rank0: A=[10,0],
        # B=[6,0]. Rank1 keeps A (mean 5 > 3).
        row = np.array([10.0, 0.0, 6.0, 5.0])
        out = sparsify(row, pattern)
        np.testing.assert_allclose(out, [10.0, 0.0, 0.0, 0.0])

    def test_overall_sparsity(self, rng):
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        out = sparsify(rng.normal(size=(8, 128)), pattern)
        assert np.mean(out == 0) == pytest.approx(0.75)

    def test_three_rank_pattern(self, rng):
        pattern = HSSPattern.from_ratios((1, 2), (1, 2), (1, 2))
        out = sparsify(rng.normal(size=(4, 64)), pattern)
        assert np.mean(out == 0) == pytest.approx(1 - 1 / 8)
        assert conforms(out, pattern)

    def test_conforms_after_sparsify(self, rng):
        pattern = HSSPattern.from_ratios((2, 4), (3, 4))
        out = sparsify(rng.normal(size=(8, 96)), pattern)
        assert conforms(out, pattern)


class TestAxesAndShapes:
    def test_axis_argument(self, rng):
        pattern = HSSPattern.from_ratios((2, 4))
        array = rng.normal(size=(16, 8))
        out = sparsify(array, pattern, axis=0)
        assert np.mean(out == 0, axis=0) == pytest.approx(0.5)

    def test_3d_tensor(self, rng):
        pattern = HSSPattern.from_ratios((2, 4))
        out = sparsify(rng.normal(size=(2, 3, 16)), pattern, axis=-1)
        assert out.shape == (2, 3, 16)
        assert np.mean(out == 0) == pytest.approx(0.5)

    def test_scalar_rejected(self):
        with pytest.raises(SparsificationError):
            sparsify(np.array(3.0), HSSPattern.from_ratios((2, 4)))

    def test_input_not_mutated(self, rng):
        pattern = HSSPattern.from_ratios((2, 4))
        array = rng.normal(size=(4, 16))
        copy = array.copy()
        sparsify(array, pattern)
        np.testing.assert_array_equal(array, copy)


class TestUnstructured:
    def test_target_sparsity(self, rng):
        out = sparsify_unstructured(rng.normal(size=(100, 100)), 0.7)
        assert np.mean(out == 0) == pytest.approx(0.7, abs=1e-3)

    def test_keeps_largest(self):
        out = sparsify_unstructured(np.array([1.0, -5.0, 2.0, 4.0]), 0.5)
        np.testing.assert_allclose(out, [0.0, -5.0, 0.0, 4.0])

    def test_zero_sparsity_identity(self, rng):
        array = rng.normal(size=(4, 4))
        np.testing.assert_allclose(
            sparsify_unstructured(array, 0.0), array
        )

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(SparsificationError):
            sparsify_unstructured(np.ones(4), 1.0)


class TestScaledL2Norm:
    def test_is_mean_abs(self):
        blocks = np.array([[1.0, -3.0], [0.0, 0.0]])
        np.testing.assert_allclose(scaled_l2_norm(blocks), [2.0, 0.0])


class TestRandomHssMatrix:
    def test_density_exact(self):
        pattern = HSSPattern.from_ratios((2, 4), (2, 4))
        matrix = random_hss_matrix(32, 128, pattern)
        assert np.mean(matrix != 0) == pytest.approx(pattern.density)

    def test_dense_when_no_pattern(self):
        matrix = random_hss_matrix(8, 8, None)
        assert np.all(matrix != 0)

    def test_deterministic_default_seed(self):
        pattern = HSSPattern.from_ratios((2, 4))
        first = random_hss_matrix(4, 16, pattern)
        second = random_hss_matrix(4, 16, pattern)
        np.testing.assert_array_equal(first, second)
