"""Tests for the event-driven run API: RunPlan/RunEvent execution,
scoped per-artifact EngineStats deltas, the ``md`` renderer golden
files, streaming CLI behaviour, and schema-v4 run records."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.eval.artifacts import (
    ARTIFACTS,
    ArtifactFinished,
    ArtifactStarted,
    RunFinished,
    RunPlan,
    compute_artifacts,
    render,
    stats_by_artifact,
)
from repro.eval.engine import EngineContext, EngineStats, SweepEngine
from repro.eval.runs import load_record, record_from_artifacts

GOLDEN_MD = Path(__file__).parent / "golden" / "md"

PAPER_ORDER = (
    "tables", "fig2", "fig6", "fig13", "fig14", "fig15", "fig16",
    "fig17",
)


class TestEngineStatsScoping:
    def test_snapshot_is_independent(self):
        stats = EngineStats(hits=3, misses=2, disk_hits=1)
        frozen = stats.snapshot()
        stats.hits += 10
        assert frozen.hits == 3
        assert stats.hits == 13

    def test_delta_since(self):
        start = EngineStats(hits=3, misses=2, disk_hits=1)
        now = EngineStats(hits=8, misses=2, disk_hits=4)
        delta = now.delta_since(start)
        assert (delta.hits, delta.misses, delta.disk_hits) == (5, 0, 3)
        assert delta.evaluations == 0
        assert delta.requests == 8

    def test_engine_checkpoint_round_trip(self, estimator):
        engine = SweepEngine(estimator)
        checkpoint = engine.checkpoint()
        engine.sweep(designs=("TC",), a_degrees=(0.0,),
                     b_degrees=(0.0,), m=64, k=64, n=64)
        delta = engine.stats_since(checkpoint)
        assert delta.requests == engine.stats.requests
        assert delta.misses > 0
        # A later checkpoint scopes out the earlier work.
        assert engine.stats_since(engine.checkpoint()).requests == 0


class TestRunPlan:
    def test_unknown_name_rejected_before_work(self):
        with pytest.raises(KeyError, match="fig99"):
            RunPlan.from_names(["fig6", "fig99"])

    def test_names_in_plan_order(self, estimator):
        plan = RunPlan.from_names(["fig6", "tables"], estimator)
        assert plan.names == ("fig6", "tables")

    def test_duplicate_names_rejected_before_work(self):
        """Results and per-artifact stats are name-keyed: a repeated
        artifact would stream twice but record once, silently breaking
        the deltas-sum-to-totals invariant."""
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="duplicate"):
            RunPlan.from_names(["fig6", "tables", "fig6"])

    def test_event_sequence_shape(self, estimator):
        plan = RunPlan.from_names(["tables", "fig6"], estimator)
        events = list(plan.events())
        kinds = [type(event) for event in events]
        assert kinds == [
            ArtifactStarted, ArtifactFinished,
            ArtifactStarted, ArtifactFinished,
            RunFinished,
        ]
        assert [e.name for e in events[:-1]] == [
            "tables", "tables", "fig6", "fig6",
        ]
        assert all(e.total == 2 for e in events[:-1])
        final = events[-1]
        assert list(final.results) == ["tables", "fig6"]

    def test_finished_carries_registered_result_type(self, estimator):
        plan = RunPlan.from_names(["fig6"], estimator)
        (finished,) = [
            e for e in plan.events()
            if isinstance(e, ArtifactFinished)
        ]
        assert type(finished.result) is ARTIFACTS["fig6"].result_type

    def test_per_artifact_deltas_sum_to_run_totals(self):
        """The acceptance shape: ArtifactFinished stats are scoped per
        artifact and always sum to the RunFinished totals — which, on
        a fresh engine, are the engine's cumulative counters."""
        ctx = EngineContext.coerce(None)
        plan = RunPlan.from_names(
            ["fig13", "fig14", "fig16", "fig17"], ctx
        )
        outcome = plan.run()
        for key in ("hits", "misses", "disk_hits"):
            summed = sum(
                getattr(e.stats, key) for e in outcome.artifacts
            )
            assert summed == getattr(outcome.stats, key)
            assert summed == getattr(ctx.engine.stats, key)
        # fig14/fig16 revisit fig13's grid: scoped deltas prove they
        # evaluated nothing of their own.
        by_name = {e.name: e.stats for e in outcome.artifacts}
        assert by_name["fig13"].evaluations > 0
        assert by_name["fig14"].evaluations == 0
        assert by_name["fig16"].evaluations == 0

    def test_warm_cache_reports_zero_evaluations_per_artifact(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        cold = RunPlan.from_names(
            ["fig13", "fig17"], EngineContext.create(cache_dir=cache_dir)
        ).run()
        assert cold.stats.evaluations > 0
        warm = RunPlan.from_names(
            ["fig13", "fig17"], EngineContext.create(cache_dir=cache_dir)
        ).run()
        for event in warm.artifacts:
            assert event.stats.evaluations == 0, event.name
        assert warm.stats.disk_hits > 0

    def test_run_matches_compute_artifacts(self, estimator):
        names = ["fig6", "tables"]
        outcome = RunPlan.from_names(names, estimator).run()
        computed = compute_artifacts(names, EngineContext.coerce(estimator))
        assert list(outcome.results) == list(computed)
        for name in names:
            assert (
                outcome.results[name].to_payload()
                == computed[name].to_payload()
            )

    def test_stats_by_artifact_is_json_ready(self, estimator):
        outcome = RunPlan.from_names(["fig6"], estimator).run()
        stats = stats_by_artifact(outcome.artifacts)
        assert stats == outcome.artifact_stats()
        assert json.dumps(stats)
        assert set(stats["fig6"]) == {
            "hits", "disk_hits", "misses", "evaluations", "requests",
            "wall_time_s",
        }


@pytest.fixture(scope="module")
def results(estimator):
    """All artifacts computed once under one shared context."""
    return compute_artifacts(
        list(ARTIFACTS), EngineContext.coerce(estimator)
    )


class TestMarkdownRenderer:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_md_matches_golden(self, name, results):
        golden = (GOLDEN_MD / f"{name}.md").read_text()
        assert render(results[name], "md") + "\n" == golden

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_md_embeds_text_render_verbatim(self, name, results):
        info = ARTIFACTS[name]
        rendered = info.render(results[name], "md")
        assert rendered.startswith(f"## {info.title}")
        assert f"```\n{info.render_text(results[name])}\n```" in rendered

    def test_report_md_composes_artifact_sections(
        self, results, estimator
    ):
        from repro.eval.report import build_markdown_report

        document = build_markdown_report(estimator)
        assert document.startswith("# EXPERIMENTS")
        for name in PAPER_ORDER:
            assert render(results[name], "md") in document


class TestStreamCli:
    def test_stream_stdout_matches_batch(self, capsys):
        assert main(["artifact", "fig6", "tables"]) == 0
        batch = capsys.readouterr().out
        assert main(["artifact", "fig6", "tables", "--stream"]) == 0
        streamed = capsys.readouterr()
        assert streamed.out == batch
        assert "[1/2] fig6:" in streamed.err
        assert "[2/2] tables:" in streamed.err

    def test_repeated_names_dedup_in_stream_and_batch(self, capsys):
        """`repro artifact fig6 fig6` always rendered once (results
        are name-keyed); the CLI dedups up front so --stream and the
        per-artifact record agree with that."""
        assert main(["artifact", "fig6", "fig6"]) == 0
        batch = capsys.readouterr().out
        assert main(["artifact", "fig6", "fig6", "--stream"]) == 0
        streamed = capsys.readouterr()
        assert streamed.out == batch
        assert batch.count("muxing overhead") == 1
        assert "[1/1] fig6:" in streamed.err

    def test_stream_json_is_one_object_per_artifact(self, capsys):
        assert main(["artifact", "fig6", "tables", "--format", "json",
                     "--stream"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        objects = [json.loads(line) for line in lines]
        assert [o["artifact"] for o in objects] == ["fig6", "tables"]
        for obj in objects:
            assert obj["payload"]["rows"]
            assert obj["stats"]["misses"] == obj["stats"]["evaluations"]

    def test_stream_md_sections(self, capsys):
        assert main(["artifact", "fig6", "--format", "md",
                     "--stream"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("## Fig. 6")

    def test_warm_stream_record_zero_evaluations_per_artifact(
        self, tmp_path, capsys
    ):
        """The acceptance shape: a warm `--stream` rerun reports
        evaluations == 0 for every artifact, per artifact."""
        cache_dir = str(tmp_path / "cache")
        argv = ["artifact", "fig13", "fig14", "fig17",
                "--cache-dir", cache_dir]
        assert main(argv + ["--record",
                            str(tmp_path / "cold.json")]) == 0
        assert main(argv + ["--stream", "--record",
                            str(tmp_path / "warm.json")]) == 0
        capsys.readouterr()
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["artifact_stats"]["fig13"]["evaluations"] > 0
        for name, stats in warm["artifact_stats"].items():
            assert stats["evaluations"] == 0, name
            assert stats["misses"] == 0, name
        assert cold["artifacts"] == warm["artifacts"]


class TestSchemaV4Records:
    def test_round_trip_with_artifact_stats(self, tmp_path, estimator):
        outcome = RunPlan.from_names(["fig6", "tables"], estimator).run()
        record = record_from_artifacts(
            command="artifact",
            results=outcome.results,
            engine=EngineContext.coerce(estimator).engine,
            wall_time_s=outcome.wall_time_s,
            artifact_stats=outcome.artifact_stats(),
        )
        assert record.schema_version == 4
        loaded = load_record(record.write(tmp_path / "run.json"))
        assert loaded["schema_version"] == 4
        assert set(loaded["artifact_stats"]) == {"fig6", "tables"}
        assert (
            loaded["artifact_stats"]["fig6"]["evaluations"]
            == outcome.artifacts[0].stats.evaluations
        )

    def test_artifact_stats_default_empty(self, results, estimator):
        record = record_from_artifacts(
            command="artifact", results={"fig6": results["fig6"]},
        )
        assert record.artifact_stats == {}


class TestFig2EngineRouting:
    def test_fig2_degree_search_warm_cache_zero_evaluations(
        self, tmp_path
    ):
        """The acceptance shape: Fig. 2's accuracy-matched degree
        search — bespoke evaluate_model calls rerouted through
        sweep_model — performs zero fresh evaluations on a warm
        persistent cache."""
        from repro.eval import experiments as E

        cache_dir = str(tmp_path / "cache")
        cold = EngineContext.create(cache_dir=cache_dir)
        cold_result = E.fig2(cold)
        assert cold.engine.stats.evaluations > 0
        cold.engine.close()

        warm = EngineContext.create(cache_dir=cache_dir)
        warm_result = E.fig2(warm)
        assert warm.engine.stats.evaluations == 0
        assert warm.engine.stats.misses == 0
        assert warm.engine.stats.disk_hits > 0
        assert warm_result.to_payload() == cold_result.to_payload()
        warm.engine.close()

    def test_accuracy_matched_degrees_shape(self):
        from repro.dnn.models import resnet50
        from repro.eval.experiments import accuracy_matched_degrees

        degrees = accuracy_matched_degrees(resnet50())
        assert set(degrees) == {"TC", "STC", "DSTC", "HighLight"}
        assert degrees["TC"] == 0.0
        # ResNet50 prunes aggressively within the 0.5% budget.
        assert degrees["DSTC"] > 0.5
        assert degrees["HighLight"] in (0.5, 0.625, 0.75)
