"""Tests for repro.utils helpers."""

import math

import pytest

from repro.utils import (
    ceil_div,
    check_fraction,
    check_positive,
    check_probability,
    check_type,
    geomean,
    is_power_of_two,
    prod,
    round_up_to_multiple,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_one(self):
        assert ceil_div(1, 4) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1.0

    def test_values(self):
        assert prod([2, 3, 4]) == 24.0

    def test_fractions(self):
        assert prod([0.5, 0.5]) == 0.25


class TestGeomean:
    def test_single(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariant_to_order(self):
        assert geomean([2, 8, 4]) == pytest.approx(geomean([8, 4, 2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_matches_log_definition(self):
        values = [1.5, 2.5, 9.0, 0.1]
        expected = math.exp(sum(math.log(v) for v in values) / 4)
        assert geomean(values) == pytest.approx(expected)


class TestPowersAndRounding:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)

    def test_not_power_of_two(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_round_up(self):
        assert round_up_to_multiple(5, 4) == 8

    def test_round_up_exact(self):
        assert round_up_to_multiple(8, 4) == 8

    def test_round_up_bad_multiple(self):
        with pytest.raises(ValueError):
            round_up_to_multiple(5, 0)


class TestValidation:
    def test_check_positive_ok(self):
        check_positive("x", 1)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_probability_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)

    def test_check_probability_rejects(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_fraction_ok(self):
        check_fraction("f", 2, 4)

    def test_check_fraction_g_above_h(self):
        with pytest.raises(ValueError):
            check_fraction("f", 5, 4)

    def test_check_fraction_non_integer(self):
        with pytest.raises(TypeError):
            check_fraction("f", 2.0, 4)

    def test_check_type(self):
        check_type("x", 3, int)
        with pytest.raises(TypeError):
            check_type("x", 3, str)
