"""Command-line interface: paper artifacts, custom sweeps, run records.

Usage::

    python -m repro artifact <name> [...]   # regenerate paper artifacts
    python -m repro sweep [--designs ...]   # run a custom sparsity grid
    python -m repro sweep --model NAME      # sweep a DNN across designs
    python -m repro cache stats|clear       # persistent-cache upkeep
    python -m repro list [--filter k=v]     # registered designs/artifacts
    python -m repro report [--output PATH]  # EXPERIMENTS.md record

Bare artifact names keep working as shorthand: ``python -m repro
fig13`` and ``python -m repro all`` mean ``artifact fig13`` / ``artifact
all``. Artifacts: ``tables``, ``fig2``, ``fig6``, ``fig13``, ``fig14``,
``fig15``, ``fig16``, ``fig17``.

All artifacts of one invocation share a single estimator and one
memoizing :class:`~repro.eval.engine.SweepEngine` whose unit of
memoization is the (design, workload) pair, so ``repro all`` evaluates
each unique pair exactly once even though Fig. 14 and Fig. 16 revisit
the Fig. 13 sweep and the network figures share dense layers. With
``--cache-dir`` (or ``$REPRO_CACHE_DIR``) the pair cache also persists
across runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.accelerators import REGISTRY, main_design_names
from repro.dnn.models import get_model, model_names
from repro.energy import Estimator
from repro.errors import EvaluationError, WorkloadError
from repro.eval import cache as cache_mod
from repro.eval import experiments as E
from repro.eval import reporting as R
from repro.eval.engine import BACKENDS, SweepEngine
from repro.eval.runs import record_from_model_sweep, record_from_sweep


def _run_tables(estimator: Estimator) -> str:
    sections = []
    sections.append(
        R.format_table(
            ["category", "design", "sparsity tax", "degree diversity"],
            [
                [r["category"], r["design"], r["sparsity_tax"],
                 r["degree_diversity"]]
                for r in E.table1()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["source", "conventional", "fibertree spec"],
            [
                [r["source"], r["conventional"], r["fibertree"]]
                for r in E.table2()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["design", "patterns"],
            [[r["design"], r["patterns"]] for r in E.table3()]
            + [[E.table3_dsso()["design"], E.table3_dsso()["patterns"]]],
        )
    )
    sections.append(
        R.format_table(
            ["design", "GLB data (KB)", "GLB meta (KB)", "RF", "MACs"],
            [
                [r["design"], str(r["glb_data_kb"]),
                 str(r["glb_meta_kb"]), str(r["rf"]), str(r["macs"])]
                for r in E.table_4()
            ],
        )
    )
    titles = ["Table 1", "Table 2", "Table 3", "Table 4"]
    return "\n\n".join(
        f"{title}\n{section}" for title, section in zip(titles, sections)
    )


def _run_fig13(estimator: Estimator) -> str:
    sweep = E.fig13(estimator)
    parts = [
        R.render_fig13(sweep, metric)
        for metric in ("edp", "energy_pj", "cycles")
    ]
    geomean_tc, max_tc = sweep.gain_over("TC")
    parts.append(
        f"HighLight vs TC: geomean {geomean_tc:.1f}x, "
        f"up to {max_tc:.1f}x (paper: 6.4x / 20.4x)"
    )
    return "\n\n".join(parts)


def _run_fig14(estimator: Estimator) -> str:
    return R.render_fig14(E.fig14(E.fig13(estimator)))


ARTIFACTS: Dict[str, Callable[[Estimator], str]] = {
    "tables": _run_tables,
    "fig2": lambda est: R.render_fig2(E.fig2(est)),
    "fig6": lambda est: R.render_fig6(E.fig6()),
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": lambda est: R.render_fig15(E.fig15(est)),
    "fig16": lambda est: R.render_fig16(E.fig16(est)),
    "fig17": lambda est: R.render_fig17(E.fig17(est)),
}

#: Paper order for `all` and the report.
ORDER = ["tables", "fig2", "fig6", "fig13", "fig14", "fig15", "fig16",
         "fig17"]

#: Geomean-able sweep metrics the `sweep` subcommand can render.
SWEEP_METRICS = ("edp", "energy_pj", "cycles", "ed2")


def run_artifacts(
    names: List[str],
    estimator: Optional[Estimator] = None,
    jobs: int = 1,
) -> str:
    """Render the named artifacts off one shared estimator + engine."""
    estimator = estimator or Estimator()
    engine = SweepEngine.shared(estimator)
    engine.jobs = max(engine.jobs, jobs)
    outputs = []
    for name in names:
        outputs.append(ARTIFACTS[name](estimator))
    return "\n\n".join(outputs)


def _parse_degrees(text: str) -> Tuple[float, ...]:
    try:
        degrees = tuple(
            float(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated sparsity degrees, got {text!r}"
        )
    if not degrees:
        raise argparse.ArgumentTypeError("empty degree list")
    for degree in degrees:
        if not 0.0 <= degree < 1.0:
            raise argparse.ArgumentTypeError(
                f"sparsity degrees must be in [0, 1), got {degree}"
            )
    return degrees


def _parse_names(text: str) -> Tuple[str, ...]:
    names = tuple(dict.fromkeys(
        part.strip() for part in text.split(",") if part.strip()
    ))
    if not names:
        raise argparse.ArgumentTypeError("empty design list")
    return names


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _coerce_metadata_value(text: str) -> object:
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate HighLight (MICRO 2023) paper artifacts "
        "and run custom sparsity sweeps.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")
    sub.required = True

    artifact = sub.add_parser(
        "artifact",
        help="regenerate paper figures/tables (shorthand: bare names)",
    )
    artifact.add_argument(
        "names",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        metavar="name",
        help="artifact name(s), or 'all' for the paper order",
    )
    artifact.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel sweep-cell workers (default 1)",
    )
    artifact.add_argument(
        "--output",
        default=None,
        help="(report mode only — rejected here with an explicit error)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a custom design x sparsity grid, or a "
        "registered DNN with --model",
    )
    sweep.add_argument(
        "--designs", type=_parse_names, default=None, metavar="A,B,...",
        help="comma-separated registered design names "
        "(default: the five main-evaluation designs)",
    )
    sweep.add_argument(
        "--model", default=None, metavar="NAME",
        help="sweep a registered DNN instead of a synthetic grid "
        f"(one of: {', '.join(model_names())})",
    )
    sweep.add_argument(
        "--degrees", type=_parse_degrees, default=None, metavar="D,D,...",
        help="(--model only) weight-sparsity degrees for every design "
        "(default: each design's Fig. 15 ladder)",
    )
    sweep.add_argument(
        "--a-degrees", type=_parse_degrees,
        default=None, metavar="D,D,...",
        help="operand-A sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--b-degrees", type=_parse_degrees,
        default=None, metavar="D,D,...",
        help="operand-B sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--size", type=int, default=None, metavar="N",
        help="cubic GEMM side M=K=N (default 1024)",
    )
    sweep.add_argument(
        "--metric", choices=SWEEP_METRICS, default="edp",
        help="metric to render (default edp)",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel evaluation workers (default 1)",
    )
    sweep.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker backend for --jobs > 1 (default thread; the "
        "analytical models are pure, so processes are safe)",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist (design, workload) evaluations under DIR and "
        "reuse them across runs (also: $REPRO_CACHE_DIR)",
    )
    sweep.add_argument(
        "--record", default=None, metavar="PATH",
        help="write a JSON run record of this sweep",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent evaluation cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear"),
        help="'stats' prints per-fingerprint entry counts; 'clear' "
        "deletes all cache files",
    )
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-highlight)",
    )

    lister = sub.add_parser(
        "list", help="list registered designs and available artifacts"
    )
    lister.add_argument(
        "--filter", action="append", default=[], metavar="KEY=VALUE",
        help="only designs whose registry metadata matches (repeatable)",
    )

    report = sub.add_parser(
        "report", help="write the EXPERIMENTS.md paper-vs-measured record"
    )
    report.add_argument(
        "--output", default="EXPERIMENTS.md", metavar="PATH",
        help="destination path (default EXPERIMENTS.md)",
    )
    return parser


def _cmd_artifact(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    if args.output is not None:
        parser.error(
            "--output is only valid with the 'report' subcommand "
            "(artifacts print to stdout)"
        )
    names = ORDER if "all" in args.names else list(args.names)
    print(run_artifacts(names, jobs=args.jobs))
    return 0


def _resolve_cache_dir(
    explicit: Optional[str], fallback_to_default: bool = False
) -> Optional[str]:
    """``--cache-dir`` wins, then ``$REPRO_CACHE_DIR``, then (for the
    ``cache`` subcommand) the default location."""
    if explicit:
        return explicit
    env = os.environ.get(cache_mod.CACHE_DIR_ENV)
    if env:
        return env
    if fallback_to_default:
        return str(cache_mod.default_cache_dir())
    return None


def _build_engine(args: argparse.Namespace) -> SweepEngine:
    engine = SweepEngine(jobs=args.jobs, backend=args.backend)
    cache_dir = _resolve_cache_dir(args.cache_dir)
    if cache_dir is not None:
        engine.attach_cache(
            cache_mod.PersistentCache.for_estimator(
                cache_dir, engine.estimator
            )
        )
    return engine


def _cmd_sweep_model(args: argparse.Namespace,
                     parser: argparse.ArgumentParser) -> int:
    try:
        model = get_model(args.model)
    except WorkloadError as error:
        parser.error(str(error))
    design_names = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    engine = _build_engine(args)
    start = time.perf_counter()
    sweep = E.sweep_model(
        model,
        designs=design_names,
        degrees=args.degrees,
        engine=engine,
    )
    wall_time_s = time.perf_counter() - start
    print(R.render_model_sweep(sweep))
    stats = engine.stats
    print(
        f"\n{len(design_names)} designs on {model.name}, "
        f"jobs={args.jobs} ({args.backend}): "
        f"{stats.evaluations} workloads evaluated, "
        f"{stats.hits} memory hits, {stats.disk_hits} disk hits "
        f"in {wall_time_s:.2f}s"
    )
    if args.record:
        record = record_from_model_sweep(
            command="sweep-model",
            sweep=sweep,
            engine=engine,
            wall_time_s=wall_time_s,
        )
        path = record.write(args.record)
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    design_names = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    for name in design_names:
        if name not in REGISTRY:
            parser.error(
                f"unknown design {name!r}; run 'repro list' for the "
                f"registered names"
            )
    if args.model is not None:
        for flag, value in (
            ("--a-degrees", args.a_degrees),
            ("--b-degrees", args.b_degrees),
            ("--size", args.size),
        ):
            if value is not None:
                parser.error(
                    f"{flag} applies to synthetic grids; a --model "
                    f"sweep takes its shapes from the network's layers "
                    f"(use --degrees for the weight-sparsity ladder)"
                )
        return _cmd_sweep_model(args, parser)
    if args.degrees is not None:
        parser.error(
            "--degrees applies to --model sweeps; use --a-degrees/"
            "--b-degrees for synthetic grids"
        )
    a_degrees = args.a_degrees if args.a_degrees is not None else E.A_DEGREES
    b_degrees = args.b_degrees if args.b_degrees is not None else E.B_DEGREES
    size = args.size if args.size is not None else 1024
    engine = _build_engine(args)
    start = time.perf_counter()
    sweep = engine.sweep(
        designs=design_names,
        a_degrees=a_degrees,
        b_degrees=b_degrees,
        m=size, k=size, n=size,
    )
    wall_time_s = time.perf_counter() - start
    try:
        rendered = R.render_sweep(sweep, args.metric)
    except EvaluationError as error:
        # E.g. S2TA as baseline on a grid with a dense-dense cell it
        # cannot process: normalization has nothing to divide by.
        parser.error(
            f"cannot normalize this grid: {error}. Include TC in "
            f"--designs or restrict the degree grids to cells the "
            f"baseline ({sweep.baseline}) supports."
        )
    print(rendered)
    stats = engine.stats
    print(
        f"\n{len(design_names)} designs x {len(a_degrees)}x"
        f"{len(b_degrees)} degree grid @ {size}^3, "
        f"jobs={args.jobs} ({args.backend}): "
        f"{stats.evaluations} workloads evaluated, "
        f"{stats.hits} memory hits, {stats.disk_hits} disk hits "
        f"in {wall_time_s:.2f}s"
    )
    if args.record:
        record = record_from_sweep(
            command="sweep",
            sweep=sweep,
            engine=engine,
            wall_time_s=wall_time_s,
            shape=(size, size, size),
        )
        path = record.write(args.record)
        print(f"wrote {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    directory = _resolve_cache_dir(
        args.cache_dir, fallback_to_default=True
    )
    if args.action == "clear":
        removed = cache_mod.clear_cache(directory)
        print(f"removed {removed} cache file(s) from {directory}")
        return 0
    stats = cache_mod.cache_stats(directory)
    print(f"cache directory: {stats['directory']}")
    if not stats["files"]:
        print("  (empty)")
        return 0
    rows = [
        [f["file"], str(f["entries"]), str(f["bytes"])]
        for f in stats["files"]
    ]
    print(R.format_table(["file", "entries", "bytes"], rows))
    print(f"total entries: {stats['total_entries']}")
    return 0


def _cmd_list(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    filters = {}
    for item in args.filter:
        key, separator, value = item.partition("=")
        if not separator or not key:
            parser.error(
                f"bad --filter {item!r}; expected KEY=VALUE "
                f"(e.g. sparsity_side=dual)"
            )
        filters[key] = _coerce_metadata_value(value)
    infos = REGISTRY.filter(**filters) if filters else list(REGISTRY)
    rows = [
        [
            info.name,
            str(info.metadata.get("category", "-")),
            str(info.metadata.get("sparsity_side", "-")),
            ", ".join(
                f"{key}={value}"
                for key, value in sorted(info.metadata.items())
                if key not in ("category", "sparsity_side")
            ) or "-",
        ]
        for info in infos
    ]
    print("Registered designs")
    print(R.format_table(
        ["name", "category", "sparsity side", "metadata"], rows
    ))
    print(f"\nArtifacts: {' '.join(ORDER)} (plus 'all')")
    print(f"Models (sweep --model): {' '.join(model_names())}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import write_report

    write_report(args.output)
    print(f"wrote {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and (argv[0] in ARTIFACTS or argv[0] == "all"):
        argv = ["artifact"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "artifact":
        return _cmd_artifact(args, parser)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "list":
        return _cmd_list(args, parser)
    return _cmd_report(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
