"""Command-line interface: paper artifacts, custom sweeps, run records.

Usage::

    python -m repro artifact <name> [...]   # regenerate paper artifacts
    python -m repro sweep [--designs ...]   # run a custom sparsity grid
    python -m repro list [--filter k=v]     # registered designs/artifacts
    python -m repro report [--output PATH]  # EXPERIMENTS.md record

Bare artifact names keep working as shorthand: ``python -m repro
fig13`` and ``python -m repro all`` mean ``artifact fig13`` / ``artifact
all``. Artifacts: ``tables``, ``fig2``, ``fig6``, ``fig13``, ``fig14``,
``fig15``, ``fig16``, ``fig17``.

All artifacts of one invocation share a single estimator and one
memoizing :class:`~repro.eval.engine.SweepEngine`, so ``repro all``
evaluates each unique (design, workload, sparsity) cell exactly once
even though Fig. 14 and Fig. 16 revisit the Fig. 13 sweep.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.accelerators import REGISTRY, main_design_names
from repro.energy import Estimator
from repro.errors import EvaluationError
from repro.eval import experiments as E
from repro.eval import reporting as R
from repro.eval.engine import SweepEngine
from repro.eval.runs import record_from_sweep


def _run_tables(estimator: Estimator) -> str:
    sections = []
    sections.append(
        R.format_table(
            ["category", "design", "sparsity tax", "degree diversity"],
            [
                [r["category"], r["design"], r["sparsity_tax"],
                 r["degree_diversity"]]
                for r in E.table1()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["source", "conventional", "fibertree spec"],
            [
                [r["source"], r["conventional"], r["fibertree"]]
                for r in E.table2()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["design", "patterns"],
            [[r["design"], r["patterns"]] for r in E.table3()]
            + [[E.table3_dsso()["design"], E.table3_dsso()["patterns"]]],
        )
    )
    sections.append(
        R.format_table(
            ["design", "GLB data (KB)", "GLB meta (KB)", "RF", "MACs"],
            [
                [r["design"], str(r["glb_data_kb"]),
                 str(r["glb_meta_kb"]), str(r["rf"]), str(r["macs"])]
                for r in E.table_4()
            ],
        )
    )
    titles = ["Table 1", "Table 2", "Table 3", "Table 4"]
    return "\n\n".join(
        f"{title}\n{section}" for title, section in zip(titles, sections)
    )


def _run_fig13(estimator: Estimator) -> str:
    sweep = E.fig13(estimator)
    parts = [
        R.render_fig13(sweep, metric)
        for metric in ("edp", "energy_pj", "cycles")
    ]
    geomean_tc, max_tc = sweep.gain_over("TC")
    parts.append(
        f"HighLight vs TC: geomean {geomean_tc:.1f}x, "
        f"up to {max_tc:.1f}x (paper: 6.4x / 20.4x)"
    )
    return "\n\n".join(parts)


def _run_fig14(estimator: Estimator) -> str:
    return R.render_fig14(E.fig14(E.fig13(estimator)))


ARTIFACTS: Dict[str, Callable[[Estimator], str]] = {
    "tables": _run_tables,
    "fig2": lambda est: R.render_fig2(E.fig2(est)),
    "fig6": lambda est: R.render_fig6(E.fig6()),
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": lambda est: R.render_fig15(E.fig15(est)),
    "fig16": lambda est: R.render_fig16(E.fig16(est)),
    "fig17": lambda est: R.render_fig17(E.fig17(est)),
}

#: Paper order for `all` and the report.
ORDER = ["tables", "fig2", "fig6", "fig13", "fig14", "fig15", "fig16",
         "fig17"]

#: Geomean-able sweep metrics the `sweep` subcommand can render.
SWEEP_METRICS = ("edp", "energy_pj", "cycles", "ed2")


def run_artifacts(
    names: List[str],
    estimator: Optional[Estimator] = None,
    jobs: int = 1,
) -> str:
    """Render the named artifacts off one shared estimator + engine."""
    estimator = estimator or Estimator()
    engine = SweepEngine.shared(estimator)
    engine.jobs = max(engine.jobs, jobs)
    outputs = []
    for name in names:
        outputs.append(ARTIFACTS[name](estimator))
    return "\n\n".join(outputs)


def _parse_degrees(text: str) -> Tuple[float, ...]:
    try:
        degrees = tuple(
            float(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated sparsity degrees, got {text!r}"
        )
    if not degrees:
        raise argparse.ArgumentTypeError("empty degree list")
    for degree in degrees:
        if not 0.0 <= degree < 1.0:
            raise argparse.ArgumentTypeError(
                f"sparsity degrees must be in [0, 1), got {degree}"
            )
    return degrees


def _parse_names(text: str) -> Tuple[str, ...]:
    names = tuple(dict.fromkeys(
        part.strip() for part in text.split(",") if part.strip()
    ))
    if not names:
        raise argparse.ArgumentTypeError("empty design list")
    return names


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _coerce_metadata_value(text: str) -> object:
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate HighLight (MICRO 2023) paper artifacts "
        "and run custom sparsity sweeps.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")
    sub.required = True

    artifact = sub.add_parser(
        "artifact",
        help="regenerate paper figures/tables (shorthand: bare names)",
    )
    artifact.add_argument(
        "names",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        metavar="name",
        help="artifact name(s), or 'all' for the paper order",
    )
    artifact.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel sweep-cell workers (default 1)",
    )
    artifact.add_argument(
        "--output",
        default=None,
        help="(report mode only — rejected here with an explicit error)",
    )

    sweep = sub.add_parser(
        "sweep", help="evaluate a custom design x sparsity grid"
    )
    sweep.add_argument(
        "--designs", type=_parse_names, default=None, metavar="A,B,...",
        help="comma-separated registered design names "
        "(default: the five main-evaluation designs)",
    )
    sweep.add_argument(
        "--a-degrees", type=_parse_degrees,
        default=E.A_DEGREES, metavar="D,D,...",
        help="operand-A sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--b-degrees", type=_parse_degrees,
        default=E.B_DEGREES, metavar="D,D,...",
        help="operand-B sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--size", type=int, default=1024, metavar="N",
        help="cubic GEMM side M=K=N (default 1024)",
    )
    sweep.add_argument(
        "--metric", choices=SWEEP_METRICS, default="edp",
        help="metric to render (default edp)",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel sweep-cell workers (default 1)",
    )
    sweep.add_argument(
        "--record", default=None, metavar="PATH",
        help="write a JSON run record of this sweep",
    )

    lister = sub.add_parser(
        "list", help="list registered designs and available artifacts"
    )
    lister.add_argument(
        "--filter", action="append", default=[], metavar="KEY=VALUE",
        help="only designs whose registry metadata matches (repeatable)",
    )

    report = sub.add_parser(
        "report", help="write the EXPERIMENTS.md paper-vs-measured record"
    )
    report.add_argument(
        "--output", default="EXPERIMENTS.md", metavar="PATH",
        help="destination path (default EXPERIMENTS.md)",
    )
    return parser


def _cmd_artifact(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    if args.output is not None:
        parser.error(
            "--output is only valid with the 'report' subcommand "
            "(artifacts print to stdout)"
        )
    names = ORDER if "all" in args.names else list(args.names)
    print(run_artifacts(names, jobs=args.jobs))
    return 0


def _cmd_sweep(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    design_names = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    for name in design_names:
        if name not in REGISTRY:
            parser.error(
                f"unknown design {name!r}; run 'repro list' for the "
                f"registered names"
            )
    start = time.perf_counter()
    engine = SweepEngine(jobs=args.jobs)
    sweep = engine.sweep(
        designs=design_names,
        a_degrees=args.a_degrees,
        b_degrees=args.b_degrees,
        m=args.size, k=args.size, n=args.size,
    )
    wall_time_s = time.perf_counter() - start
    try:
        rendered = R.render_sweep(sweep, args.metric)
    except EvaluationError as error:
        # E.g. S2TA as baseline on a grid with a dense-dense cell it
        # cannot process: normalization has nothing to divide by.
        parser.error(
            f"cannot normalize this grid: {error}. Include TC in "
            f"--designs or restrict the degree grids to cells the "
            f"baseline ({sweep.baseline}) supports."
        )
    print(rendered)
    print(
        f"\n{len(design_names)} designs x {len(args.a_degrees)}x"
        f"{len(args.b_degrees)} degree grid @ {args.size}^3, "
        f"jobs={args.jobs}: {engine.stats.misses} cells evaluated "
        f"in {wall_time_s:.2f}s"
    )
    if args.record:
        record = record_from_sweep(
            command="sweep",
            sweep=sweep,
            engine=engine,
            wall_time_s=wall_time_s,
            shape=(args.size, args.size, args.size),
        )
        path = record.write(args.record)
        print(f"wrote {path}")
    return 0


def _cmd_list(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    filters = {}
    for item in args.filter:
        key, separator, value = item.partition("=")
        if not separator or not key:
            parser.error(
                f"bad --filter {item!r}; expected KEY=VALUE "
                f"(e.g. sparsity_side=dual)"
            )
        filters[key] = _coerce_metadata_value(value)
    infos = REGISTRY.filter(**filters) if filters else list(REGISTRY)
    rows = [
        [
            info.name,
            str(info.metadata.get("category", "-")),
            str(info.metadata.get("sparsity_side", "-")),
            ", ".join(
                f"{key}={value}"
                for key, value in sorted(info.metadata.items())
                if key not in ("category", "sparsity_side")
            ) or "-",
        ]
        for info in infos
    ]
    print("Registered designs")
    print(R.format_table(
        ["name", "category", "sparsity side", "metadata"], rows
    ))
    print(f"\nArtifacts: {' '.join(ORDER)} (plus 'all')")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import write_report

    write_report(args.output)
    print(f"wrote {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and (argv[0] in ARTIFACTS or argv[0] == "all"):
        argv = ["artifact"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "artifact":
        return _cmd_artifact(args, parser)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "list":
        return _cmd_list(args, parser)
    return _cmd_report(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
