"""Command-line interface: paper artifacts, custom sweeps, run records.

Usage::

    python -m repro artifact <name> [...]   # regenerate paper artifacts
    python -m repro sweep [--designs ...]   # run a custom sparsity grid
    python -m repro sweep --model NAME      # sweep a DNN across designs
    python -m repro sweep --model-file F    # ... or a user-defined one
    python -m repro cache stats|clear       # persistent-cache upkeep
    python -m repro cache merge DIR...      # fan-in sharded cache fills
    python -m repro cache migrate           # convert JSON shards to SQLite
    python -m repro serve [--port N]        # long-lived evaluation service
    python -m repro queue fill [...]        # enqueue a grid for workers
    python -m repro queue stats|requeue     # job-queue upkeep
    python -m repro worker [--queue DB]     # claim + evaluate until drained
    python -m repro list [--filter k=v]     # registered designs/artifacts
    python -m repro report [--output PATH]  # EXPERIMENTS.md record
    python -m repro lint [PATHS]            # repo invariant checker

Bare artifact names keep working as shorthand: ``python -m repro
fig13`` and ``python -m repro all`` mean ``artifact fig13`` / ``artifact
all``. Artifacts: ``tables``, ``fig2``, ``fig6``, ``fig13``, ``fig14``,
``fig15``, ``fig16``, ``fig17``.

Artifacts are declarative specs in the
:data:`~repro.eval.artifacts.ARTIFACTS` registry: each computes a
structured result and renders it as ``--format text`` (default, the
historical output), ``json``, ``csv``, or ``md`` (composable markdown
sections — ``repro report --format md`` stacks them into an
EXPERIMENTS.md). One invocation builds a single
:class:`~repro.eval.engine.EngineContext` — estimator, memoizing
:class:`~repro.eval.engine.SweepEngine`, ``--jobs``/``--backend``
execution policy, optional ``--cache-dir`` persistent cache — and runs
a :class:`~repro.eval.artifacts.RunPlan` over it, so ``repro all``
evaluates each unique (design, workload) pair exactly once, in
parallel if asked, and resumes from disk across runs. ``--stream``
consumes the plan's event stream instead of the batch view: each
artifact prints the moment its compute returns, with its own scoped
cache-hit/evaluation counts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import closing
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.accelerators import REGISTRY, main_design_names
from repro.dnn.models import (
    get_model,
    load_model_file,
    model_names,
    register_model,
)
from repro.energy.estimator import Estimator
from repro.errors import (
    CacheError,
    EvaluationError,
    LintError,
    LintUsageError,
    QueueError,
    WorkloadError,
)
from repro.eval import cache as cache_mod
from repro.eval import experiments as E
from repro.eval import queue as queue_mod
from repro.eval import reporting as R
from repro.eval.artifacts import (
    ARTIFACTS,
    FORMATS,
    ArtifactFinished,
    RunFinished,
    RunPlan,
    compute_artifacts,
    finished_event_line,
    stats_by_artifact,
)
from repro.eval.engine import (
    BACKENDS,
    GEOMEAN_METRICS,
    EngineContext,
)
from repro.eval.runs import (
    record_from_artifacts,
    record_from_model_sweep,
    record_from_sweep,
    record_from_worker,
)
from repro.serve.server import DEFAULT_PORT as SERVE_DEFAULT_PORT
from repro.serve.server import serve as run_serve

#: Paper order for `all` and the report (= registry registration order).
ORDER = list(ARTIFACTS.names())

#: Geomean-able sweep metrics the `sweep` subcommand can render.
SWEEP_METRICS = GEOMEAN_METRICS


def _render_outputs(results: Dict[str, Any], fmt: str) -> str:
    """Join rendered artifacts for printing.

    ``text`` stacks sections exactly as the CLI always has; ``json``
    emits one object keyed by artifact name; ``csv`` stacks per-
    artifact tables behind ``# artifact:`` marker lines.
    """
    if fmt == "json":
        return json.dumps(
            {name: result.to_payload() for name, result in results.items()},
            indent=2,
        )
    sections = []
    for name, result in results.items():
        rendered = ARTIFACTS[name].render(result, fmt)
        if fmt == "csv":
            rendered = f"# artifact: {name}\n{rendered}"
        sections.append(rendered)
    return "\n\n".join(sections)


def run_artifacts(
    names: List[str],
    ctx: "EngineContext | None | object" = None,
    jobs: int = 1,
    fmt: str = "text",
) -> str:
    """Render the named artifacts off one shared context.

    ``ctx`` accepts anything
    :meth:`~repro.eval.engine.EngineContext.coerce` does (``None``, an
    estimator, an engine, a context).
    """
    ctx = EngineContext.coerce(ctx)
    ctx.engine.jobs = max(ctx.engine.jobs, jobs)
    return _render_outputs(compute_artifacts(names, ctx), fmt)


def _parse_degrees(text: str) -> Tuple[float, ...]:
    try:
        degrees = tuple(
            float(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated sparsity degrees, got {text!r}"
        )
    if not degrees:
        raise argparse.ArgumentTypeError("empty degree list")
    for degree in degrees:
        if not 0.0 <= degree < 1.0:
            raise argparse.ArgumentTypeError(
                f"sparsity degrees must be in [0, 1), got {degree}"
            )
    return degrees


def _parse_names(text: str) -> Tuple[str, ...]:
    names = tuple(dict.fromkeys(
        part.strip() for part in text.split(",") if part.strip()
    ))
    if not names:
        raise argparse.ArgumentTypeError("empty design list")
    return names


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _port(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be 0-65535, got {value}"
        )
    return value


def _coerce_metadata_value(text: str) -> object:
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The shared EngineContext knobs (artifact + sweep subcommands)."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel evaluation workers (default 1)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker backend for --jobs > 1 (default thread; the "
        "analytical models are pure, so processes are safe)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist (design, workload) evaluations under DIR and "
        "reuse them across runs (also: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-backend", choices=cache_mod.CACHE_BACKENDS,
        default=cache_mod.DEFAULT_CACHE_BACKEND,
        help="cache storage backend (default auto: an existing .db "
        "wins, large JSON files upgrade to sqlite, else json; sqlite "
        "flushes only dirty entries, the right choice at 10k+ entries)",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="write a JSON run record of this invocation",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate HighLight (MICRO 2023) paper artifacts "
        "and run custom sparsity sweeps.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")
    sub.required = True

    artifact = sub.add_parser(
        "artifact",
        help="regenerate paper figures/tables (shorthand: bare names)",
    )
    artifact.add_argument(
        "names",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        metavar="name",
        help="artifact name(s), or 'all' for the paper order",
    )
    artifact.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="output format (default text; json/csv render each "
        "artifact's structured payload; md emits composable markdown "
        "sections)",
    )
    artifact.add_argument(
        "--stream", action="store_true",
        help="print each artifact the moment its compute returns, "
        "with its own cache-hit/evaluation counts on stderr (same "
        "total stdout as batch mode; --format json streams one "
        "object per artifact)",
    )
    _add_engine_options(artifact)
    artifact.add_argument(
        "--output",
        default=None,
        help="(report mode only — rejected here with an explicit error)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a custom design x sparsity grid, or a "
        "registered DNN with --model",
    )
    sweep.add_argument(
        "--designs", type=_parse_names, default=None, metavar="A,B,...",
        help="comma-separated registered design names "
        "(default: the five main-evaluation designs)",
    )
    sweep.add_argument(
        "--model", default=None, metavar="NAME",
        help="sweep a registered DNN instead of a synthetic grid "
        f"(one of: {', '.join(model_names())})",
    )
    sweep.add_argument(
        "--model-file", default=None, metavar="PATH",
        help="register a user-defined JSON layer table at runtime and "
        "sweep it (see README for the schema)",
    )
    sweep.add_argument(
        "--profile", default=None, metavar="PATH",
        help="(--model/--model-file only) per-layer sparsity profile: "
        "a JSON object mapping layer names to degrees (or "
        '{"pattern": "G:H"}) that overrides --degrees per layer',
    )
    sweep.add_argument(
        "--degrees", type=_parse_degrees, default=None, metavar="D,D,...",
        help="(--model only) weight-sparsity degrees for every design "
        "(default: each design's Fig. 15 ladder)",
    )
    sweep.add_argument(
        "--a-degrees", type=_parse_degrees,
        default=None, metavar="D,D,...",
        help="operand-A sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--b-degrees", type=_parse_degrees,
        default=None, metavar="D,D,...",
        help="operand-B sparsity degrees (default: the Fig. 13 grid)",
    )
    sweep.add_argument(
        "--size", type=int, default=None, metavar="N",
        help="cubic GEMM side M=K=N (default 1024)",
    )
    sweep.add_argument(
        "--metric", choices=SWEEP_METRICS, default="edp",
        help="metric to render (default edp)",
    )
    _add_engine_options(sweep)

    cache = sub.add_parser(
        "cache", help="inspect, clear, merge, or migrate the "
        "persistent evaluation cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "merge", "migrate"),
        help="'stats' prints per-fingerprint entry counts; 'clear' "
        "deletes all cache files; 'merge' folds the DIR shards into "
        "--cache-dir (same estimator fingerprint required); 'migrate' "
        "converts JSON cache files to SQLite in place",
    )
    cache.add_argument(
        "dirs", nargs="*", metavar="DIR",
        help="(merge only) source cache directories to merge",
    )
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory to operate on (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro-highlight)",
    )
    cache.add_argument(
        "--cache-backend", choices=cache_mod.CACHE_BACKENDS,
        default=None,
        help="(merge only) storage backend for the merged destination "
        "file (default auto: keep the destination's current format, "
        "else sqlite for large merges)",
    )
    cache.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="cache_format",
        help="(stats only) 'json' prints the machine-readable stats "
        "document — the same payload the serve API embeds under "
        "\"cache\" in GET /v1/stats",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived evaluation service: POST JSON "
        "artifact/sweep specs, stream NDJSON events off one shared "
        "warm cache (identical concurrent requests coalesce into a "
        "single evaluation)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=_port, default=SERVE_DEFAULT_PORT,
        metavar="PORT",
        help=f"TCP port (default {SERVE_DEFAULT_PORT}; 0 binds "
        f"any free port — the bound address is announced on stderr)",
    )
    serve.add_argument(
        "--max-concurrent", type=_positive_int, default=1, metavar="N",
        help="executing runs in flight at once (default 1: runs queue "
        "and per-artifact stats deltas stay exact; coalesced joiners "
        "never occupy a slot)",
    )
    serve.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel evaluation workers within each run (default 1)",
    )
    serve.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker backend for --jobs > 1 (default thread)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist evaluations under DIR — the service's shared "
        "warm cache across requests and restarts (also: "
        "$REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--cache-backend", choices=cache_mod.CACHE_BACKENDS,
        default=cache_mod.DEFAULT_CACHE_BACKEND,
        help="cache storage backend (default auto)",
    )
    serve.add_argument(
        "--record", default=None, metavar="DIR",
        help="write one schema-v4 run record per executed request "
        "under DIR (coalesced joiners share the executing request's "
        "record)",
    )

    queue = sub.add_parser(
        "queue",
        help="fill and inspect the distributed-fill job queue "
        "(cells that N 'repro worker' processes claim and evaluate)",
    )
    queue.add_argument(
        "action", choices=("fill", "stats", "requeue"),
        help="'fill' enumerates a sweep grid into the queue (skipping "
        "already-cached cells); 'stats' prints per-status counts and "
        "live claims; 'requeue' returns failed (and, with --stale, "
        "stale-claimed) cells to pending",
    )
    queue.add_argument(
        "--queue", default=None, metavar="DB", dest="queue_db",
        help="queue database path (default: <cache-dir>/"
        "<estimator fingerprint>.db — the persistent cache file "
        "itself, which the queue shares)",
    )
    queue.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory holding the queue database (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-highlight)",
    )
    queue.add_argument(
        "--designs", type=_parse_names, default=None, metavar="A,B,...",
        help="(fill) design names (default: the five main-evaluation "
        "designs)",
    )
    queue.add_argument(
        "--a-degrees", type=_parse_degrees, default=None,
        metavar="D,D,...",
        help="(fill) operand-A sparsity degrees (default: the Fig. 13 "
        "grid)",
    )
    queue.add_argument(
        "--b-degrees", type=_parse_degrees, default=None,
        metavar="D,D,...",
        help="(fill) operand-B sparsity degrees (default: the Fig. 13 "
        "grid)",
    )
    queue.add_argument(
        "--size", type=int, default=None, metavar="N",
        help="(fill) cubic GEMM side M=K=N (default 1024)",
    )
    queue.add_argument(
        "--model", default=None, metavar="NAME",
        help="(fill) enqueue a registered DNN's sweep cells instead "
        f"of a synthetic grid (one of: {', '.join(model_names())})",
    )
    queue.add_argument(
        "--degrees", type=_parse_degrees, default=None, metavar="D,D,...",
        help="(fill --model) weight-sparsity degrees for every design "
        "(default: each design's Fig. 15 ladder)",
    )
    queue.add_argument(
        "--profile", default=None, metavar="PATH",
        help="(fill --model) per-layer sparsity profile JSON",
    )
    queue.add_argument(
        "--stale", action="store_true",
        help="(requeue) also return stale-claimed cells (expired "
        "leases) to pending, not just failed ones",
    )

    worker = sub.add_parser(
        "worker",
        help="claim and evaluate queued cells until the queue drains "
        "(run N of these, one per machine/core, against one queue DB)",
    )
    worker.add_argument(
        "--queue", default=None, metavar="DB", dest="queue_db",
        help="queue database path (default: <cache-dir>/"
        "<estimator fingerprint>.db)",
    )
    worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory holding the queue database (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-highlight)",
    )
    worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable identity for claims and run records "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--batch-size", type=_positive_int,
        default=queue_mod.DEFAULT_BATCH_SIZE, metavar="N",
        help="cells claimed per batch "
        f"(default {queue_mod.DEFAULT_BATCH_SIZE})",
    )
    worker.add_argument(
        "--lease", type=float, default=queue_mod.DEFAULT_LEASE_S,
        metavar="S",
        help="seconds a claim stays valid without a heartbeat renewal "
        f"(default {queue_mod.DEFAULT_LEASE_S:g}; a crashed worker's "
        "cells are reclaimed after this long)",
    )
    worker.add_argument(
        "--poll", type=float, default=1.0, metavar="S",
        help="seconds between claim attempts while other workers hold "
        "the remaining cells (default 1)",
    )
    worker.add_argument(
        "--max-batches", type=_positive_int, default=None, metavar="N",
        help="exit after N batches even if cells remain (bounded "
        "shifts; default: run until drained)",
    )
    worker.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="parallel evaluation workers within each batch (default 1)",
    )
    worker.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker backend for --jobs > 1 (default thread)",
    )
    worker.add_argument(
        "--record", default=None, metavar="PATH",
        help="write a JSON run record of this worker's shift",
    )

    lister = sub.add_parser(
        "list", help="list registered designs and available artifacts"
    )
    lister.add_argument(
        "--filter", action="append", default=[], metavar="KEY=VALUE",
        help="only designs whose registry metadata matches (repeatable)",
    )

    report = sub.add_parser(
        "report", help="write the EXPERIMENTS.md paper-vs-measured record"
    )
    report.add_argument(
        "--output", default="EXPERIMENTS.md", metavar="PATH",
        help="destination path (default EXPERIMENTS.md)",
    )
    report.add_argument(
        "--format", choices=("full", "md"), default="full",
        dest="report_format",
        help="'full' (default) writes the annotated paper-vs-measured "
        "record; 'md' composes the document from each artifact's "
        "registry markdown section",
    )
    _add_engine_options(report)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checker over the repo's sources",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids or names to run "
        "(default: every registered rule)",
    )
    lint.add_argument(
        "--exclude-rules", default=None, metavar="IDS",
        help="comma-separated rule ids or names to skip",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="lint_format",
        help="findings as a table (default) or a JSON document",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in FILE (see --write-baseline)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to --baseline FILE and exit 0",
    )
    lint.add_argument(
        "--plugins", action="append", default=[], metavar="DIR",
        help="load additional @rule modules from DIR (repeatable)",
    )
    lint.add_argument(
        "--on-collision", choices=("raise", "skip", "replace"),
        default="raise",
        help="what a plugin rule that reuses a built-in id/name does "
        "(default raise)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _resolve_cache_dir(
    explicit: Optional[str], fallback_to_default: bool = False
) -> Optional[str]:
    """``--cache-dir`` wins, then ``$REPRO_CACHE_DIR``, then (for the
    ``cache`` subcommand) the default location."""
    if explicit:
        return explicit
    env = os.environ.get(cache_mod.CACHE_DIR_ENV)
    if env:
        return env
    if fallback_to_default:
        return str(cache_mod.default_cache_dir())
    return None


def _build_context(args: argparse.Namespace) -> EngineContext:
    """The invocation's single EngineContext, from the CLI knobs."""
    return EngineContext.create(
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=_resolve_cache_dir(args.cache_dir),
        cache_backend=args.cache_backend,
        record=args.record,
    )


def _print_streamed_artifact(event: ArtifactFinished, fmt: str) -> None:
    """One artifact's render, the moment its compute returned.

    Text-like formats reproduce the batch layout exactly (sections
    separated by one blank line), so piping ``--stream`` output is
    byte-identical to batch mode; ``json`` streams one self-contained
    object per artifact (payload + scoped stats) instead of batch
    mode's single keyed document.
    """
    if fmt == "json":
        # The shared encoder keeps this byte-identical to the lines
        # `repro serve` streams for the same artifacts.
        print(finished_event_line(event), flush=True)
        return
    rendered = ARTIFACTS[event.name].render(event.result, fmt)
    if fmt == "csv":
        rendered = f"# artifact: {event.name}\n{rendered}"
    if event.index:
        print()
    print(rendered, flush=True)


def _stream_stats_line(event: ArtifactFinished) -> str:
    stats = event.stats
    return (
        f"[{event.index + 1}/{event.total}] {event.name}: "
        f"{stats.evaluations} evaluations, {stats.hits} memory hits, "
        f"{stats.disk_hits} disk hits in {event.wall_time_s:.2f}s"
    )


def _cmd_artifact(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    if args.output is not None:
        parser.error(
            "--output is only valid with the 'report' subcommand "
            "(artifacts print to stdout)"
        )
    # Dedup repeated names (first occurrence wins): results are
    # name-keyed, so batch mode always rendered a repeat once —
    # streaming and per-artifact records must agree with it.
    names = (
        ORDER if "all" in args.names
        else list(dict.fromkeys(args.names))
    )
    ctx = _build_context(args)
    # closing(): an interrupt mid-grid must still flush completed
    # evaluations to the persistent cache, not silently discard them.
    with closing(ctx.engine):
        plan = RunPlan.from_names(names, ctx)
        finished: List[ArtifactFinished] = []
        final: Optional[RunFinished] = None
        for event in plan.events():
            if isinstance(event, ArtifactFinished):
                finished.append(event)
                if args.stream:
                    _print_streamed_artifact(event, args.fmt)
                    # stderr: stdout stays pure renderer output.
                    print(_stream_stats_line(event), file=sys.stderr)
            elif isinstance(event, RunFinished):
                final = event
        if final is None:  # events() always ends with one
            raise EvaluationError(
                "run plan produced no RunFinished event"
            )
        if not args.stream:
            print(_render_outputs(final.results, args.fmt))
        if ctx.record_path:
            record = record_from_artifacts(
                command="artifact",
                results=final.results,
                engine=ctx.engine,
                wall_time_s=final.wall_time_s,
                artifact_stats=stats_by_artifact(finished),
            )
            path = record.write(ctx.record_path)
            # stderr: stdout stays pure renderer output (json/csv
            # piping).
            print(f"wrote {path}", file=sys.stderr)
        return 0


def _cmd_sweep_model(args: argparse.Namespace,
                     parser: argparse.ArgumentParser,
                     model=None) -> int:
    try:
        # --model-file passes its model directly: re-resolving by name
        # could hit a case-insensitive builtin (e.g. "resnet50").
        if model is None:
            model = get_model(args.model)
        profile = (
            E.load_profile(args.profile)
            if args.profile is not None else None
        )
    except WorkloadError as error:
        parser.error(str(error))
    design_names = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    ctx = _build_context(args)
    with closing(ctx.engine):
        start = time.perf_counter()
        try:
            sweep = E.sweep_model(
                model,
                designs=design_names,
                degrees=args.degrees,
                ctx=ctx,
                profile=profile,
            )
        except WorkloadError as error:
            parser.error(str(error))
        wall_time_s = time.perf_counter() - start
        print(R.render_model_sweep(sweep))
        stats = ctx.engine.stats
        print(
            f"\n{len(design_names)} designs on {model.name}, "
            f"jobs={args.jobs} ({args.backend}): "
            f"{stats.evaluations} workloads evaluated, "
            f"{stats.hits} memory hits, {stats.disk_hits} disk hits "
            f"in {wall_time_s:.2f}s"
        )
        if ctx.record_path:
            record = record_from_model_sweep(
                command="sweep-model",
                sweep=sweep,
                engine=ctx.engine,
                wall_time_s=wall_time_s,
            )
            path = record.write(ctx.record_path)
            print(f"wrote {path}")
        return 0


def _cmd_sweep(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    design_names = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    for name in design_names:
        if name not in REGISTRY:
            parser.error(
                f"unknown design {name!r}; run 'repro list' for the "
                f"registered names"
            )
    loaded_model = None
    if args.model_file is not None:
        if args.model is not None:
            parser.error(
                "--model and --model-file are mutually exclusive"
            )
        try:
            # replace=True only re-registers *runtime* models (loading
            # the same file twice in one process is legitimate);
            # shadowing a builtin like ResNet50 — any case variant —
            # is refused inside register_model and lands here as a
            # loud parser error.
            loaded_model = register_model(
                load_model_file(args.model_file), replace=True
            )
        except WorkloadError as error:
            parser.error(str(error))
        args.model = loaded_model.name
    if args.model is not None:
        for flag, value in (
            ("--a-degrees", args.a_degrees),
            ("--b-degrees", args.b_degrees),
            ("--size", args.size),
        ):
            if value is not None:
                parser.error(
                    f"{flag} applies to synthetic grids; a --model "
                    f"sweep takes its shapes from the network's layers "
                    f"(use --degrees for the weight-sparsity ladder)"
                )
        return _cmd_sweep_model(args, parser, model=loaded_model)
    if args.degrees is not None:
        parser.error(
            "--degrees applies to --model sweeps; use --a-degrees/"
            "--b-degrees for synthetic grids"
        )
    if args.profile is not None:
        parser.error(
            "--profile applies to --model/--model-file sweeps (it "
            "maps layer names to degrees)"
        )
    a_degrees = args.a_degrees if args.a_degrees is not None else E.A_DEGREES
    b_degrees = args.b_degrees if args.b_degrees is not None else E.B_DEGREES
    size = args.size if args.size is not None else 1024
    ctx = _build_context(args)
    with closing(ctx.engine):
        start = time.perf_counter()
        sweep = ctx.engine.sweep(
            designs=design_names,
            a_degrees=a_degrees,
            b_degrees=b_degrees,
            m=size, k=size, n=size,
        )
        wall_time_s = time.perf_counter() - start
        try:
            rendered = R.render_sweep(sweep, args.metric)
        except EvaluationError as error:
            # E.g. S2TA as baseline on a grid with a dense-dense cell
            # it cannot process: normalization has nothing to divide
            # by.
            parser.error(
                f"cannot normalize this grid: {error}. Include TC in "
                f"--designs or restrict the degree grids to cells the "
                f"baseline ({sweep.baseline}) supports."
            )
        print(rendered)
        stats = ctx.engine.stats
        print(
            f"\n{len(design_names)} designs x {len(a_degrees)}x"
            f"{len(b_degrees)} degree grid @ {size}^3, "
            f"jobs={args.jobs} ({args.backend}): "
            f"{stats.evaluations} workloads evaluated, "
            f"{stats.hits} memory hits, {stats.disk_hits} disk hits "
            f"in {wall_time_s:.2f}s"
        )
        if ctx.record_path:
            record = record_from_sweep(
                command="sweep",
                sweep=sweep,
                engine=ctx.engine,
                wall_time_s=wall_time_s,
                shape=(size, size, size),
            )
            path = record.write(ctx.record_path)
            print(f"wrote {path}")
        return 0


def _cmd_cache(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    directory = _resolve_cache_dir(
        args.cache_dir, fallback_to_default=True
    )
    if args.cache_format != "text" and args.action != "stats":
        # 'cache clear --format json' would otherwise exit 0 while
        # printing the text summary anyway.
        parser.error(
            f"--format only applies to 'cache stats', not "
            f"'cache {args.action}'"
        )
    if args.action == "merge":
        if not args.dirs:
            parser.error(
                "cache merge needs at least one source DIR "
                "(merged into --cache-dir)"
            )
        backend = (
            args.cache_backend if args.cache_backend is not None
            else cache_mod.DEFAULT_CACHE_BACKEND
        )
        try:
            summary = cache_mod.merge_cache_dirs(
                args.dirs, directory, backend=backend
            )
        except CacheError as error:
            parser.error(str(error))
        print(
            f"merged {len(summary['sources'])} shard(s) into "
            f"{summary['path']} ({summary['backend']}): "
            f"{summary['total_entries']} entries "
            f"({summary['new_entries']} new)"
        )
        return 0
    if args.dirs:
        parser.error(
            f"DIR arguments only apply to 'cache merge', not "
            f"'cache {args.action}'"
        )
    if args.cache_backend is not None:
        # 'cache migrate --cache-backend json' would otherwise exit 0
        # while converting to sqlite anyway.
        parser.error(
            f"--cache-backend only applies to 'cache merge' (it picks "
            f"the merged destination format), not "
            f"'cache {args.action}'"
        )
    if args.action == "migrate":
        try:
            summary = cache_mod.migrate_cache_dir(directory)
        except CacheError as error:
            parser.error(str(error))
        if not summary["files"] and not summary["reencoded_rows"]:
            print(f"no cache files to migrate in {directory}")
            return 0
        for item in summary["files"]:
            print(
                f"migrated {item['fingerprint']}.json -> "
                f"{item['path']} ({item['entries']} entries)"
            )
        if summary["files"]:
            print(
                f"migrated {len(summary['files'])} file(s), "
                f"{summary['total_entries']} entries"
            )
        if summary["reencoded_rows"]:
            print(
                f"re-encoded {summary['reencoded_rows']} v1 row(s) "
                f"as codec v2"
            )
        return 0
    if args.action == "clear":
        removed = cache_mod.clear_cache(directory)
        print(f"removed {removed} cache file(s) from {directory}")
        return 0
    stats = cache_mod.cache_stats(directory)
    if args.cache_format == "json":
        # The machine-readable document monitoring scrapes — exactly
        # what the serve API's GET /v1/stats embeds under "cache".
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache directory: {stats['directory']}")
    if not stats["files"]:
        print("  (empty)")
        return 0
    rows = [
        [f["file"], f["backend"], str(f["entries"]), str(f["bytes"])]
        for f in stats["files"]
    ]
    print(R.format_table(["file", "backend", "entries", "bytes"], rows))
    for f in stats["files"]:
        queue = f.get("queue")
        if queue:
            print(
                f"  queue in {f['file']}: {queue['pending']} pending, "
                f"{queue['claimed']} claimed ({queue['stale']} stale), "
                f"{queue['done']} done, {queue['failed']} failed"
            )
    print(f"total entries: {stats['total_entries']}")
    return 0


def _cmd_serve(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    ctx = EngineContext.create(
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=_resolve_cache_dir(args.cache_dir),
        cache_backend=args.cache_backend,
    )
    # closing(): the service closes the engine on its own shutdown
    # path; this is the belt-and-braces close for failures before the
    # loop starts (both are idempotent).
    with closing(ctx.engine):
        return run_serve(
            ctx,
            host=args.host,
            port=args.port,
            max_concurrent=args.max_concurrent,
            record_dir=args.record,
        )


def _queue_location(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    require_fingerprint: bool,
) -> Tuple[Path, Optional[str]]:
    """Resolve the queue database path and expected fingerprint.

    ``fill`` and ``worker`` enumerate/evaluate cells for *this*
    build's cost model, so their queue file must be the current
    estimator fingerprint's (``require_fingerprint``); ``stats`` and
    ``requeue`` are pure queue upkeep and accept any queue file.
    """
    fingerprint = cache_mod.estimator_fingerprint(Estimator())
    if args.queue_db:
        path = Path(args.queue_db)
        if require_fingerprint and path.stem != fingerprint:
            parser.error(
                f"queue database {path} is not this build's estimator "
                f"fingerprint ({fingerprint}); the queue must share "
                f"the cost model's cache file so results land where "
                f"workers and sweeps look for them"
            )
        return path, (fingerprint if require_fingerprint else None)
    directory = _resolve_cache_dir(
        args.cache_dir, fallback_to_default=True
    )
    path = queue_mod.queue_db_path(directory, fingerprint)
    return path, (fingerprint if require_fingerprint else None)


def _queue_fill_pairs(args: argparse.Namespace,
                      parser: argparse.ArgumentParser):
    designs = (
        tuple(args.designs) if args.designs else main_design_names()
    )
    for name in designs:
        if name not in REGISTRY:
            parser.error(
                f"unknown design {name!r}; run 'repro list' for the "
                f"registered names"
            )
    if args.model is not None:
        for flag, value in (
            ("--a-degrees", args.a_degrees),
            ("--b-degrees", args.b_degrees),
            ("--size", args.size),
        ):
            if value is not None:
                parser.error(
                    f"{flag} applies to synthetic grids; a --model "
                    f"fill takes its shapes from the network's layers"
                )
        try:
            model = get_model(args.model)
            profile = (
                E.load_profile(args.profile)
                if args.profile is not None else None
            )
            return queue_mod.model_fill_pairs(
                model, designs, degrees=args.degrees, profile=profile
            )
        except WorkloadError as error:
            parser.error(str(error))
    for flag, value in (
        ("--degrees", args.degrees),
        ("--profile", args.profile),
    ):
        if value is not None:
            parser.error(f"{flag} applies to 'queue fill --model'")
    size = args.size if args.size is not None else 1024
    return queue_mod.grid_fill_pairs(
        designs,
        args.a_degrees if args.a_degrees is not None else E.A_DEGREES,
        args.b_degrees if args.b_degrees is not None else E.B_DEGREES,
        m=size, k=size, n=size,
    )


def _print_queue_stats(store: queue_mod.JobStore) -> None:
    stats = store.stats()
    print(f"queue: {store.path}")
    print(
        f"  {stats.pending} pending, {stats.claimed} claimed "
        f"({stats.stale} stale), {stats.done} done, "
        f"{stats.failed} failed ({stats.total} total)"
    )
    for worker_id, count in sorted(store.workers().items()):
        print(f"  claimed by {worker_id}: {count}")


def _cmd_queue(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    fill_only = (
        ("--designs", args.designs),
        ("--a-degrees", args.a_degrees),
        ("--b-degrees", args.b_degrees),
        ("--size", args.size),
        ("--model", args.model),
        ("--degrees", args.degrees),
        ("--profile", args.profile),
    )
    if args.action != "fill":
        for flag, value in fill_only:
            if value is not None:
                parser.error(
                    f"{flag} only applies to 'queue fill', not "
                    f"'queue {args.action}'"
                )
    if args.stale and args.action != "requeue":
        parser.error(
            f"--stale only applies to 'queue requeue', not "
            f"'queue {args.action}'"
        )
    path, fingerprint = _queue_location(
        args, parser, require_fingerprint=args.action == "fill"
    )
    if args.action != "fill" and not path.exists():
        parser.error(
            f"no queue database at {path}; run 'repro queue fill' first"
        )
    if args.action == "fill":
        pairs = _queue_fill_pairs(args, parser)
    try:
        with queue_mod.JobStore(path, fingerprint) as store:
            if args.action == "fill":
                summary = store.fill(pairs)
                print(
                    f"queued {summary.added} cell(s) into {path} "
                    f"({summary.skipped_cached} already cached, "
                    f"{summary.skipped_queued} already queued)"
                )
            elif args.action == "requeue":
                moved = store.requeue(failed=True, stale=args.stale)
                which = "failed/stale" if args.stale else "failed"
                print(f"requeued {moved} {which} cell(s)")
            _print_queue_stats(store)
    except QueueError as error:
        parser.error(str(error))
    return 0


def _cmd_worker(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    path, fingerprint = _queue_location(
        args, parser, require_fingerprint=True
    )
    if not path.exists():
        parser.error(
            f"no queue database at {path}; run 'repro queue fill' first"
        )
    worker_id = (
        args.worker_id if args.worker_id
        else queue_mod.default_worker_id()
    )
    # The worker's persistent cache IS the queue database: sqlite
    # backend, cache dir = the queue file's directory, so results are
    # durable in the same file the queue rows live in.
    ctx = EngineContext.create(
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=str(path.parent),
        cache_backend="sqlite",
        record=args.record,
    )
    interrupted = False
    batches: List[Any] = []
    start = time.perf_counter()
    with closing(ctx.engine):
        try:
            store = queue_mod.JobStore(path, fingerprint)
        except QueueError as error:
            parser.error(str(error))
        with store:
            try:
                for batch in ctx.engine.run_queue(
                    store,
                    worker_id=worker_id,
                    batch_size=args.batch_size,
                    lease_s=args.lease,
                    poll_s=args.poll,
                    max_batches=args.max_batches,
                ):
                    batches.append(batch)
                    stats = batch.stats
                    print(
                        f"[{worker_id}] batch {batch.index}: "
                        f"{batch.completed}/{batch.claimed} completed, "
                        f"{stats.evaluations} evaluated, "
                        f"{stats.disk_hits} disk hits",
                        file=sys.stderr,
                    )
            except KeyboardInterrupt:
                # Hand unfinished claims straight back rather than
                # making the fleet wait out the lease.
                released = store.release(worker_id)
                print(
                    f"[{worker_id}] interrupted; released {released} "
                    f"claimed cell(s) back to pending",
                    file=sys.stderr,
                )
                interrupted = True
            except EvaluationError as error:
                print(
                    f"[{worker_id}] batch failed: {error}",
                    file=sys.stderr,
                )
                return 1
            wall_time_s = time.perf_counter() - start
            final = store.stats()
            claimed = sum(batch.claimed for batch in batches)
            evaluated = sum(
                batch.stats.evaluations for batch in batches
            )
            print(
                f"[{worker_id}] {len(batches)} batch(es), {claimed} "
                f"cell(s), {evaluated} evaluated in {wall_time_s:.2f}s; "
                f"queue: {final.pending} pending, {final.claimed} "
                f"claimed, {final.done} done, {final.failed} failed"
            )
            if ctx.record_path:
                record = record_from_worker(
                    command="worker",
                    queue_path=path,
                    worker_id=worker_id,
                    batches=batches,
                    final_stats=final.as_dict(),
                    engine=ctx.engine,
                    wall_time_s=wall_time_s,
                )
                print(f"wrote {record.write(ctx.record_path)}",
                      file=sys.stderr)
    return 130 if interrupted else 0


def _cmd_list(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    filters = {}
    for item in args.filter:
        key, separator, value = item.partition("=")
        if not separator or not key:
            parser.error(
                f"bad --filter {item!r}; expected KEY=VALUE "
                f"(e.g. sparsity_side=dual)"
            )
        filters[key] = _coerce_metadata_value(value)
    infos = REGISTRY.filter(**filters) if filters else list(REGISTRY)
    rows = [
        [
            info.name,
            str(info.metadata.get("category", "-")),
            str(info.metadata.get("sparsity_side", "-")),
            ", ".join(
                f"{key}={value}"
                for key, value in sorted(info.metadata.items())
                if key not in ("category", "sparsity_side")
            ) or "-",
        ]
        for info in infos
    ]
    print("Registered designs")
    print(R.format_table(
        ["name", "category", "sparsity side", "metadata"], rows
    ))
    print("\nArtifacts (formats: " + ", ".join(FORMATS) + ")")
    print(R.format_table(
        ["name", "title"],
        [[info.name, info.title] for info in ARTIFACTS.infos()],
    ))
    print("(plus 'all' for the paper order)")
    print(f"\nModels (sweep --model): {' '.join(model_names())}")
    return 0


def _cmd_report(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    from repro.eval.report import run_markdown_report, write_report

    if args.report_format == "full" and args.record:
        parser.error(
            "--record applies to 'report --format md' (the full "
            "report has no structured artifact results to record)"
        )
    ctx = _build_context(args)
    with closing(ctx.engine):
        if args.report_format == "md":
            document, outcome = run_markdown_report(ctx, ORDER)
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(document)
            if ctx.record_path:
                record = record_from_artifacts(
                    command="report",
                    results=outcome.results,
                    engine=ctx.engine,
                    wall_time_s=outcome.wall_time_s,
                    artifact_stats=outcome.artifact_stats(),
                )
                print(f"wrote {record.write(ctx.record_path)}",
                      file=sys.stderr)
        else:
            write_report(args.output, ctx)
        print(f"wrote {args.output}")
        return 0


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _cmd_lint(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from repro import analysis

    try:
        # Plugins register into a per-invocation clone so a bad plugin
        # (or --on-collision replace) can never contaminate the
        # process-wide registry for later in-process calls.
        registry = analysis.RULES.clone()
        for directory in args.plugins:
            analysis.load_plugins(
                directory, registry=registry,
                on_collision=args.on_collision,
            )
        if args.list_rules:
            rows = [
                [
                    info.id,
                    info.name,
                    info.category,
                    info.severity,
                    "yes" if info.fixable else "no",
                ]
                for info in registry.infos()
            ]
            print(R.format_table(
                ("id", "name", "category", "severity", "fixable"), rows
            ))
            return 0
        include = _split_rule_list(args.rules)
        exclude = _split_rule_list(args.exclude_rules)
        if args.write_baseline:
            if args.baseline is None:
                raise LintUsageError(
                    "--write-baseline needs --baseline FILE as the "
                    "destination"
                )
            result = analysis.lint_paths(
                args.paths, rules=include, exclude=exclude,
                registry=registry,
            )
            count = analysis.write_baseline(
                args.baseline, result.findings
            )
            print(f"wrote {count} finding(s) to {args.baseline}")
            return 0
        baseline = (
            analysis.load_baseline(args.baseline)
            if args.baseline is not None else None
        )
        result = analysis.lint_paths(
            args.paths, rules=include, exclude=exclude,
            registry=registry, baseline=baseline,
        )
    except LintUsageError as exc:
        parser.error(str(exc))  # exits 2
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.lint_format == "json":
        print(json.dumps(result.to_payload(), indent=2, sort_keys=True))
    else:
        print(R.render_lint(result))
    return 0 if result.clean else 1


#: Parser built once per process: every choice list in
#: :func:`build_parser` is a module-level constant and argparse parsers
#: are reusable across ``parse_args`` calls, so rebuilding the ~40
#: argument declarations on each in-process ``main()`` call (tests,
#: benchmarks, notebook loops) is pure overhead.
_PARSER: Optional[argparse.ArgumentParser] = None


def _shared_parser() -> argparse.ArgumentParser:
    global _PARSER
    if _PARSER is None:
        _PARSER = build_parser()
    return _PARSER


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and (argv[0] in ARTIFACTS or argv[0] == "all"):
        argv = ["artifact"] + argv
    parser = _shared_parser()
    args = parser.parse_args(argv)
    if args.command == "artifact":
        return _cmd_artifact(args, parser)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "cache":
        return _cmd_cache(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if args.command == "queue":
        return _cmd_queue(args, parser)
    if args.command == "worker":
        return _cmd_worker(args, parser)
    if args.command == "list":
        return _cmd_list(args, parser)
    if args.command == "lint":
        return _cmd_lint(args, parser)
    return _cmd_report(args, parser)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
