"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro <artifact> [...]
    python -m repro all
    python -m repro report [path]

Artifacts: ``tables``, ``fig2``, ``fig6``, ``fig13``, ``fig14``,
``fig15``, ``fig16``, ``fig17``. ``report`` writes the EXPERIMENTS.md
paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.energy import Estimator
from repro.eval import experiments as E
from repro.eval import reporting as R


def _run_tables(estimator: Estimator) -> str:
    sections = []
    sections.append(
        R.format_table(
            ["category", "design", "sparsity tax", "degree diversity"],
            [
                [r["category"], r["design"], r["sparsity_tax"],
                 r["degree_diversity"]]
                for r in E.table1()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["source", "conventional", "fibertree spec"],
            [
                [r["source"], r["conventional"], r["fibertree"]]
                for r in E.table2()
            ],
        )
    )
    sections.append(
        R.format_table(
            ["design", "patterns"],
            [[r["design"], r["patterns"]] for r in E.table3()]
            + [[E.table3_dsso()["design"], E.table3_dsso()["patterns"]]],
        )
    )
    sections.append(
        R.format_table(
            ["design", "GLB data (KB)", "GLB meta (KB)", "RF", "MACs"],
            [
                [r["design"], str(r["glb_data_kb"]),
                 str(r["glb_meta_kb"]), str(r["rf"]), str(r["macs"])]
                for r in E.table_4()
            ],
        )
    )
    titles = ["Table 1", "Table 2", "Table 3", "Table 4"]
    return "\n\n".join(
        f"{title}\n{section}" for title, section in zip(titles, sections)
    )


def _run_fig13(estimator: Estimator) -> str:
    sweep = E.fig13(estimator)
    parts = [
        R.render_fig13(sweep, metric)
        for metric in ("edp", "energy_pj", "cycles")
    ]
    geomean_tc, max_tc = sweep.gain_over("TC")
    parts.append(
        f"HighLight vs TC: geomean {geomean_tc:.1f}x, "
        f"up to {max_tc:.1f}x (paper: 6.4x / 20.4x)"
    )
    return "\n\n".join(parts)


def _run_fig14(estimator: Estimator) -> str:
    return R.render_fig14(E.fig14(E.fig13(estimator)))


ARTIFACTS: Dict[str, Callable[[Estimator], str]] = {
    "tables": _run_tables,
    "fig2": lambda est: R.render_fig2(E.fig2(est)),
    "fig6": lambda est: R.render_fig6(E.fig6()),
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": lambda est: R.render_fig15(E.fig15(est)),
    "fig16": lambda est: R.render_fig16(E.fig16(est)),
    "fig17": lambda est: R.render_fig17(E.fig17(est)),
}

#: Paper order for `all` and the report.
ORDER = ["tables", "fig2", "fig6", "fig13", "fig14", "fig15", "fig16",
         "fig17"]


def run_artifacts(names: List[str]) -> str:
    estimator = Estimator()
    outputs = []
    for name in names:
        outputs.append(ARTIFACTS[name](estimator))
    return "\n\n".join(outputs)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate HighLight (MICRO 2023) paper artifacts.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "report"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="EXPERIMENTS.md",
        help="output path (report mode only)",
    )
    args = parser.parse_args(argv)

    if args.artifact == "report":
        from repro.eval.report import write_report

        write_report(args.path)
        print(f"wrote {args.path}")
        return 0
    names = ORDER if args.artifact == "all" else [args.artifact]
    print(run_artifacts(names))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
