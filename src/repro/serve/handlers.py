"""Run execution for ``repro serve``: engine work off the event loop.

Handlers here are the blocking halves of the service's endpoints —
each runs on an executor thread (the loop stays free to accept
requests and fan out events) and talks back exclusively through the
:class:`~repro.serve.coalescing.RunBroker`, which owns the
thread-to-loop handoff. Both executors follow the same contract:

* every event line goes through ``broker.publish`` the moment it
  exists (subscribers stream live, late joiners replay);
* failures after the stream head is committed travel as a terminal
  ``{"event": "error", ...}`` line — never a lost connection;
* ``broker.finish`` runs unconditionally, so no subscriber can wait
  on a dead run.

``ArtifactFinished`` lines are encoded by
:func:`repro.eval.artifacts.finished_event_line` — the CLI's exact
``--stream --format json`` encoder — keeping the service's NDJSON
byte-compatible with ``repro all --stream --format json``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import ServeError
from repro.eval import cache as cache_mod
from repro.eval import experiments as E
from repro.serve import protocol
from repro.serve.coalescing import InflightRun
from repro.eval.artifacts import (
    ArtifactFinished,
    ArtifactStarted,
    RunFinished,
    RunPlan,
    finished_event_line,
    stats_by_artifact,
)
from repro.eval.runs import (
    record_from_artifacts,
    record_from_model_sweep,
    record_from_sweep,
)

if TYPE_CHECKING:  # typing-only, avoids a cycle with server
    from repro.serve.server import EvaluationService


def execute_artifacts(
    service: "EvaluationService",
    run: InflightRun,
    spec: protocol.ArtifactsSpec,
) -> None:
    """Run one artifact plan, streaming its events. Executor thread."""
    broker = service.broker
    try:
        plan = RunPlan.from_names(
            spec.names, service.ctx, registry=service.registry
        )
        finished = []
        final: Optional[RunFinished] = None
        for event in plan.events():
            if isinstance(event, ArtifactStarted):
                broker.publish(run, protocol.started_line(event))
            elif isinstance(event, ArtifactFinished):
                finished.append(event)
                broker.publish(run, finished_event_line(event))
            else:
                final = event
                broker.publish(run, protocol.run_finished_line(event))
        if service.record_dir is not None and final is not None:
            record_from_artifacts(
                command="serve-artifacts",
                results=final.results,
                wall_time_s=final.wall_time_s,
                artifact_stats=stats_by_artifact(finished),
                stats=final.stats,
            ).write(service.record_path(run))
    except BaseException as error:
        broker.publish(run, protocol.error_line(error))
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            raise
    finally:
        broker.finish(run)


def execute_sweep(
    service: "EvaluationService",
    run: InflightRun,
    spec: protocol.SweepSpec,
) -> None:
    """Run one sweep, streaming its three events. Executor thread."""
    broker = service.broker
    engine = service.ctx.engine
    try:
        broker.publish(run, protocol.sweep_started_line())
        checkpoint = engine.checkpoint()
        start = time.perf_counter()
        if spec.kind == "model":
            if spec.model is None:  # parse_sweep_spec guarantees it
                raise ServeError("model sweep without a model")
            sweep: Any = E.sweep_model(
                spec.model,
                designs=spec.designs,
                degrees=spec.degrees,
                ctx=service.ctx,
                profile=spec.profile,
            )
        else:
            sweep = engine.sweep(
                designs=spec.designs,
                a_degrees=spec.a_degrees or (),
                b_degrees=spec.b_degrees or (),
                m=spec.size, k=spec.size, n=spec.size,
            )
        # Mirror RunPlan.events(): a served run is durable before it
        # announces completion.
        engine.flush()
        wall_time_s = time.perf_counter() - start
        stats = engine.stats_since(checkpoint)
        broker.publish(
            run, protocol.sweep_finished_line(sweep.to_payload(), stats)
        )
        broker.publish(
            run, protocol.sweep_run_finished_line(stats, wall_time_s)
        )
        if service.record_dir is not None:
            if spec.kind == "model":
                record = record_from_model_sweep(
                    command="serve-sweep", sweep=sweep,
                    wall_time_s=wall_time_s, stats=stats,
                )
            else:
                record = record_from_sweep(
                    command="serve-sweep", sweep=sweep,
                    wall_time_s=wall_time_s, stats=stats,
                    shape=(spec.size, spec.size, spec.size),
                )
            record.write(service.record_path(run))
    except BaseException as error:
        broker.publish(run, protocol.error_line(error))
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            raise
    finally:
        broker.finish(run)


def stats_payload(service: "EvaluationService") -> Dict[str, Any]:
    """The ``GET /v1/stats`` document. Event-loop thread.

    ``engine`` is a consistent snapshot (``checkpoint()`` reads under
    the engine lock); ``cache`` is the exact
    :func:`repro.eval.cache.cache_stats` payload — the same document
    ``repro cache stats --format json`` prints — including per-file
    queue counts when a job queue shares the cache database.
    """
    cache: Optional[Dict[str, Any]] = None
    cache_dir = service.ctx.cache_dir
    if cache_dir is not None:
        cache = cache_mod.cache_stats(cache_dir)
    return {
        "server": {
            "host": service.host,
            "port": service.port,
            "max_concurrent": service.max_concurrent,
            "requests": service.requests,
            **service.broker.counts(),
        },
        "engine": service.ctx.engine.checkpoint().as_dict(),
        "cache": cache,
    }
