"""``repro serve``: a long-lived async evaluation service.

The traffic-serving layer over the evaluation core: one warm
:class:`~repro.eval.engine.EngineContext` (shared memoization + one
persistent cache) behind a stdlib-only asyncio HTTP server, with
request coalescing so identical concurrent specs evaluate once, and
NDJSON event streams byte-compatible with
``repro all --stream --format json``.

Public surface:

* :class:`~repro.serve.server.EvaluationService` — the service object
  (tests drive ``start()``/``aclose()`` directly);
* :func:`~repro.serve.server.serve` — the blocking CLI entry point;
* :mod:`~repro.serve.protocol` — spec validation + canonical digests;
* :mod:`~repro.serve.coalescing` — the in-flight run broker.
"""

from repro.serve.coalescing import InflightRun, RunBroker
from repro.serve.server import DEFAULT_PORT, EvaluationService, serve

__all__ = [
    "DEFAULT_PORT",
    "EvaluationService",
    "InflightRun",
    "RunBroker",
    "serve",
]
