"""The ``repro serve`` service: one warm engine behind an HTTP API.

:class:`EvaluationService` wraps a single long-lived
:class:`~repro.eval.engine.EngineContext` — one memoization domain,
one persistent cache — behind four endpoints:

* ``POST /v1/artifacts`` — run a JSON artifact spec through
  :class:`~repro.eval.artifacts.RunPlan`, streaming events as NDJSON;
* ``POST /v1/sweep`` — run a model/grid sweep spec, same stream shape;
* ``GET /v1/health`` — liveness probe;
* ``GET /v1/stats`` — server + engine + cache counters.

Identical concurrent POSTs coalesce by canonical spec digest (see
:mod:`repro.serve.coalescing`): the evaluations of exactly one run are
performed, every subscriber receives the full event stream, and —
because all requests share the engine — a request arriving *after* a
run completed is a pure warm-cache replay with ``evaluations == 0``.

Concurrency model: evaluation happens on executor threads; the event
loop only parses requests and fans lines out. ``max_concurrent``
(default 1) bounds *executing* runs — coalesced joiners cost nothing
and never queue. The default of 1 also keeps per-artifact
``EngineStats`` deltas exact: the engine's counters are global, so two
different runs interleaving would bleed into each other's scoped
deltas.

Shutdown is signal-driven and REP004-clean: SIGINT/SIGTERM stop the
listener, in-flight runs drain completely (the durability contract —
a served result is flushed before its stream ends), open streams get a
short grace to finish writing, and the engine closes on every exit
path (idempotently, so a CLI ``finally:`` double-closing after the
signal path is a no-op).
"""

from __future__ import annotations

import asyncio
import functools
import signal
import sys
from pathlib import Path
from typing import Any, Callable, Optional, Set

from repro.errors import ServeError
from repro.eval.artifacts import ArtifactRegistry
from repro.eval.engine import EngineContext
from repro.serve import protocol
from repro.serve.coalescing import InflightRun, RunBroker
from repro.serve.handlers import (
    execute_artifacts,
    execute_sweep,
    stats_payload,
)

#: Default TCP port (pass 0 to bind any free port).
DEFAULT_PORT = 8765
#: Seconds open response streams get to finish writing after every
#: execution has drained at shutdown (streams of finished runs flush
#: in milliseconds; only a stalled client burns the full grace).
CONNECTION_DRAIN_GRACE_S = 5.0


class EvaluationService:
    """The long-lived evaluation service around one shared context.

    Construct, then either ``await run()`` (binds, serves until
    :meth:`request_shutdown`, drains, closes the engine — the CLI
    path) or drive :meth:`start`/:meth:`aclose` directly (tests).
    ``port=0`` binds a free port; :attr:`port` holds the real one
    after :meth:`start`.
    """

    # Created in start() — asyncio primitives are loop-affine.
    broker: RunBroker

    def __init__(
        self,
        ctx: EngineContext,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        registry: Optional[ArtifactRegistry] = None,
        max_concurrent: int = 1,
        record_dir: "str | Path | None" = None,
    ) -> None:
        self.ctx = ctx
        self.host = host
        self.port = port
        self.registry = registry
        self.max_concurrent = max_concurrent
        self.record_dir = (
            Path(record_dir) if record_dir is not None else None
        )
        #: HTTP requests parsed so far (event-loop thread only).
        self.requests = 0
        self._server: Optional[asyncio.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._connections: Set["asyncio.Task[Any]"] = set()
        self._executions: Set["asyncio.Task[Any]"] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and arm the run machinery."""
        loop = asyncio.get_running_loop()
        self.broker = RunBroker(loop)
        self._semaphore = asyncio.Semaphore(self.max_concurrent)
        self._shutdown = asyncio.Event()
        if self.record_dir is not None:
            self.record_dir.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent; called from signal
        handlers on the event loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def run(self, announce: bool = True) -> int:
        """Serve until shutdown is requested; returns the exit code."""
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix loop: rely on request_shutdown callers
        try:
            if announce:
                # stderr, flushed: supervisors (and the CI smoke job)
                # parse this line for the bound port.
                print(
                    f"serving on http://{self.host}:{self.port}",
                    file=sys.stderr, flush=True,
                )
            if self._shutdown is not None:
                await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.aclose()
        return 0

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight runs, close the engine."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Runs drain fully — a served evaluation is never abandoned
        # mid-flight, and the terminal flush below only has dirty
        # entries the debounce deferred.
        if self._executions:
            await asyncio.gather(
                *list(self._executions), return_exceptions=True
            )
        if self._connections:
            _, pending = await asyncio.wait(
                list(self._connections),
                timeout=CONNECTION_DRAIN_GRACE_S,
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(
                    *pending, return_exceptions=True
                )
        self.close()

    def close(self) -> None:
        """Flush and close the engine (idempotent — safe after
        :meth:`aclose` already closed it, or before :meth:`start`)."""
        self.ctx.close()

    def record_path(self, run: InflightRun) -> Path:
        """Where one executed (non-coalesced) run's record lands."""
        if self.record_dir is None:
            raise ServeError("service has no --record directory",
                             status=500)
        return self.record_dir / (
            f"serve-{run.sequence:04d}-{run.digest[:12]}.json"
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, TimeoutError):
            pass  # client went away mid-exchange
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await protocol.read_request(reader)
        except ServeError as error:
            writer.write(protocol.error_response(error))
            await writer.drain()
            return
        if request is None:
            return  # probe: connected, sent nothing, went away
        self.requests += 1
        try:
            await self._route(request, writer)
        except ServeError as error:
            # Spec validation happens before the stream head is
            # written, so an error here always has headers to use.
            writer.write(protocol.error_response(error))
            await writer.drain()

    async def _route(
        self, request: protocol.Request, writer: asyncio.StreamWriter
    ) -> None:
        if request.path == "/v1/health":
            self._require(request, "GET")
            writer.write(protocol.json_response(200, {"status": "ok"}))
            await writer.drain()
            return
        if request.path == "/v1/stats":
            self._require(request, "GET")
            writer.write(
                protocol.json_response(200, stats_payload(self))
            )
            await writer.drain()
            return
        if request.path == "/v1/artifacts":
            self._require(request, "POST")
            artifacts_spec = protocol.parse_artifacts_spec(
                request.json_body(), registry=self.registry
            )
            await self._stream_run(
                writer,
                artifacts_spec.digest,
                lambda run: functools.partial(
                    execute_artifacts, self, run, artifacts_spec
                ),
            )
            return
        if request.path == "/v1/sweep":
            self._require(request, "POST")
            sweep_spec = protocol.parse_sweep_spec(request.json_body())
            await self._stream_run(
                writer,
                sweep_spec.digest,
                lambda run: functools.partial(
                    execute_sweep, self, run, sweep_spec
                ),
            )
            return
        raise ServeError(
            f"unknown path {request.path!r}; endpoints: /v1/health, "
            f"/v1/stats, /v1/artifacts, /v1/sweep", status=404,
        )

    def _require(self, request: protocol.Request, method: str) -> None:
        if request.method != method:
            raise ServeError(
                f"{request.path} only supports {method}, got "
                f"{request.method}", status=405,
            )

    async def _stream_run(
        self,
        writer: asyncio.StreamWriter,
        digest: str,
        runner_for: Callable[[InflightRun], Callable[[], None]],
    ) -> None:
        """Join-or-start the digest's run and stream it to ``writer``.

        The coalescing decision happens *before* the concurrency
        semaphore: joiners subscribe immediately and never occupy an
        execution slot.
        """
        run, created = self.broker.join_or_start(digest)
        if created:
            task = asyncio.ensure_future(
                self._drive(runner_for(run))
            )
            self._executions.add(task)
            task.add_done_callback(self._executions.discard)
        queue = self.broker.subscribe(run)
        writer.write(protocol.stream_head())
        await writer.drain()
        while True:
            line = await queue.get()
            if line is None:
                break
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()

    async def _drive(self, runner: Callable[[], None]) -> None:
        """One run's execution slot: bounded by ``max_concurrent``,
        blocking work on an executor thread."""
        if self._semaphore is None:  # start() arms it before any run
            raise ServeError("service not started", status=500)
        async with self._semaphore:
            await asyncio.get_running_loop().run_in_executor(
                None, runner
            )


def serve(
    ctx: EngineContext,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    registry: Optional[ArtifactRegistry] = None,
    max_concurrent: int = 1,
    record_dir: "str | Path | None" = None,
    announce: bool = True,
) -> int:
    """Blocking entry point: serve ``ctx`` until SIGINT/SIGTERM.

    The CLI path behind ``repro serve``. Returns the process exit
    code (0 on a clean drain).
    """
    service = EvaluationService(
        ctx,
        host=host,
        port=port,
        registry=registry,
        max_concurrent=max_concurrent,
        record_dir=record_dir,
    )
    try:
        return asyncio.run(service.run(announce=announce))
    finally:
        # run() already closed the engine on its way out; this is the
        # belt-and-braces close for failures before/inside asyncio.run
        # (idempotent, REP004).
        service.close()
