"""Wire protocol for ``repro serve``: HTTP/1.1 plumbing + JSON specs.

The service speaks a deliberately minimal slice of HTTP/1.1 over
``asyncio`` streams — enough for ``curl``, ``http.client``, and any
load balancer's health probe, with no dependency beyond the standard
library:

* one request per connection (every response carries
  ``Connection: close``);
* bodies are ``Content-Length``-delimited (chunked uploads are
  rejected loudly — a spec is a small JSON object);
* NDJSON responses stream close-delimited, one event per line.

Spec parsing lives here too, so the canonical digest — the coalescing
key — is defined next to the validation that produces it: two requests
coalesce exactly when their *normalized* specs serialize identically
(key order, ``"all"`` expansion, and default grids never split runs).
Validation failures raise :class:`~repro.errors.ServeError` carrying
the HTTP status, wrapping the existing taxonomy
(:class:`~repro.errors.EvaluationError`,
:class:`~repro.errors.WorkloadError`) so clients see the same loud
messages the CLI prints.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.accelerators import REGISTRY, main_design_names
from repro.dnn.models import DnnModel, get_model, model_from_dict
from repro.errors import EvaluationError, ServeError, WorkloadError
from repro.eval import experiments as E
from repro.eval.artifacts import (
    ArtifactRegistry,
    ArtifactStarted,
    RunFinished,
    names_from_spec,
)
from repro.eval.engine import EngineStats

#: Request line + headers must fit in this many bytes.
MAX_HEADER_BYTES = 64 * 1024
#: Largest accepted request body (specs are small JSON objects).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds a connection may take to deliver its request head + body.
REQUEST_READ_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


# ----------------------------------------------------------------------
# HTTP/1.1: request parsing and response framing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> Any:
        """The body decoded as JSON, or a 400 :class:`ServeError`."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"request body is not valid JSON: {error}")


async def read_request(
    reader: asyncio.StreamReader,
    timeout_s: float = REQUEST_READ_TIMEOUT_S,
) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` when the peer closed without sending anything (a
    port probe); raises :class:`ServeError` with the right 4xx status
    for everything malformed.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout_s
        )
    except asyncio.TimeoutError:
        raise ServeError("timed out reading request head", status=408)
    except asyncio.LimitOverrunError:
        raise ServeError(
            f"request head exceeds {MAX_HEADER_BYTES} bytes",
            status=431,
        )
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean disconnect before any bytes
        raise ServeError("connection closed mid-request")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise ServeError("undecodable request head")
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ServeError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ServeError(
            "chunked request bodies are not supported; send "
            "Content-Length-delimited JSON", status=411,
        )
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServeError(f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise ServeError(f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise ServeError(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit", status=413,
        )
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            raise ServeError(
                "timed out reading request body", status=408
            )
        except asyncio.IncompleteReadError:
            raise ServeError("connection closed mid-body")
    # Strip any query string: the API is purely path + JSON body.
    path = target.partition("?")[0]
    return Request(method=method, path=path, headers=headers, body=body)


def _head(status: int, content_type: str,
          content_length: Optional[int]) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(status: int, payload: Any) -> bytes:
    """A complete JSON response (head + body)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    return _head(status, "application/json", len(body)) + body


def error_response(error: ServeError) -> bytes:
    """The JSON body every request-level failure gets."""
    return json_response(
        error.status,
        {
            "error": str(error),
            "status": error.status,
            "type": type(error).__name__,
        },
    )


def stream_head() -> bytes:
    """Response head for an NDJSON event stream (close-delimited)."""
    return _head(200, "application/x-ndjson", None)


# ----------------------------------------------------------------------
# NDJSON event lines
# ----------------------------------------------------------------------
#
# ``ArtifactFinished`` lines come from
# :func:`repro.eval.artifacts.finished_event_line` — the CLI's exact
# ``--stream --format json`` encoder — and therefore carry no "event"
# key. The service-only frames below all do, so clients (and the CI
# byte-diff) separate the two kinds with one membership test.


def started_line(event: ArtifactStarted) -> str:
    return json.dumps(
        {
            "event": "started",
            "artifact": event.name,
            "index": event.index,
            "total": event.total,
        }
    )


def run_finished_line(event: RunFinished) -> str:
    return json.dumps(
        {
            "event": "finished",
            "stats": event.stats.as_dict(),
            "wall_time_s": event.wall_time_s,
        }
    )


def sweep_started_line() -> str:
    return json.dumps(
        {"event": "started", "artifact": "sweep", "index": 0, "total": 1}
    )


def sweep_finished_line(payload: Dict[str, Any],
                        stats: EngineStats) -> str:
    return json.dumps(
        {"artifact": "sweep", "payload": payload,
         "stats": stats.as_dict()}
    )


def sweep_run_finished_line(stats: EngineStats,
                            wall_time_s: float) -> str:
    return json.dumps(
        {
            "event": "finished",
            "stats": stats.as_dict(),
            "wall_time_s": wall_time_s,
        }
    )


def error_line(error: BaseException) -> str:
    """A mid-stream failure: headers are long gone, so the error
    travels as a terminal event line instead of a status code."""
    return json.dumps(
        {
            "event": "error",
            "type": type(error).__name__,
            "error": str(error),
        }
    )


# ----------------------------------------------------------------------
# Specs: validation + canonical digests (the coalescing keys)
# ----------------------------------------------------------------------


def _digest(kind: str, payload: Dict[str, Any]) -> str:
    blob = json.dumps(
        {"kind": kind, **payload}, sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactsSpec:
    """A validated ``POST /v1/artifacts`` body."""

    names: Tuple[str, ...]
    digest: str


def parse_artifacts_spec(
    data: Any, registry: Optional[ArtifactRegistry] = None
) -> ArtifactsSpec:
    """Validate an artifacts spec and key it for coalescing.

    The digest is over the *resolved* name list, so
    ``{"artifacts": "all"}`` and the explicit full list in paper order
    coalesce into one run.
    """
    try:
        names = names_from_spec(data, registry=registry)
    except EvaluationError as error:
        raise ServeError(str(error))
    return ArtifactsSpec(
        names=names,
        digest=_digest("artifacts", {"artifacts": list(names)}),
    )


@dataclass(frozen=True)
class SweepSpec:
    """A validated ``POST /v1/sweep`` body.

    ``kind`` is ``"model"`` (a registered or inline DNN swept over
    designs x weight-sparsity degrees) or ``"grid"`` (the synthetic
    design x operand-sparsity grid) — the same split as
    ``repro sweep``'s ``--model`` vs grid modes, with the same mutual
    exclusions.
    """

    kind: str
    digest: str
    designs: Tuple[str, ...]
    # model kind
    model: Optional[DnnModel] = None
    degrees: Optional[Tuple[float, ...]] = None
    profile: Optional[Dict[str, float]] = None
    # grid kind
    a_degrees: Optional[Tuple[float, ...]] = None
    b_degrees: Optional[Tuple[float, ...]] = None
    size: int = 1024


_MODEL_ONLY = ("degrees", "profile")
_GRID_ONLY = ("a_degrees", "b_degrees", "size")
_SWEEP_KEYS = {"model", "designs", *_MODEL_ONLY, *_GRID_ONLY}


def _sweep_designs(data: Mapping[str, Any]) -> Tuple[str, ...]:
    designs = data.get("designs")
    if designs is None:
        return tuple(main_design_names())
    if (
        not isinstance(designs, list) or not designs
        or not all(isinstance(name, str) for name in designs)
    ):
        raise ServeError(
            "'designs' must be a non-empty list of design names"
        )
    for name in designs:
        if name not in REGISTRY:
            raise ServeError(
                f"unknown design {name!r}; registered: "
                f"{', '.join(info.name for info in REGISTRY)}"
            )
    duplicates = sorted({n for n in designs if designs.count(n) > 1})
    if duplicates:
        raise ServeError(
            f"duplicate design(s) in spec: {', '.join(duplicates)}"
        )
    return tuple(designs)


def _degree_list(value: Any, name: str) -> Tuple[float, ...]:
    if (
        not isinstance(value, list) or not value
        or not all(
            isinstance(item, (int, float))
            and not isinstance(item, bool)
            for item in value
        )
    ):
        raise ServeError(
            f"{name!r} must be a non-empty list of sparsity degrees"
        )
    degrees = tuple(float(item) for item in value)
    for degree in degrees:
        if not 0.0 <= degree < 1.0:
            raise ServeError(
                f"{name!r} degrees must be in [0, 1), got {degree}"
            )
    return degrees


def _sweep_model(data: Mapping[str, Any]) -> "tuple[DnnModel, Any]":
    """The spec's model plus its canonical-digest token.

    A registered name keys by name (case-normalized by resolution); an
    inline ``--model-file``-style table keys by its full validated
    table, so byte-different but semantically identical JSON bodies
    still coalesce. Inline models are *not* registered into the
    process-wide model registry — concurrent requests must never race
    on global state.
    """
    raw = data["model"]
    try:
        if isinstance(raw, str):
            model = get_model(raw)
            return model, model.name
        model = model_from_dict(raw)
    except WorkloadError as error:
        raise ServeError(str(error))
    return model, {
        key: raw[key] for key in sorted(raw)
    }


def parse_sweep_spec(data: Any) -> SweepSpec:
    """Validate a sweep spec and key it for coalescing."""
    if not isinstance(data, dict):
        raise ServeError(
            f"sweep spec must be a JSON object, got "
            f"{type(data).__name__}"
        )
    unknown = sorted(set(data) - _SWEEP_KEYS)
    if unknown:
        raise ServeError(
            f"unknown sweep spec key(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(_SWEEP_KEYS))}"
        )
    designs = _sweep_designs(data)
    if "model" in data:
        for key in _GRID_ONLY:
            if key in data:
                raise ServeError(
                    f"{key!r} applies to synthetic grid sweeps; a "
                    f"model sweep takes its shapes from the network's "
                    f"layers (use 'degrees' for the weight-sparsity "
                    f"ladder)"
                )
        model, model_token = _sweep_model(data)
        degrees = (
            _degree_list(data["degrees"], "degrees")
            if "degrees" in data else None
        )
        profile: Optional[Dict[str, float]] = None
        if "profile" in data:
            try:
                profile = E.profile_from_dict(
                    data["profile"], source="'profile'"
                )
                E.validate_profile(model, profile)
            except WorkloadError as error:
                raise ServeError(str(error))
        resolved_degrees = {
            design: list(
                degrees if degrees is not None
                else E.design_ladder(design)
            )
            for design in designs
        }
        return SweepSpec(
            kind="model",
            digest=_digest("sweep-model", {
                "model": model_token,
                "designs": list(designs),
                "degrees": resolved_degrees,
                "profile": profile,
            }),
            designs=designs,
            model=model,
            degrees=degrees,
            profile=profile,
        )
    for key in _MODEL_ONLY:
        if key in data:
            raise ServeError(
                f"{key!r} applies to model sweeps (include a 'model' "
                f"in the spec)"
            )
    a_degrees = (
        _degree_list(data["a_degrees"], "a_degrees")
        if "a_degrees" in data else tuple(E.A_DEGREES)
    )
    b_degrees = (
        _degree_list(data["b_degrees"], "b_degrees")
        if "b_degrees" in data else tuple(E.B_DEGREES)
    )
    size = data.get("size", 1024)
    if (
        not isinstance(size, int) or isinstance(size, bool)
        or size < 1
    ):
        raise ServeError(f"'size' must be a positive integer, got "
                         f"{size!r}")
    return SweepSpec(
        kind="grid",
        digest=_digest("sweep-grid", {
            "designs": list(designs),
            "a_degrees": list(a_degrees),
            "b_degrees": list(b_degrees),
            "size": size,
        }),
        designs=designs,
        a_degrees=a_degrees,
        b_degrees=b_degrees,
        size=size,
    )
