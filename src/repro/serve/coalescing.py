"""Request coalescing: one evaluation per in-flight canonical spec.

The broker keys live runs by the spec digest computed in
:mod:`repro.serve.protocol`. The first request for a digest *creates*
the run and owns its execution; every identical request arriving while
it is in flight *joins* it — no second evaluation, but each subscriber
still receives the complete event stream (lines published before it
joined are replayed from the run's buffer, later ones are fanned out
live).

Threading model: subscriptions happen on the event-loop thread,
publishes on engine worker threads, so every access to the broker's
maps goes through one :class:`threading.Lock` (declared in the
``_lock_guarded`` manifest — the REP001 lock-discipline lint rule
checks every method). Publishing holds the lock while appending to the
run's buffer *and* scheduling the fan-out via
``loop.call_soon_threadsafe``, which is what makes replay-then-live
handover exact: a subscriber either sees a line in the replayed buffer
or is registered before that line's fan-out is scheduled, never both
and never neither, and queue order matches publish order.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional


class InflightRun:
    """One executing evaluation and its subscribers.

    Plain shared state — every field is read and written only under
    the owning :class:`RunBroker`'s lock.
    """

    def __init__(self, digest: str, sequence: int) -> None:
        self.digest = digest
        #: Monotonic run number (stable record filenames).
        self.sequence = sequence
        #: Every event line published so far, for late-joiner replay.
        self.lines: List[str] = []
        #: Live subscriber queues; ``None`` is the end-of-stream mark.
        self.queues: List["asyncio.Queue[Optional[str]]"] = []
        self.done = False


class RunBroker:
    """Digest-keyed fan-out of event lines to coalesced subscribers."""

    _lock_guarded = frozenset({
        "_runs",
        "_sequence",
        "_runs_started",
        "_coalesced",
        "_completed",
    })

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._lock = threading.Lock()
        self._runs: Dict[str, InflightRun] = {}
        self._sequence = 0
        self._runs_started = 0
        self._coalesced = 0
        self._completed = 0

    def join_or_start(self, digest: str) -> "tuple[InflightRun, bool]":
        """The live run for ``digest`` (created=False), or a fresh one
        this caller now owns and must execute (created=True)."""
        with self._lock:
            run = self._runs.get(digest)
            if run is not None:
                self._coalesced += 1
                return run, False
            self._sequence += 1
            run = InflightRun(digest, self._sequence)
            self._runs[digest] = run
            self._runs_started += 1
            return run, True

    def subscribe(self, run: InflightRun) -> "asyncio.Queue[Optional[str]]":
        """A queue that yields the run's full event stream then
        ``None``. Event-loop thread only (queues are loop-affine)."""
        queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
        with self._lock:
            for line in run.lines:
                queue.put_nowait(line)
            if run.done:
                queue.put_nowait(None)
            else:
                run.queues.append(queue)
        return queue

    def publish(self, run: InflightRun, line: str) -> None:
        """Record ``line`` and fan it out to every subscriber.

        Callable from any thread (the engine worker publishing, the
        loop thread for synchronous failures).
        """
        with self._lock:
            if run.done:
                return
            run.lines.append(line)
            for queue in run.queues:
                self._loop.call_soon_threadsafe(queue.put_nowait, line)

    def finish(self, run: InflightRun) -> None:
        """End the run: deliver end-of-stream, drop it from the live
        map so the next identical request starts fresh (and hits the
        warm cache instead of coalescing)."""
        with self._lock:
            if run.done:
                return
            run.done = True
            self._runs.pop(run.digest, None)
            self._completed += 1
            for queue in run.queues:
                self._loop.call_soon_threadsafe(queue.put_nowait, None)
            run.queues = []

    def counts(self) -> Dict[str, int]:
        """JSON-ready coalescing counters (the ``/v1/stats`` block)."""
        with self._lock:
            return {
                "active_runs": len(self._runs),
                "runs_started": self._runs_started,
                "coalesced_requests": self._coalesced,
                "completed_runs": self._completed,
            }
