"""HighLight: the paper's design (Secs. 5-6).

Operand A is dense or two-rank HSS within ``C1(4:{4<=H<=8}) ->
C0(2:{2<=H<=4})``; hierarchical skipping yields the exact structured
speedup with perfect workload balance. Operand B is dense or
unstructured sparse: compressed (three-level metadata through the VFMU)
to save storage/traffic, and *gated* at the MACs to save energy without
affecting cycles (Sec. 6.4).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import highlight_resources
from repro.compression.formats import offset_bits
from repro.energy.estimator import Estimator
from repro.model.batch import WorkloadBatch
from repro.model.density import (
    HIGHLIGHT_RANK0,
    HIGHLIGHT_RANK1,
    highlight_supported_density,
)
from repro.model.perf import (
    build_metrics,
    build_metrics_batch,
    compute_cycles,
    compute_cycles_array,
)
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload, Structure

WORD_BITS = 16
#: Conservative exploitation of operand-B sparsity: the paper evaluates
#: HighLight "with 20% sparsity for conservative estimations" when B is
#: 25% sparse, i.e. a 5-percentage-point haircut on exploitable B
#: sparsity (gating/compression never captures every zero).
B_SPARSITY_HAIRCUT = 0.05


@register_design(category="hss", sparsity_side="single",
                 table4_order=4, main_evaluation=True)
class HighLight(AcceleratorDesign):
    """The HSS accelerator (Table 3 row "HighLight")."""

    name = "HighLight"
    batch_capable = True

    def __init__(self) -> None:
        super().__init__(highlight_resources())

    @property
    def supported_patterns(self) -> str:
        return (
            "A: dense or C1(4:{4<=H<=8})->C0(2:{2<=H<=4}); "
            "B: dense or unstructured"
        )

    def supports(self, workload: MatmulWorkload) -> bool:
        # Operand A must be dense or HSS-structured; operand B anything.
        return workload.a.structure in (Structure.DENSE, Structure.HSS)

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        """Cost the workload, choosing the better operand-B handling.

        Table 3 lists operand B as "dense; unstructured sparse": the
        hardware can stream B uncompressed (gating still applies — the
        MACs detect zero operands either way) or compressed through the
        three-level metadata path. Compression pays on sparse
        activations but is pure overhead near-dense, so the design
        takes whichever mode yields the lower EDP.
        """
        variants = [self._evaluate(workload, estimator, False)]
        if not workload.b.is_dense:
            variants.append(self._evaluate(workload, estimator, True))
        return min(variants, key=lambda metrics: metrics.edp)

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        """Batched :meth:`evaluate`: both operand-B modes, lower EDP
        wins per workload (the uncompressed variant on ties, exactly
        like the scalar ``min``)."""
        results = self._evaluate_batch(batch, estimator, False)
        sparse_b = [
            i for i, workload in enumerate(batch.workloads)
            if not workload.b.is_dense
        ]
        if not sparse_b:
            return results
        compressed = self._evaluate_batch(
            batch.subset(sparse_b), estimator, True
        )
        for i, candidate in zip(sparse_b, compressed):
            if candidate.edp < results[i].edp:
                results[i] = candidate
        return results

    def _evaluate(
        self,
        workload: MatmulWorkload,
        estimator: Estimator,
        compress_b: bool,
    ) -> Metrics:
        resources = self.resources
        scheduled_density = highlight_supported_density(workload.a)
        scheduled = workload.dense_products * scheduled_density

        # --- operand B gating ---------------------------------------
        exploitable_b_sparsity = self._exploitable_b_sparsity(workload)
        gated = scheduled * exploitable_b_sparsity
        full = scheduled - gated

        # --- operand A storage (hierarchical CP, Fig. 9) -------------
        a_nnz = workload.m * workload.k * workload.a.density
        a_meta_bits = a_nnz * offset_bits(HIGHLIGHT_RANK0.h_max)
        if workload.a.structure is Structure.HSS:
            nonempty_blocks = a_nnz / max(1, HIGHLIGHT_RANK0.g)
            a_meta_bits += nonempty_blocks * offset_bits(
                HIGHLIGHT_RANK1.h_max
            )
        a_meta_words = (
            a_meta_bits / WORD_BITS if not workload.a.is_dense else 0.0
        )
        a_words = a_nnz

        # --- operand B storage (three-level metadata, Fig. 12) -------
        b_slots = workload.k * workload.n
        b_compressed = compress_b and not workload.b.is_dense
        b_density_stored = (
            1.0 - exploitable_b_sparsity if b_compressed else 1.0
        )
        b_words = b_slots * b_density_stored
        b_meta_words = self._b_meta_words(b_slots, b_words) if b_compressed \
            else 0.0

        # --- fetch + VFMU activity ------------------------------------
        reuse = resources.operand_reuse
        b_fetch = scheduled * b_density_stored / reuse
        cycles = compute_cycles(scheduled, resources.arch.num_macs, 1.0)
        num_pe_arrays = 4
        saf_events = [
            # Rank0 SAF: every scheduled product selects its B value
            # through the per-PE 4-to-2 mux.
            ("rank0_mux", "select", scheduled),
            # Rank1 SAF: one block selection per G0-sized block.
            ("rank1_addr_mux", "select", scheduled / HIGHLIGHT_RANK0.g),
            # VFMU: refill words, plus a shifted block read per array
            # per processing step.
            ("vfmu", "write_word", b_fetch),
            ("vfmu", "block_read", cycles * num_pe_arrays),
            ("vfmu", "shift", cycles * num_pe_arrays),
        ]
        compress = b_words if b_compressed else 0.0
        return build_metrics(
            workload=workload,
            resources=resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=full,
            gated_macs=gated,
            a_stored_words=a_words,
            a_meta_words=a_meta_words,
            b_stored_words=b_words,
            b_meta_words=b_meta_words,
            b_fetch_words=b_fetch,
            saf_events=saf_events,
            compress_values=compress,
        )

    def _evaluate_batch(
        self,
        batch: WorkloadBatch,
        estimator: Estimator,
        compress_b: bool,
    ) -> List[Metrics]:
        """Vectorized :meth:`_evaluate` (same expressions, same
        operation order, over stacked arrays). With ``compress_b`` the
        caller passes only sparse-B workloads, mirroring the scalar
        variant construction."""
        resources = self.resources
        scheduled_density = np.array(
            batch.map_a(highlight_supported_density), dtype=np.float64
        )
        scheduled = batch.dense_products * scheduled_density

        # --- operand B gating ---------------------------------------
        b_sparsity = 1.0 - batch.b_density
        exploitable_b_sparsity = np.where(
            batch.b_is_dense,
            0.0,
            np.where(
                batch.b_is_hss,
                b_sparsity,
                np.maximum(0.0, b_sparsity - B_SPARSITY_HAIRCUT),
            ),
        )
        gated = scheduled * exploitable_b_sparsity
        full = scheduled - gated

        # --- operand A storage (hierarchical CP, Fig. 9) -------------
        a_nnz = batch.mk * batch.a_density
        a_meta_bits = a_nnz * offset_bits(HIGHLIGHT_RANK0.h_max)
        nonempty_blocks = a_nnz / max(1, HIGHLIGHT_RANK0.g)
        a_meta_bits = np.where(
            batch.a_is_hss,
            a_meta_bits
            + nonempty_blocks * offset_bits(HIGHLIGHT_RANK1.h_max),
            a_meta_bits,
        )
        a_meta_words = np.where(
            batch.a_is_dense, 0.0, a_meta_bits / WORD_BITS
        )
        a_words = a_nnz

        # --- operand B storage (three-level metadata, Fig. 12) -------
        b_slots = batch.kn
        b_density_stored = (
            1.0 - exploitable_b_sparsity if compress_b else 1.0
        )
        b_words = b_slots * b_density_stored
        b_meta_words = (
            self._b_meta_words(b_slots, b_words) if compress_b else 0.0
        )

        # --- fetch + VFMU activity ------------------------------------
        reuse = resources.operand_reuse
        b_fetch = scheduled * b_density_stored / reuse
        cycles = compute_cycles_array(
            scheduled, resources.arch.num_macs, 1.0
        )
        num_pe_arrays = 4
        saf_events = [
            ("rank0_mux", "select", scheduled),
            (
                "rank1_addr_mux",
                "select",
                scheduled / HIGHLIGHT_RANK0.g,
            ),
            ("vfmu", "write_word", b_fetch),
            ("vfmu", "block_read", cycles * num_pe_arrays),
            ("vfmu", "shift", cycles * num_pe_arrays),
        ]
        return build_metrics_batch(
            batch=batch,
            resources=resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=full,
            gated_macs=gated,
            a_stored_words=a_words,
            a_meta_words=a_meta_words,
            b_stored_words=b_words,
            b_meta_words=b_meta_words,
            b_fetch_words=b_fetch,
            saf_events=saf_events,
            compress_values=b_words if compress_b else 0.0,
        )

    @staticmethod
    def _exploitable_b_sparsity(workload: MatmulWorkload) -> float:
        """Fraction of scheduled MACs that can be gated on B zeros."""
        if workload.b.is_dense:
            return 0.0
        if workload.b.structure is Structure.HSS:
            # Statically known locations: fully exploitable.
            return workload.b.sparsity
        return max(0.0, workload.b.sparsity - B_SPARSITY_HAIRCUT)

    @staticmethod
    def _b_meta_words(b_slots: float, b_stored: float) -> float:
        """Three-level operand-B metadata (Sec. 6.4) in 16-bit words.

        Level 3: a Rank0-local offset per stored nonzero; levels 1-2:
        one address-sized entry per Rank1 block and per block set.
        """
        rank0_block = HIGHLIGHT_RANK0.h_max
        rank1_values = rank0_block * HIGHLIGHT_RANK1.h_max
        offsets_bits = b_stored * offset_bits(rank0_block)
        level2_entries = b_slots / rank1_values
        level1_entries = level2_entries / HIGHLIGHT_RANK1.h_max
        address_bits = (level2_entries + level1_entries) * WORD_BITS
        return (offsets_bits + address_bits) / WORD_BITS
