"""DSTC: the dual-sided unstructured sparse baseline.

Exploits arbitrary sparsity in both operands via an outer-product
dataflow: every effectual product is scheduled (maximum flexibility),
but each product read-modify-writes a large accumulation buffer and
needs merge/intersection logic — a high sparsity tax that masks the
savings on low-sparsity workloads (paper Secs. 2.2.1, 7.2). Workload
balance is imperfect: perfect only when slice occupancies are multiples
of the 32-lane compute columns.
"""

from __future__ import annotations

from typing import List

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import dstc_resources
from repro.energy.estimator import Estimator
from repro.model.batch import WorkloadBatch
from repro.model.density import (
    random_balance_utilization,
    random_balance_utilization_array,
)
from repro.model.perf import build_metrics, build_metrics_batch
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload

#: Bitmask metadata: one bit per dense slot, packed into 16-bit words.
WORD_BITS = 16
#: Residual utilization loss from the unpredictable nonzero locations
#: (pipeline bubbles while chasing dynamic coordinates). Per-operand
#: random-balance losses come from
#: :func:`repro.model.density.random_balance_utilization` — the paper:
#: "DSTC only ensures perfect workload balancing among columns of
#: compute units when a sub-tensor's occupancy is a multiple of 32".
PIPELINE_EFFICIENCY = 0.95


@register_design(category="unstructured", sparsity_side="dual",
                 table4_order=2, main_evaluation=True)
class DSTC(AcceleratorDesign):
    """Dual-side sparse tensor core (Table 3: dense or unstructured)."""

    name = "DSTC"
    batch_capable = True

    def __init__(self) -> None:
        super().__init__(dstc_resources())

    @property
    def supported_patterns(self) -> str:
        return "A: dense or unstructured; B: dense or unstructured"

    def supports(self, workload: MatmulWorkload) -> bool:
        return True

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        density_a = workload.a.density
        density_b = workload.b.density
        scheduled = workload.dense_products * density_a * density_b
        utilization = (
            random_balance_utilization(density_a)
            * random_balance_utilization(density_b)
            * PIPELINE_EFFICIENCY
        )

        a_words = workload.m * workload.k * density_a
        b_words = workload.k * workload.n * density_b
        a_meta = workload.m * workload.k / WORD_BITS  # bitmask
        b_meta = workload.k * workload.n / WORD_BITS
        reuse = self.resources.operand_reuse
        # Outer product streams both operands: charge both fetch paths.
        operand_fetches = 2.0 * scheduled / reuse

        saf_events = [
            # Coordinate merge/intersection work per effectual product.
            ("intersection", "intersect", scheduled),
        ]
        compress = a_words + b_words  # both operands compressed on-chip
        return build_metrics(
            workload=workload,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=utilization,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=b_words,
            b_meta_words=b_meta,
            b_fetch_words=operand_fetches,
            a_fetch_words=0.0,  # folded into operand_fetches
            psum_component="accum_buffer",
            # The outer-product dataflow's defining cost: products land
            # at arbitrary output coordinates and read-modify-write the
            # accumulation buffer; a pairwise spatial merge in front of
            # the buffer halves the update rate.
            psum_updates=scheduled / 2.0,
            saf_events=saf_events,
            compress_values=compress,
        )

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        density_a = batch.a_density
        density_b = batch.b_density
        scheduled = batch.dense_products * density_a * density_b
        utilization = (
            random_balance_utilization_array(density_a)
            * random_balance_utilization_array(density_b)
            * PIPELINE_EFFICIENCY
        )

        a_words = batch.mk * density_a
        b_words = batch.kn * density_b
        a_meta = batch.mk / WORD_BITS  # bitmask
        b_meta = batch.kn / WORD_BITS
        reuse = self.resources.operand_reuse
        operand_fetches = 2.0 * scheduled / reuse

        return build_metrics_batch(
            batch=batch,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=utilization,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=b_words,
            b_meta_words=b_meta,
            b_fetch_words=operand_fetches,
            a_fetch_words=0.0,  # folded into operand_fetches
            psum_component="accum_buffer",
            psum_updates=scheduled / 2.0,
            saf_events=[("intersection", "intersect", scheduled)],
            compress_values=a_words + b_words,
        )
