"""STC: the single-sided 2:4 structured sparse baseline.

Exploits operand A when (and only when) it satisfies ``{G<=2}:4``:
a 2x speedup cap, metadata of 2 bits per stored value, and a 4-to-2
operand-select mux per MAC — a very low sparsity tax. Operand B is
always processed dense (no compression unit in the design).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import stc_resources
from repro.energy.estimator import Estimator
from repro.model.batch import WorkloadBatch
from repro.model.density import stc_effective_density
from repro.model.perf import build_metrics, build_metrics_batch
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload

#: 2:4 metadata: 2 bits per stored nonzero, packed into 16-bit words.
META_BITS_PER_VALUE = 2
WORD_BITS = 16


@register_design(category="structured", sparsity_side="single",
                 table4_order=1, main_evaluation=True)
class STC(AcceleratorDesign):
    """Sparse-tensor-core-like design (Table 3: A dense or C0({G<=2}:4))."""

    name = "STC"
    batch_capable = True

    def __init__(self) -> None:
        super().__init__(stc_resources())

    @property
    def supported_patterns(self) -> str:
        return "A: dense or C0({G<=2}:4); B: dense"

    def supports(self, workload: MatmulWorkload) -> bool:
        # Functionally correct on any workload: unsupported sparsity is
        # simply processed as dense data.
        return True

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        scheduled_density, sparse_mode = stc_effective_density(workload.a)
        scheduled = workload.dense_products * scheduled_density
        a_words = workload.m * workload.k * scheduled_density
        a_meta = (
            a_words * META_BITS_PER_VALUE / WORD_BITS if sparse_mode else 0.0
        )
        saf_events = []
        if sparse_mode:
            # Every scheduled product routes its B operand through the
            # 4-to-2 selection muxes.
            saf_events.append(("b_select_mux", "select", scheduled))
        return build_metrics(
            workload=workload,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=float(workload.k * workload.n),
            b_fetch_words=scheduled / self.resources.operand_reuse,
            saf_events=saf_events,
        )

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        derived = batch.map_a(stc_effective_density)
        scheduled_density = np.array(
            [density for density, _ in derived], dtype=np.float64
        )
        sparse_mode = np.array(
            [mode for _, mode in derived], dtype=bool
        )
        scheduled = batch.dense_products * scheduled_density
        a_words = batch.mk * scheduled_density
        a_meta = np.where(
            sparse_mode,
            a_words * META_BITS_PER_VALUE / WORD_BITS,
            0.0,
        )
        saf_events = [
            (
                "b_select_mux",
                "select",
                np.where(sparse_mode, scheduled, 0.0),
            ),
        ]
        return build_metrics_batch(
            batch=batch,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=batch.kn,
            b_fetch_words=scheduled / self.resources.operand_reuse,
            saf_events=saf_events,
        )
