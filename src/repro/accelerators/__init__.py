"""The evaluated accelerator designs (paper Tables 1, 3, 4).

* :class:`TC` — dense tensor-core-like baseline (no sparsity support).
* :class:`STC` — single-sided 2:4 structured sparse (speedup capped 2x).
* :class:`S2TA` — dual-sided G:8 structured sparse.
* :class:`DSTC` — dual-sided unstructured sparse, outer-product
  dataflow with a costly accumulation buffer.
* :class:`HighLight` — the paper's design: hierarchical skipping of
  two-rank HSS operand A, compression + gating of operand B.
* :class:`DSSO` — the Sec. 7.5 dual-side HSS study design with
  alternating dense ranks.

Every design self-registers in :data:`repro.accelerators.registry.REGISTRY`
with metadata (category, sparsity side, Table 4 position); sweeps and
the CLI resolve designs by name through the registry rather than by
constructor.
"""

from repro.accelerators.base import AcceleratorDesign, best_orientation
from repro.accelerators.registry import (
    REGISTRY,
    DesignInfo,
    DesignRegistry,
    RegistryError,
    register_design,
)
from repro.accelerators.tc import TC
from repro.accelerators.stc import STC
from repro.accelerators.s2ta import S2TA
from repro.accelerators.dstc import DSTC
from repro.accelerators.highlight import HighLight
from repro.accelerators.dsso import DSSO

__all__ = [
    "AcceleratorDesign",
    "best_orientation",
    "REGISTRY",
    "DesignInfo",
    "DesignRegistry",
    "RegistryError",
    "register_design",
    "TC",
    "STC",
    "S2TA",
    "DSTC",
    "HighLight",
    "DSSO",
    "all_designs",
    "main_design_names",
]


def main_design_names():
    """Names of the main-evaluation designs, in Table 4 order."""
    infos = REGISTRY.filter(main_evaluation=True)
    infos.sort(key=lambda info: info.metadata["table4_order"])
    return tuple(info.name for info in infos)


def all_designs():
    """Fresh instances of the five main-evaluation designs — TC, STC,
    DSTC, S2TA and HighLight — in Table 4 order.

    DSSO, the Sec. 7.5 dual-side study design, is not part of the main
    evaluation; reach it through ``REGISTRY.create("DSSO")`` (its
    registry metadata carries ``study="sec7.5"``).
    """
    return tuple(REGISTRY.create(name) for name in main_design_names())
