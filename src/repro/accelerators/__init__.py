"""The evaluated accelerator designs (paper Tables 1, 3, 4).

* :class:`TC` — dense tensor-core-like baseline (no sparsity support).
* :class:`STC` — single-sided 2:4 structured sparse (speedup capped 2x).
* :class:`S2TA` — dual-sided G:8 structured sparse.
* :class:`DSTC` — dual-sided unstructured sparse, outer-product
  dataflow with a costly accumulation buffer.
* :class:`HighLight` — the paper's design: hierarchical skipping of
  two-rank HSS operand A, compression + gating of operand B.
* :class:`DSSO` — the Sec. 7.5 dual-side HSS study design with
  alternating dense ranks.
"""

from repro.accelerators.base import AcceleratorDesign, best_orientation
from repro.accelerators.tc import TC
from repro.accelerators.stc import STC
from repro.accelerators.s2ta import S2TA
from repro.accelerators.dstc import DSTC
from repro.accelerators.highlight import HighLight
from repro.accelerators.dsso import DSSO

__all__ = [
    "AcceleratorDesign",
    "best_orientation",
    "TC",
    "STC",
    "S2TA",
    "DSTC",
    "HighLight",
    "DSSO",
    "all_designs",
]


def all_designs():
    """The five designs of the main evaluation, in Table 4 order."""
    return (TC(), STC(), DSTC(), S2TA(), HighLight())
