"""S2TA: the dual-sided structured sparse baseline.

Requires operand A to satisfy ``{G<=4}:8`` (at least 50% sparsity) and
operand B ``{G<=8}:8``; both operands then skip at their quantized
densities with perfect balance. The dual-sided selection network (8-wide
muxes on both operands) and the much smaller register files (64 x 64 B,
halving operand reuse) are its medium sparsity tax. It cannot process
purely dense layers (paper Sec. 7.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import s2ta_resources
from repro.energy.estimator import Estimator
from repro.model.batch import WorkloadBatch
from repro.model.density import (
    s2ta_quantized_density,
    s2ta_quantized_density_array,
)
from repro.model.perf import build_metrics, build_metrics_batch
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload

#: G:8 metadata: 3 bits per stored nonzero, packed into 16-bit words.
META_BITS_PER_VALUE = 3
WORD_BITS = 16
#: Operand A must quantize to at most 4:8.
MAX_A_DENSITY = 0.5
#: Design-specific constraint on the second (operand-B) skipping side:
#: the density-bound unrolling exploits at most a 2x rate from B, so B
#: is scheduled at no less than 4:8 ("does not fully exploit the
#: available speedup", paper Sec. 7.2).
MIN_B_SCHEDULED_DENSITY = 0.5
#: Partial-sum spill: the 64 B register files cannot hold output tiles,
#: so one in every SPILL_INTERVAL accumulations read-modify-writes the
#: GLB instead of staying PE-local.
SPILL_INTERVAL = 8


@register_design(category="structured", sparsity_side="dual",
                 table4_order=3, main_evaluation=True)
class S2TA(AcceleratorDesign):
    """S2TA-like design (Table 3: A C0({G<=4}:8); B C0({G<=8}:8))."""

    name = "S2TA"
    batch_capable = True

    def __init__(self) -> None:
        super().__init__(s2ta_resources())

    @property
    def supported_patterns(self) -> str:
        return "A: C0({G<=4}:8); B: C0({G<=8}:8)"

    def supports(self, workload: MatmulWorkload) -> bool:
        # Operand A must be at least 50% sparse at G:8 granularity;
        # the design has no dense-A mode (Table 3 has no "dense" entry
        # for its operand A).
        return s2ta_quantized_density(workload.a) <= MAX_A_DENSITY + 1e-12

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        q_a = s2ta_quantized_density(workload.a)
        q_b = s2ta_quantized_density(workload.b)
        scheduled_b = max(q_b, MIN_B_SCHEDULED_DENSITY)
        scheduled = workload.dense_products * q_a * scheduled_b

        a_words = workload.m * workload.k * q_a
        b_words = workload.k * workload.n * q_b
        a_meta = a_words * META_BITS_PER_VALUE / WORD_BITS
        b_meta = b_words * META_BITS_PER_VALUE / WORD_BITS

        spill = scheduled / SPILL_INTERVAL
        saf_events = [
            ("a_select_mux", "select", scheduled),
            ("b_select_mux", "select", scheduled),
            # Partial-sum spills to the GLB (read-modify-write).
            ("glb_data", "read", spill),
            ("glb_data", "write", spill),
        ]
        return build_metrics(
            workload=workload,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=b_words,
            b_meta_words=b_meta,
            b_fetch_words=scheduled / self.resources.operand_reuse,
            saf_events=saf_events,
            compress_values=b_words,
            supported=True,
        )

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        q_a = s2ta_quantized_density_array(batch.a_density)
        q_b = s2ta_quantized_density_array(batch.b_density)
        scheduled_b = np.maximum(q_b, MIN_B_SCHEDULED_DENSITY)
        scheduled = batch.dense_products * q_a * scheduled_b

        a_words = batch.mk * q_a
        b_words = batch.kn * q_b
        a_meta = a_words * META_BITS_PER_VALUE / WORD_BITS
        b_meta = b_words * META_BITS_PER_VALUE / WORD_BITS

        spill = scheduled / SPILL_INTERVAL
        saf_events = [
            ("a_select_mux", "select", scheduled),
            ("b_select_mux", "select", scheduled),
            ("glb_data", "read", spill),
            ("glb_data", "write", spill),
        ]
        return build_metrics_batch(
            batch=batch,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta,
            b_stored_words=b_words,
            b_meta_words=b_meta,
            b_fetch_words=scheduled / self.resources.operand_reuse,
            saf_events=saf_events,
            compress_values=b_words,
            supported=True,
        )
