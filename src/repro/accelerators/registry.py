"""The design registry: names -> factories plus queryable metadata.

Designs register themselves (usually via the :func:`register_design`
class decorator) with free-form metadata — category, sparsity side,
Table 4 position, whether they belong to the paper's main evaluation.
Everything downstream (the sweep engine, the CLI, ``all_designs()``)
looks designs up by name or metadata instead of hard-coding
constructors, so adding a design is one decorated class, not edits
across the evaluation stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.accelerators.base import AcceleratorDesign
from repro.errors import ReproError


class RegistryError(ReproError):
    """An invalid registry operation (e.g. duplicate registration)."""


@dataclass(frozen=True)
class DesignInfo:
    """One registered design: its name, factory and metadata."""

    name: str
    factory: Callable[[], AcceleratorDesign]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def create(self) -> AcceleratorDesign:
        return self.factory()

    def matches(self, **filters: Any) -> bool:
        """Whether every ``key=value`` filter equals this design's
        metadata entry (missing keys never match)."""
        return all(
            self.metadata.get(key, _MISSING) == value
            for key, value in filters.items()
        )


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


class DesignRegistry:
    """An ordered name -> :class:`DesignInfo` mapping."""

    def __init__(self) -> None:
        self._designs: Dict[str, DesignInfo] = {}
        self._shared: Dict[str, AcceleratorDesign] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], AcceleratorDesign],
        **metadata: Any,
    ) -> DesignInfo:
        """Register ``factory`` under ``name``.

        Raises :class:`RegistryError` on duplicate names: two designs
        silently sharing a name would corrupt every sweep keyed on it.
        """
        if name in self._designs:
            raise RegistryError(f"design already registered: {name!r}")
        info = DesignInfo(name=name, factory=factory, metadata=dict(metadata))
        self._designs[name] = info
        return info

    def __getitem__(self, name: str) -> DesignInfo:
        try:
            return self._designs[name]
        except KeyError:
            raise KeyError(
                f"unknown design {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def get(self, name: str) -> Optional[DesignInfo]:
        return self._designs.get(name)

    def create(self, name: str) -> AcceleratorDesign:
        """A fresh instance of the named design."""
        return self[name].create()

    def shared(self, name: str) -> AcceleratorDesign:
        """A memoized instance of the named design.

        Designs are stateless after construction (an arch spec plus
        pure cost methods), so callers that only *evaluate* — engines,
        sweeps — can share one instance instead of rebuilding the arch
        spec per engine. Callers that mutate an instance must use
        :meth:`create`.
        """
        instance = self._shared.get(name)
        if instance is None:
            instance = self._shared[name] = self.create(name)
        return instance

    def names(self) -> Tuple[str, ...]:
        return tuple(self._designs)

    def filter(self, **filters: Any) -> List[DesignInfo]:
        """All designs whose metadata matches every ``key=value``."""
        return [
            info for info in self._designs.values() if info.matches(**filters)
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._designs

    def __iter__(self) -> Iterator[DesignInfo]:
        return iter(self._designs.values())

    def __len__(self) -> int:
        return len(self._designs)


#: The process-wide registry the evaluation stack resolves names against.
REGISTRY = DesignRegistry()


def register_design(
    registry: Optional[DesignRegistry] = None, **metadata: Any
) -> Callable[[type], type]:
    """Class decorator: register an :class:`AcceleratorDesign` subclass
    under its ``name`` attribute, with the given metadata.

    ::

        @register_design(category="dense", sparsity_side="none")
        class TC(AcceleratorDesign):
            name = "TC"
    """
    target = registry if registry is not None else REGISTRY

    def decorator(cls: type) -> type:
        target.register(cls.name, cls, **metadata)
        return cls

    return decorator
