"""The accelerator-design interface and the operand-swap harness rule."""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

from repro.arch.designs import DesignResources
from repro.energy.estimator import Estimator
from repro.errors import UnsupportedWorkloadError
from repro.model.batch import WorkloadBatch
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload


class AcceleratorDesign(abc.ABC):
    """One evaluated design: resources plus an analytical cost model."""

    #: Short name used in tables/figures.
    name: str

    #: Whether :meth:`evaluate_batch` is implemented. The engine routes
    #: cache-miss batches through the vectorized path only for designs
    #: that declare it; everything else keeps the scalar path.
    batch_capable: bool = False

    def __init__(self, resources: DesignResources) -> None:
        self.resources = resources

    @abc.abstractmethod
    def supports(self, workload: MatmulWorkload) -> bool:
        """Whether the design can process this workload *as given*
        (before any operand swap) and produce functionally correct
        results."""

    @abc.abstractmethod
    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        """Cost the workload as given (no operand swap)."""

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        """Cost a batch of *supported* workloads as given, one Metrics
        per workload, bit-identical to :meth:`evaluate` on each.

        Callers must pre-filter with :meth:`supports` (see
        :func:`evaluate_workloads_batch`); designs with
        ``batch_capable = False`` raise.
        """
        raise NotImplementedError(
            f"{self.name} has no batch evaluation path"
        )

    @property
    def supported_patterns(self) -> str:
        """Human-readable Table 3 row: patterns per operand."""
        return "A: dense; B: dense"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def evaluate_workloads_batch(
    design: AcceleratorDesign,
    workloads: Sequence[MatmulWorkload],
    estimator: Estimator,
    batch_source: Optional[
        Callable[[List[MatmulWorkload]], WorkloadBatch]
    ] = None,
) -> List[Optional[Metrics]]:
    """Batch counterpart of the engine's per-pair evaluation unit:
    Metrics per workload as given, ``None`` where unsupported.

    Unsupported workloads are filtered out before stacking (exactly the
    scalar :func:`~repro.eval.harness.evaluate_workload` rule) and the
    supported remainder is costed in one :meth:`~AcceleratorDesign
    .evaluate_batch` call. ``batch_source`` overrides how the supported
    workloads are stacked — the engine's shared-batch planner passes
    :meth:`~repro.model.batch.SharedWorkloadStack.batch_for` so design
    groups of one miss set slice one shared stack instead of each
    rebuilding its own (the views are value-identical to a fresh
    stack, so results stay bit-identical).
    """
    results: List[Optional[Metrics]] = [None] * len(workloads)
    supported = [
        i for i, workload in enumerate(workloads)
        if design.supports(workload)
    ]
    if not supported:
        return results
    picked = [workloads[i] for i in supported]
    batch = (
        WorkloadBatch.from_workloads(picked)
        if batch_source is None
        else batch_source(picked)
    )
    for i, metrics in zip(
        supported, design.evaluate_batch(batch, estimator)
    ):
        results[i] = metrics
    return results


def best_orientation(
    design: AcceleratorDesign,
    workload: MatmulWorkload,
    estimator: Estimator,
    allow_swap: bool = True,
) -> Metrics:
    """Evaluate a design with the paper's operand-swap rule.

    Matrix-multiplication accelerators treat operands interchangeably,
    so the harness tries both orientations and reports the better EDP
    (Sec. 7.1.1). Raises :class:`UnsupportedWorkloadError` when neither
    orientation is supported.
    """
    candidates = []
    if design.supports(workload):
        candidates.append(design.evaluate(workload, estimator))
    if allow_swap:
        swapped = workload.swapped()
        if design.supports(swapped):
            metrics = design.evaluate(swapped, estimator)
            candidates.append(
                _mark_swapped(metrics)
            )
    if not candidates:
        raise UnsupportedWorkloadError(
            f"{design.name} supports neither orientation of "
            f"{workload.describe()}"
        )
    return min(candidates, key=lambda metrics: metrics.edp)


def _mark_swapped(metrics: Metrics) -> Metrics:
    from dataclasses import replace

    return replace(metrics, swapped=True)
