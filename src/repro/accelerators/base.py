"""The accelerator-design interface and the operand-swap harness rule."""

from __future__ import annotations

import abc

from repro.arch.designs import DesignResources
from repro.energy.estimator import Estimator
from repro.errors import UnsupportedWorkloadError
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload


class AcceleratorDesign(abc.ABC):
    """One evaluated design: resources plus an analytical cost model."""

    #: Short name used in tables/figures.
    name: str

    def __init__(self, resources: DesignResources) -> None:
        self.resources = resources

    @abc.abstractmethod
    def supports(self, workload: MatmulWorkload) -> bool:
        """Whether the design can process this workload *as given*
        (before any operand swap) and produce functionally correct
        results."""

    @abc.abstractmethod
    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        """Cost the workload as given (no operand swap)."""

    @property
    def supported_patterns(self) -> str:
        """Human-readable Table 3 row: patterns per operand."""
        return "A: dense; B: dense"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def best_orientation(
    design: AcceleratorDesign,
    workload: MatmulWorkload,
    estimator: Estimator,
    allow_swap: bool = True,
) -> Metrics:
    """Evaluate a design with the paper's operand-swap rule.

    Matrix-multiplication accelerators treat operands interchangeably,
    so the harness tries both orientations and reports the better EDP
    (Sec. 7.1.1). Raises :class:`UnsupportedWorkloadError` when neither
    orientation is supported.
    """
    candidates = []
    if design.supports(workload):
        candidates.append(design.evaluate(workload, estimator))
    if allow_swap:
        swapped = workload.swapped()
        if design.supports(swapped):
            metrics = design.evaluate(swapped, estimator)
            candidates.append(
                _mark_swapped(metrics)
            )
    if not candidates:
        raise UnsupportedWorkloadError(
            f"{design.name} supports neither orientation of "
            f"{workload.describe()}"
        )
    return min(candidates, key=lambda metrics: metrics.edp)


def _mark_swapped(metrics: Metrics) -> Metrics:
    from dataclasses import replace

    return replace(metrics, swapped=True)
