"""TC: the dense tensor-core-like baseline (paper Sec. 7.1.1).

Oblivious to sparsity: every product is scheduled and every operand word
stored and moved uncompressed. Zero sparsity tax, zero sparsity benefit
— the normalization baseline for every figure.
"""

from __future__ import annotations

from typing import List

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import tc_resources
from repro.energy.estimator import Estimator
from repro.model.batch import WorkloadBatch
from repro.model.perf import build_metrics, build_metrics_batch
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload


@register_design(category="dense", sparsity_side="none",
                 table4_order=0, main_evaluation=True)
class TC(AcceleratorDesign):
    """Dense accelerator: 320 KB GLB, 4 x 2 KB RF, 1024 MACs."""

    name = "TC"
    batch_capable = True

    def __init__(self) -> None:
        super().__init__(tc_resources())

    @property
    def supported_patterns(self) -> str:
        return "A: dense; B: dense"

    def supports(self, workload: MatmulWorkload) -> bool:
        # A dense design processes anything (zeros are just values).
        return True

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        scheduled = float(workload.dense_products)
        a_words = float(workload.m * workload.k)
        b_words = float(workload.k * workload.n)
        return build_metrics(
            workload=workload,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            b_stored_words=b_words,
            b_fetch_words=scheduled / self.resources.operand_reuse,
        )

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        scheduled = batch.dense_products
        return build_metrics_batch(
            batch=batch,
            resources=self.resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=batch.mk,
            b_stored_words=batch.kn,
            b_fetch_words=scheduled / self.resources.operand_reuse,
        )
