"""DSSO: dual structured sparse operands with alternating dense ranks
(paper Sec. 7.5).

Operand A (weights) carries ``C1(dense)->C0(2:4)``; operand B (input
activations) carries ``C1(2:{2<=H<=8})->C0(dense)``. Because the two
operands are never sparse at the same rank, each rank's SAF performs a
dense-sparse intersection, which balances perfectly — so *both*
operands' sparsity turns into speedup (unlike HighLight, which only
gates on B). The trade-off: fewer supported operand-B degrees.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accelerators.base import AcceleratorDesign
from repro.accelerators.registry import register_design
from repro.arch.designs import highlight_resources
from repro.compression.formats import offset_bits
from repro.energy.estimator import Estimator
from repro.errors import UnsupportedWorkloadError
from repro.model.batch import WorkloadBatch
from repro.model.perf import (
    build_metrics,
    build_metrics_batch,
    compute_cycles,
    compute_cycles_array,
)
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload, Structure
from repro.sparsity.pattern import GHRange

WORD_BITS = 16

#: Operand A: rank0 2:4, rank1 dense.
DSSO_A_RANK0 = GHRange(2, 4, 4)
#: Operand B: rank1 2:{2..8}, rank0 dense.
DSSO_B_RANK1 = GHRange(2, 2, 8)


@register_design(category="hss", sparsity_side="dual",
                 main_evaluation=False, study="sec7.5")
class DSSO(AcceleratorDesign):
    """The dual-side HSS design of Fig. 17."""

    name = "DSSO"
    batch_capable = True

    def __init__(self) -> None:
        # Same hardware resources as HighLight (the study isolates the
        # dataflow/SAF difference, not a re-allocation).
        super().__init__(highlight_resources())

    @property
    def supported_patterns(self) -> str:
        return "A: C1(dense)->C0(2:4); B: C1(2:{2<=H<=8})->C0(dense)"

    def supports(self, workload: MatmulWorkload) -> bool:
        return self._a_ok(workload) and self._b_ok(workload)

    @staticmethod
    def _a_ok(workload: MatmulWorkload) -> bool:
        a = workload.a
        if a.is_dense:
            return True
        if a.structure is not Structure.HSS or a.pattern is None:
            return False
        rank0 = a.pattern.rank(0)
        upper_dense = all(
            rule.g == rule.h for rule in a.pattern.ranks[1:]
        )
        return DSSO_A_RANK0.supports(rank0) and upper_dense

    @staticmethod
    def _b_ok(workload: MatmulWorkload) -> bool:
        b = workload.b
        if b.is_dense:
            return True
        if b.structure is not Structure.HSS or b.pattern is None:
            return False
        if b.pattern.num_ranks < 2:
            return False
        rank0 = b.pattern.rank(0)
        rank1 = b.pattern.rank(1)
        return rank0.g == rank0.h and DSSO_B_RANK1.supports(rank1)

    def evaluate(
        self, workload: MatmulWorkload, estimator: Estimator
    ) -> Metrics:
        if not self.supports(workload):
            raise UnsupportedWorkloadError(
                f"DSSO cannot process {workload.describe()}"
            )
        resources = self.resources
        density_a = workload.a.density
        density_b = workload.b.density
        # Dual-side skipping: both structured densities turn into
        # speedup; dense-sparse intersections balance perfectly.
        scheduled = workload.dense_products * density_a * density_b

        a_words = workload.m * workload.k * density_a
        a_meta_words = (
            a_words * offset_bits(DSSO_A_RANK0.h_max) / WORD_BITS
            if not workload.a.is_dense
            else 0.0
        )
        b_words = workload.k * workload.n * density_b
        b_blocks = b_words / max(1, DSSO_A_RANK0.h_max)
        b_meta_words = (
            b_blocks * offset_bits(DSSO_B_RANK1.h_max) / WORD_BITS
            if not workload.b.is_dense
            else 0.0
        )

        reuse = resources.operand_reuse
        b_fetch = scheduled / reuse
        cycles = compute_cycles(scheduled, resources.arch.num_macs, 1.0)
        saf_events = [
            ("rank0_mux", "select", scheduled),
            ("rank1_addr_mux", "select", scheduled / DSSO_A_RANK0.g),
            ("vfmu", "write_word", b_fetch),
            ("vfmu", "block_read", cycles * 4),
            ("vfmu", "shift", cycles * 4),
        ]
        return build_metrics(
            workload=workload,
            resources=resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta_words,
            b_stored_words=b_words,
            b_meta_words=b_meta_words,
            b_fetch_words=b_fetch,
            saf_events=saf_events,
            compress_values=b_words if not workload.b.is_dense else 0.0,
        )

    def evaluate_batch(
        self, batch: WorkloadBatch, estimator: Estimator
    ) -> List[Metrics]:
        for workload in batch.workloads:
            if not self.supports(workload):
                raise UnsupportedWorkloadError(
                    f"DSSO cannot process {workload.describe()}"
                )
        resources = self.resources
        density_a = batch.a_density
        density_b = batch.b_density
        scheduled = batch.dense_products * density_a * density_b

        a_words = batch.mk * density_a
        a_meta_words = np.where(
            batch.a_is_dense,
            0.0,
            a_words * offset_bits(DSSO_A_RANK0.h_max) / WORD_BITS,
        )
        b_words = batch.kn * density_b
        b_blocks = b_words / max(1, DSSO_A_RANK0.h_max)
        b_meta_words = np.where(
            batch.b_is_dense,
            0.0,
            b_blocks * offset_bits(DSSO_B_RANK1.h_max) / WORD_BITS,
        )

        reuse = resources.operand_reuse
        b_fetch = scheduled / reuse
        cycles = compute_cycles_array(
            scheduled, resources.arch.num_macs, 1.0
        )
        saf_events = [
            ("rank0_mux", "select", scheduled),
            ("rank1_addr_mux", "select", scheduled / DSSO_A_RANK0.g),
            ("vfmu", "write_word", b_fetch),
            ("vfmu", "block_read", cycles * 4),
            ("vfmu", "shift", cycles * 4),
        ]
        return build_metrics_batch(
            batch=batch,
            resources=resources,
            estimator=estimator,
            scheduled_products=scheduled,
            utilization=1.0,
            full_macs=scheduled,
            a_stored_words=a_words,
            a_meta_words=a_meta_words,
            b_stored_words=b_words,
            b_meta_words=b_meta_words,
            b_fetch_words=b_fetch,
            saf_events=saf_events,
            compress_values=np.where(batch.b_is_dense, 0.0, b_words),
        )
