"""Whole-architecture specification: an ordered memory/compute hierarchy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.components import Component
from repro.errors import ArchitectureError


@dataclass(frozen=True)
class ArchitectureSpec:
    """An accelerator architecture: named components plus key shape facts.

    ``spatial_rows`` x ``spatial_cols`` describes the logical MAC grid
    used for spatial reuse accounting (rows share operand-B broadcasts,
    columns spatially accumulate partial sums, as in Fig. 10's PE rows).
    """

    name: str
    components: Tuple[Component, ...]
    num_macs: int
    spatial_rows: int
    spatial_cols: int

    def __post_init__(self) -> None:
        if self.num_macs <= 0:
            raise ArchitectureError("num_macs must be positive")
        if self.spatial_rows * self.spatial_cols != self.num_macs:
            raise ArchitectureError(
                f"{self.name}: spatial grid "
                f"{self.spatial_rows}x{self.spatial_cols} does not equal "
                f"num_macs={self.num_macs}"
            )
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"duplicate component names in {names}")

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        for candidate in self.components:
            if candidate.name == name:
                return candidate
        raise ArchitectureError(
            f"{self.name} has no component {name!r}; "
            f"has {[c.name for c in self.components]}"
        )

    def has_component(self, name: str) -> bool:
        return any(c.name == name for c in self.components)

    def components_by_class(self) -> Dict[str, List[Component]]:
        """Group components by their class value (for reporting)."""
        groups: Dict[str, List[Component]] = {}
        for component in self.components:
            groups.setdefault(component.component_class.value, []).append(
                component
            )
        return groups
