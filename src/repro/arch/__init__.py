"""Architecture descriptions: components, designs (Table 4), area model."""

from repro.arch.components import (
    Component,
    ComponentClass,
)
from repro.arch.spec import ArchitectureSpec
from repro.arch.designs import (
    DesignResources,
    dstc_resources,
    highlight_resources,
    s2ta_resources,
    stc_resources,
    tc_resources,
    table4,
)
from repro.arch.area import AreaModel, area_breakdown

__all__ = [
    "Component",
    "ComponentClass",
    "ArchitectureSpec",
    "DesignResources",
    "tc_resources",
    "stc_resources",
    "dstc_resources",
    "s2ta_resources",
    "highlight_resources",
    "table4",
    "AreaModel",
    "area_breakdown",
]
