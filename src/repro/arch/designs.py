"""Resource allocations for all evaluated designs (paper Table 4).

Every design gets similar storage and compute: a global buffer (GLB,
320 KB total — sparse designs partition it 256 KB data + 64 KB metadata),
register files, and 1024 MACs. Design-specific sparsity-support
components (muxes, VFMU, intersection units, compression units) are
included so the area and energy sparsity tax is attributable (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.arch.components import (
    Component,
    ComponentClass,
    mac,
    mux,
    regfile,
    sram,
)
from repro.arch.spec import ArchitectureSpec

KB = 1024

#: Sparse designs partition one 320 KB physical GLB array into data and
#: metadata regions (Table 4); per-access energy scales with the
#: *physical* array size, identical for every design.
GLB_ARRAY_BYTES = 320 * KB

#: All designs compute with 1024 MACs arranged as a 32x32 logical grid
#: (four PE arrays of 256 MACs, Table 4 / Fig. 6(c)).
NUM_MACS = 1024
SPATIAL_ROWS = 32
SPATIAL_COLS = 32
DATAWIDTH_BITS = 16


@dataclass(frozen=True)
class DesignResources:
    """Architecture plus the reuse facts the analytical model consumes."""

    arch: ArchitectureSpec
    #: GLB bytes reserved for data / metadata (Table 4 partitioning).
    glb_data_bytes: int
    glb_meta_bytes: int
    #: Spatial partial-sum reduction width: how many MACs' products are
    #: combined before a register-file update. Inner-product designs
    #: reduce across a PE row (32); DSTC's outer-product dataflow sends
    #: every product to the accumulation buffer (1).
    psum_spatial_reduction: int
    #: Multiplicative on-chip reuse of each operand word fetched from
    #: GLB (how many MACs consume one fetched word). Bounded by the
    #: spatial grid; S2TA's much smaller RF (64 x 64 B) halves it.
    operand_reuse: int

    @property
    def name(self) -> str:
        return self.arch.name


def _common(name_prefix: str) -> Tuple[Component, ...]:
    return (
        Component(f"{name_prefix}_dram", ComponentClass.DRAM, 1,
                  {"technology": "LPDDR4"}),
        mac("macs", NUM_MACS, DATAWIDTH_BITS),
    )


def tc_resources() -> DesignResources:
    """TC-like dense accelerator: 320 KB GLB, 4 x 2 KB RF, 4 x 256 MACs."""
    components = _common("tc") + (
        sram("glb_data", 320 * KB, array_bytes=GLB_ARRAY_BYTES),
        regfile("rf", 2 * KB, count=4),
    )
    arch = ArchitectureSpec(
        "TC", components, NUM_MACS, SPATIAL_ROWS, SPATIAL_COLS
    )
    return DesignResources(
        arch=arch,
        glb_data_bytes=320 * KB,
        glb_meta_bytes=0,
        psum_spatial_reduction=32,
        operand_reuse=32,
    )


def stc_resources() -> DesignResources:
    """STC-like single-sided 2:4 structured sparse accelerator."""
    components = _common("stc") + (
        sram("glb_data", 256 * KB, array_bytes=GLB_ARRAY_BYTES),
        sram("glb_meta", 64 * KB, array_bytes=GLB_ARRAY_BYTES),
        regfile("rf", 2 * KB, count=4),
        # One 4-to-2 selector (two 4-to-1 muxes) per pair of MACs picks
        # the B operands matching A's 2:4 metadata.
        mux("b_select_mux", inputs=4, width_bits=DATAWIDTH_BITS,
            count=NUM_MACS),
    )
    arch = ArchitectureSpec(
        "STC", components, NUM_MACS, SPATIAL_ROWS, SPATIAL_COLS
    )
    return DesignResources(
        arch=arch,
        glb_data_bytes=256 * KB,
        glb_meta_bytes=64 * KB,
        psum_spatial_reduction=32,
        operand_reuse=32,
    )


def dstc_resources() -> DesignResources:
    """DSTC-like dual-sided unstructured sparse accelerator.

    The outer-product dataflow needs a large accumulation buffer that is
    read-modified-written by (nearly) every product — the dominant
    sparsity tax the paper calls out.
    """
    components = _common("dstc") + (
        sram("glb_data", 256 * KB, array_bytes=GLB_ARRAY_BYTES),
        sram("glb_meta", 64 * KB, array_bytes=GLB_ARRAY_BYTES),
        # Outer-product partial results land at arbitrary output
        # coordinates, so the accumulation store must cover a whole
        # output tile: it is a large SRAM, not a small RF, and every
        # product read-modify-writes it (the paper's "costly
        # accumulation buffer").
        sram("accum_buffer", 64 * KB, count=4),
        Component("intersection", ComponentClass.INTERSECTION, NUM_MACS,
                  {"style": "prefix_sum"}),
        Component("compression_unit", ComponentClass.COMPRESSION, 1, {}),
    )
    arch = ArchitectureSpec(
        "DSTC", components, NUM_MACS, SPATIAL_ROWS, SPATIAL_COLS
    )
    return DesignResources(
        arch=arch,
        glb_data_bytes=256 * KB,
        glb_meta_bytes=64 * KB,
        psum_spatial_reduction=1,
        operand_reuse=32,
    )


def s2ta_resources() -> DesignResources:
    """S2TA-like dual-sided structured sparse accelerator.

    Same MAC count but 64 PEs with tiny 64 B register files (Table 4),
    which halves the per-fetch operand reuse relative to the 2 KB-RF
    designs.
    """
    components = _common("s2ta") + (
        sram("glb_data", 256 * KB, array_bytes=GLB_ARRAY_BYTES),
        sram("glb_meta", 64 * KB, array_bytes=GLB_ARRAY_BYTES),
        regfile("rf", 64, count=64),
        # Dual-sided selection: 8-wide selectors on both operands.
        mux("a_select_mux", inputs=8, width_bits=DATAWIDTH_BITS,
            count=NUM_MACS),
        mux("b_select_mux", inputs=8, width_bits=DATAWIDTH_BITS,
            count=NUM_MACS),
        Component("compression_unit", ComponentClass.COMPRESSION, 1, {}),
    )
    arch = ArchitectureSpec(
        "S2TA", components, NUM_MACS, SPATIAL_ROWS, SPATIAL_COLS
    )
    return DesignResources(
        arch=arch,
        glb_data_bytes=256 * KB,
        glb_meta_bytes=64 * KB,
        psum_spatial_reduction=32,
        operand_reuse=8,
    )


def highlight_resources() -> DesignResources:
    """HighLight: hierarchical skipping SAFs plus operand-B gating.

    1024 MACs in four PE arrays; each PE holds G0=2 MACs, so there are
    512 PEs, each with one 4-to-2 Rank0 selector. Each PE array has one
    VFMU (a 2 x Hmax-block register buffer with shift control) and
    narrow 4-to-2 *address* muxes for the Rank1 SAF (Sec. 6.3.2).
    """
    vfmu_buffer_bytes = 2 * 8 * 4 * (DATAWIDTH_BITS // 8)  # 2 x Hmax1 blocks
    components = _common("highlight") + (
        sram("glb_data", 256 * KB, array_bytes=GLB_ARRAY_BYTES),
        sram("glb_meta", 64 * KB, array_bytes=GLB_ARRAY_BYTES),
        regfile("rf", 2 * KB, count=4),
        mux("rank0_mux", inputs=4, width_bits=DATAWIDTH_BITS,
            count=NUM_MACS),
        mux("rank1_addr_mux", inputs=4, width_bits=4, count=8),
        Component("vfmu", ComponentClass.VFMU, 4,
                  {"buffer_bytes": vfmu_buffer_bytes}),
        Component("compression_unit", ComponentClass.COMPRESSION, 1, {}),
    )
    arch = ArchitectureSpec(
        "HighLight", components, NUM_MACS, SPATIAL_ROWS, SPATIAL_COLS
    )
    return DesignResources(
        arch=arch,
        glb_data_bytes=256 * KB,
        glb_meta_bytes=64 * KB,
        psum_spatial_reduction=32,
        operand_reuse=32,
    )


def table4() -> Tuple[DesignResources, ...]:
    """All Table 4 rows, in paper order."""
    return (
        tc_resources(),
        stc_resources(),
        dstc_resources(),
        s2ta_resources(),
        highlight_resources(),
    )
