"""Hardware component descriptions (the Accelergy "compound component"
level of detail that the energy/area plug-ins consume)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Union

from repro.errors import ArchitectureError

Attribute = Union[int, float, str, bool]


class ComponentClass(enum.Enum):
    """The technology class a component belongs to.

    The class selects which energy/area plug-in characterizes the
    component, mirroring how Accelergy routes compound components to
    estimation plug-ins (synthesized RTL for logic, an SRAM compiler for
    small SRAMs, CACTI for large SRAMs, vendor data for DRAM).
    """

    MAC = "mac"
    REGISTER = "register"
    REGFILE = "regfile"
    SRAM = "sram"
    DRAM = "dram"
    MUX = "mux"
    VFMU = "vfmu"
    INTERSECTION = "intersection"
    COMPRESSION = "compression"
    CONTROL = "control"
    NOC = "noc"


@dataclass(frozen=True)
class Component:
    """One component instance group in an architecture.

    ``count`` is the number of identical instances (e.g. 1024 MACs);
    ``attributes`` carries plug-in-specific sizing such as
    ``capacity_bytes`` for memories, ``inputs``/``width_bits`` for muxes,
    ``datawidth`` for MACs.
    """

    name: str
    component_class: ComponentClass
    count: int = 1
    attributes: Dict[str, Attribute] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ArchitectureError(
                f"component {self.name!r} has non-positive count {self.count}"
            )

    def attribute(self, key: str, default: Attribute = None) -> Attribute:
        """Fetch a sizing attribute with an optional default."""
        if default is None and key not in self.attributes:
            raise ArchitectureError(
                f"component {self.name!r} is missing attribute {key!r}"
            )
        return self.attributes.get(key, default)


def sram(name: str, capacity_bytes: int, count: int = 1, **extra) -> Component:
    """Convenience constructor for an SRAM buffer."""
    attrs: Dict[str, Attribute] = {"capacity_bytes": capacity_bytes}
    attrs.update(extra)
    return Component(name, ComponentClass.SRAM, count, attrs)


def regfile(name: str, capacity_bytes: int, count: int = 1) -> Component:
    """Convenience constructor for a register file."""
    return Component(
        name, ComponentClass.REGFILE, count,
        {"capacity_bytes": capacity_bytes},
    )


def mac(name: str, count: int, datawidth: int = 16) -> Component:
    """Convenience constructor for a MAC unit group."""
    return Component(name, ComponentClass.MAC, count, {"datawidth": datawidth})


def mux(
    name: str, inputs: int, width_bits: int, count: int = 1
) -> Component:
    """Convenience constructor for an N-to-1 mux group."""
    return Component(
        name, ComponentClass.MUX, count,
        {"inputs": inputs, "width_bits": width_bits},
    )
