"""Area model and the Fig. 16(b) breakdown.

Components are attributed to the categories the paper's area pie uses:
compute (MACs), GLB, RF, SAF (muxes, VFMU, intersection — the sparsity
tax), and other (compression unit, control). The headline check is that
HighLight's SAFs account for only ~5.7% of its area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.arch.components import Component, ComponentClass
from repro.arch.designs import DesignResources
from repro.arch.spec import ArchitectureSpec

if TYPE_CHECKING:  # deferred: energy imports arch.components
    from repro.energy.estimator import Estimator

#: Component classes that constitute the sparsity-acceleration tax.
SAF_CLASSES = (
    ComponentClass.MUX,
    ComponentClass.VFMU,
    ComponentClass.INTERSECTION,
)


def _category(component: Component) -> str:
    cls = component.component_class
    if cls is ComponentClass.MAC:
        return "compute"
    if cls is ComponentClass.SRAM:
        return "glb"
    if cls in (ComponentClass.REGFILE, ComponentClass.REGISTER):
        return "rf"
    if cls in SAF_CLASSES:
        return "saf"
    if cls is ComponentClass.DRAM:
        return "dram"
    return "other"


@dataclass(frozen=True)
class AreaModel:
    """Per-category area of one architecture, in um^2."""

    design: str
    by_category: Dict[str, float]

    @property
    def total_um2(self) -> float:
        """On-chip area (DRAM is off-chip and excluded)."""
        return sum(
            area for key, area in self.by_category.items() if key != "dram"
        )

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def fraction(self, category: str) -> float:
        """Share of on-chip area attributed to ``category``."""
        total = self.total_um2
        if total == 0:
            return 0.0
        return self.by_category.get(category, 0.0) / total

    @property
    def saf_fraction(self) -> float:
        """The sparsity-tax area share (paper: ~5.7% for HighLight)."""
        return self.fraction("saf")


def area_breakdown(
    resources: DesignResources, estimator: Optional["Estimator"] = None
) -> AreaModel:
    """Compute the Fig. 16(b)-style per-category area breakdown."""
    if estimator is None:
        from repro.energy.estimator import Estimator

        estimator = Estimator()
    return _breakdown(resources.arch, estimator)


def _breakdown(arch: ArchitectureSpec, estimator: "Estimator") -> AreaModel:
    by_category: Dict[str, float] = {}
    for component in arch.components:
        category = _category(component)
        by_category[category] = by_category.get(
            category, 0.0
        ) + estimator.area_um2(component)
    return AreaModel(design=arch.name, by_category=by_category)
