"""DNN workloads: layer shapes, model tables, Toeplitz expansion.

The paper evaluates three representative DNNs (Sec. 7.1.2): the
convolutional ResNet50, the attention-based DeiT-small (both ImageNet),
and Transformer-Big (WMT16 EN-DE). All layers are processed as matrix
multiplications: convolutions are flattened via Toeplitz (im2col)
expansion (Fig. 8(a)).
"""

from repro.dnn.layers import ConvLayer, LinearLayer, Layer
from repro.dnn.models import (
    DnnModel,
    deit_small,
    efficientnet_b0,
    get_model,
    model_names,
    resnet50,
    transformer_big,
    all_models,
)
from repro.dnn.inference import (
    SimulatedConvLayer,
    SimulatedNetwork,
    random_network,
)
from repro.dnn.toeplitz import toeplitz_expand, conv_output_size
from repro.dnn.reference import conv2d_reference, linear_reference, matmul

__all__ = [
    "ConvLayer",
    "LinearLayer",
    "Layer",
    "DnnModel",
    "resnet50",
    "deit_small",
    "efficientnet_b0",
    "transformer_big",
    "all_models",
    "get_model",
    "model_names",
    "SimulatedConvLayer",
    "SimulatedNetwork",
    "random_network",
    "toeplitz_expand",
    "conv_output_size",
    "conv2d_reference",
    "linear_reference",
    "matmul",
]
