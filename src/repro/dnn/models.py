"""Layer tables for the three evaluated DNNs (paper Sec. 7.1.2).

Shapes follow the published architectures:

* **ResNet50** [16]: the standard ImageNet model; distinct conv shapes
  listed once with repeat counts. All convolutional and FC layers are
  pruned (Sec. 7.3).
* **DeiT-small** [47]: 12 transformer blocks, d=384, 6 heads, MLP 4x,
  197 tokens. Only the feed-forward blocks and output projections are
  pruned (its parameter count is already small).
* **Transformer-Big** [50]: 6+6 encoder/decoder blocks, d=1024,
  d_ff=4096. Feed-forward blocks and all projections are pruned.

``prunable`` marks the layers the paper sparsifies; activation sparsity
(operand B) is a per-model property: ReLU-based ResNet50 has ~60% sparse
activations, the GELU/softmax transformers are nearly dense (<10%).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from functools import lru_cache

from repro.dnn.layers import ConvLayer, Layer, LinearLayer
from repro.errors import WorkloadError


@dataclass(frozen=True)
class DnnModel:
    """A network: named layers plus sparsity-relevant properties."""

    name: str
    layers: Tuple[Layer, ...]
    #: Names of layers that weight pruning applies to.
    prunable: Tuple[str, ...]
    #: Average input-activation sparsity (operand B) across layers.
    activation_sparsity: float
    #: How amenable the network is to pruning: the weight sparsity it
    #: tolerates with <0.5% accuracy loss under unstructured pruning
    #: (ResNet50 ~0.8; compact models much less — Sec. 1).
    prunability: float

    def prunable_layers(self) -> List[Layer]:
        return [layer for layer in self.layers if layer.name in self.prunable]

    @property
    def total_macs(self) -> int:
        return sum(layer.macs * layer.repeats for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(
            layer.weight_count * layer.repeats for layer in self.layers
        )


# Built-in constructors are memoized: DnnModel is frozen, so the
# shared instance cannot go stale, and identity-keyed sweep memos
# (realized layer pairs) then hit across repeated constructions.
@lru_cache(maxsize=1)
def resnet50() -> DnnModel:
    """ResNet50 at 224x224: distinct conv/FC shapes with repeats."""
    layers: List[Layer] = [
        ConvLayer("conv1", 3, 64, 7, 224, stride=2, padding=3),
        # conv2_x: 3 bottlenecks at 56x56.
        ConvLayer("conv2_reduce", 64, 64, 1, 56),
        ConvLayer("conv2_3x3", 64, 64, 3, 56, padding=1, repeats=3),
        ConvLayer("conv2_expand", 64, 256, 1, 56, repeats=3),
        ConvLayer("conv2_in256", 256, 64, 1, 56, repeats=2),
        ConvLayer("conv2_proj", 64, 256, 1, 56),
        # conv3_x: 4 bottlenecks at 28x28.
        ConvLayer("conv3_reduce", 256, 128, 1, 56, stride=2),
        ConvLayer("conv3_3x3", 128, 128, 3, 28, padding=1, repeats=4),
        ConvLayer("conv3_expand", 128, 512, 1, 28, repeats=4),
        ConvLayer("conv3_in512", 512, 128, 1, 28, repeats=3),
        ConvLayer("conv3_proj", 256, 512, 1, 56, stride=2),
        # conv4_x: 6 bottlenecks at 14x14.
        ConvLayer("conv4_reduce", 512, 256, 1, 28, stride=2),
        ConvLayer("conv4_3x3", 256, 256, 3, 14, padding=1, repeats=6),
        ConvLayer("conv4_expand", 256, 1024, 1, 14, repeats=6),
        ConvLayer("conv4_in1024", 1024, 256, 1, 14, repeats=5),
        ConvLayer("conv4_proj", 512, 1024, 1, 28, stride=2),
        # conv5_x: 3 bottlenecks at 7x7.
        ConvLayer("conv5_reduce", 1024, 512, 1, 14, stride=2),
        ConvLayer("conv5_3x3", 512, 512, 3, 7, padding=1, repeats=3),
        ConvLayer("conv5_expand", 512, 2048, 1, 7, repeats=3),
        ConvLayer("conv5_in2048", 2048, 512, 1, 7, repeats=2),
        ConvLayer("conv5_proj", 1024, 2048, 1, 14, stride=2),
        LinearLayer("fc", 2048, 1000),
    ]
    # "For ResNet50, we prune all convolutional and fully-connected
    # layers" (Sec. 7.3).
    prunable = tuple(layer.name for layer in layers)
    return DnnModel(
        name="ResNet50",
        layers=tuple(layers),
        prunable=prunable,
        activation_sparsity=0.60,  # ReLU activations (Sec. 2.2.3)
        prunability=0.80,
    )


def _transformer_layers(
    prefix: str, d_model: int, d_ff: int, tokens: int, blocks: int
) -> List[Layer]:
    return [
        LinearLayer(f"{prefix}_q_proj", d_model, d_model, tokens, blocks),
        LinearLayer(f"{prefix}_k_proj", d_model, d_model, tokens, blocks),
        LinearLayer(f"{prefix}_v_proj", d_model, d_model, tokens, blocks),
        LinearLayer(f"{prefix}_out_proj", d_model, d_model, tokens, blocks),
        LinearLayer(f"{prefix}_ff1", d_model, d_ff, tokens, blocks),
        LinearLayer(f"{prefix}_ff2", d_ff, d_model, tokens, blocks),
    ]


@lru_cache(maxsize=1)
def transformer_big() -> DnnModel:
    """Transformer-Big for WMT16 EN-DE: 6+6 blocks, d=1024, ff=4096."""
    tokens = 128
    layers: List[Layer] = []
    layers += _transformer_layers("enc", 1024, 4096, tokens, 6)
    layers += _transformer_layers("dec", 1024, 4096, tokens, 6)
    # Decoder cross-attention key/value projection of the encoder
    # memory: kept dense (not among "the feed-forward block and all
    # projection weights" the paper prunes).
    layers += [
        LinearLayer("dec_xattn_kv", 1024, 2048, tokens, 6),
    ]
    prunable = tuple(
        layer.name for layer in layers if layer.name != "dec_xattn_kv"
    )
    return DnnModel(
        name="Transformer-Big",
        layers=tuple(layers),
        prunable=prunable,
        activation_sparsity=0.10,  # <10% average (Sec. 2.2.3)
        prunability=0.70,
    )


@lru_cache(maxsize=1)
def deit_small() -> DnnModel:
    """DeiT-small: 12 blocks, d=384, MLP ratio 4, 197 tokens."""
    tokens = 197
    d_model, d_ff, blocks = 384, 1536, 12
    layers: List[Layer] = [
        ConvLayer("patch_embed", 3, 384, 16, 224, stride=16),
        LinearLayer("qkv_proj", d_model, 3 * d_model, tokens, blocks),
        LinearLayer("out_proj", d_model, d_model, tokens, blocks),
        LinearLayer("ff1", d_model, d_ff, tokens, blocks),
        LinearLayer("ff2", d_ff, d_model, tokens, blocks),
        LinearLayer("head", d_model, 1000),
    ]
    # Only the feed-forward blocks and output projections are pruned
    # (Sec. 7.3: fewer layers pruned due to the small parameter count).
    prunable = ("out_proj", "ff1", "ff2")
    return DnnModel(
        name="DeiT-small",
        layers=tuple(layers),
        prunable=prunable,
        activation_sparsity=0.10,
        prunability=0.50,
    )


def _mbconv(
    prefix: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    input_size: int,
    stride: int,
    expand: int,
    repeats: int,
) -> List[Layer]:
    """One MBConv block shape (expand 1x1, depthwise kxk, project 1x1)."""
    mid = in_channels * expand
    layers: List[Layer] = []
    if expand > 1:
        layers.append(
            ConvLayer(f"{prefix}_expand", in_channels, mid, 1,
                      input_size, repeats=repeats)
        )
    layers.append(
        ConvLayer(
            f"{prefix}_dw", mid, mid, kernel, input_size,
            stride=stride, padding=kernel // 2, groups=mid,
            repeats=repeats,
        )
    )
    out_size = (input_size + 2 * (kernel // 2) - kernel) // stride + 1
    layers.append(
        ConvLayer(f"{prefix}_project", mid, out_channels, 1, out_size,
                  repeats=repeats)
    )
    return layers


@lru_cache(maxsize=1)
def efficientnet_b0() -> DnnModel:
    """EfficientNet-B0: the paper's Sec. 1 example of a compact model
    that "cannot be pruned as aggressively" — an extension experiment
    beyond the three evaluated networks.

    Depthwise layers (tiny per-group GEMMs) and the stem are kept
    dense; the pointwise expand/project convolutions and the head are
    prunable. Swish activations are nearly dense.
    """
    layers: List[Layer] = [
        ConvLayer("stem", 3, 32, 3, 224, stride=2, padding=1),
    ]
    layers += _mbconv("mb1", 32, 16, 3, 112, 1, 1, 1)
    layers += _mbconv("mb2a", 16, 24, 3, 112, 2, 6, 1)
    layers += _mbconv("mb2b", 24, 24, 3, 56, 1, 6, 1)
    layers += _mbconv("mb3a", 24, 40, 5, 56, 2, 6, 1)
    layers += _mbconv("mb3b", 40, 40, 5, 28, 1, 6, 1)
    layers += _mbconv("mb4a", 40, 80, 3, 28, 2, 6, 1)
    layers += _mbconv("mb4b", 80, 80, 3, 14, 1, 6, 2)
    layers += _mbconv("mb5a", 80, 112, 5, 14, 1, 6, 1)
    layers += _mbconv("mb5b", 112, 112, 5, 14, 1, 6, 2)
    layers += _mbconv("mb6a", 112, 192, 5, 14, 2, 6, 1)
    layers += _mbconv("mb6b", 192, 192, 5, 7, 1, 6, 3)
    layers += _mbconv("mb7", 192, 320, 3, 7, 1, 6, 1)
    layers += [
        ConvLayer("head_conv", 320, 1280, 1, 7),
        LinearLayer("classifier", 1280, 1000),
    ]
    prunable = tuple(
        layer.name
        for layer in layers
        if "_dw" not in layer.name and layer.name != "stem"
    )
    return DnnModel(
        name="EfficientNet-B0",
        layers=tuple(layers),
        prunable=prunable,
        activation_sparsity=0.10,  # swish: dense activations (Sec. 1)
        prunability=0.45,
    )


def all_models() -> Tuple[DnnModel, ...]:
    """The three evaluated networks, in paper order."""
    return (resnet50(), deit_small(), transformer_big())


#: Registered networks, addressable by name from the CLI and the
#: network-sweep experiments (paper trio first, extensions after).
MODEL_BUILDERS: Dict[str, Callable[[], DnnModel]] = {
    "ResNet50": resnet50,
    "DeiT-small": deit_small,
    "Transformer-Big": transformer_big,
    "EfficientNet-B0": efficientnet_b0,
}


#: The module-level builders above, frozen at import time: runtime
#: registrations may never shadow these, case-insensitively — a model
#: file named ``ResNet50`` (or ``resnet50``) silently replacing the
#: builtin would corrupt every later sweep that asks for it by name.
BUILTIN_MODELS: Tuple[str, ...] = tuple(MODEL_BUILDERS)


def is_builtin_model(name: str) -> bool:
    """Whether ``name`` resolves (case-insensitively) to a builtin."""
    return any(
        builtin.lower() == name.lower() for builtin in BUILTIN_MODELS
    )


def _registered_name(name: str) -> Optional[str]:
    """The registered spelling ``name`` resolves to, if any.

    Case-insensitive to match :func:`get_model`: a case-variant that
    registers but can never be resolved is unreachable dead weight.
    """
    for registered in MODEL_BUILDERS:
        if registered.lower() == name.lower():
            return registered
    return None


def model_names() -> Tuple[str, ...]:
    """All registered network names, registration order."""
    return tuple(MODEL_BUILDERS)


def register_model(model: DnnModel, replace: bool = False) -> DnnModel:
    """Register a concrete network into :data:`MODEL_BUILDERS`.

    Runtime counterpart of the module-level builders, used by
    ``repro sweep --model-file``. Collision checks are
    case-insensitive because :func:`get_model` resolves
    case-insensitively — a case-variant would register but be
    unreachable. Shadowing a builtin is always refused (``replace``
    does not override it); shadowing an earlier runtime registration
    needs ``replace=True`` (re-registering the same file in one
    process is legitimate), and the old spelling is dropped so two
    case-variants never coexist.
    """
    existing = _registered_name(model.name)
    if existing is not None:
        if is_builtin_model(existing):
            raise WorkloadError(
                f"model {model.name!r} would shadow the built-in "
                f"{existing!r} (model names resolve "
                f"case-insensitively); rename it"
            )
        if not replace:
            raise WorkloadError(
                f"model {model.name!r} is already registered "
                f"(as {existing!r}; names resolve case-insensitively); "
                f"rename it or pass replace=True"
            )
        del MODEL_BUILDERS[existing]
    MODEL_BUILDERS[model.name] = lambda: model
    return model


#: Layer-table schema for user-defined models (``--model-file``):
#: per layer kind, (required fields, optional fields).
_LAYER_SCHEMA: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "linear": (
        ("name", "in_features", "out_features"),
        ("tokens", "repeats"),
    ),
    "conv": (
        ("name", "in_channels", "out_channels", "kernel", "input_size"),
        ("stride", "padding", "groups", "repeats"),
    ),
}

#: Top-level schema: (required, optional-with-defaults).
_MODEL_REQUIRED = ("name", "layers")
_MODEL_OPTIONAL = ("activation_sparsity", "prunability", "prunable")


def _check_fields(
    entry: Mapping[str, Any],
    required: Tuple[str, ...],
    optional: Tuple[str, ...],
    where: str,
) -> None:
    missing = sorted(set(required) - set(entry))
    unknown = sorted(set(entry) - set(required) - set(optional))
    problems = []
    if missing:
        problems.append(f"missing field(s): {', '.join(missing)}")
    if unknown:
        problems.append(f"unknown field(s): {', '.join(unknown)}")
    if problems:
        raise WorkloadError(
            f"{where}: {'; '.join(problems)} "
            f"(required: {', '.join(required)}; optional: "
            f"{', '.join(optional) or 'none'})"
        )


def _layer_from_dict(entry: Any, index: int) -> Layer:
    where = f"layer {index}"
    if not isinstance(entry, dict):
        raise WorkloadError(f"{where}: expected an object, got {entry!r}")
    kind = entry.get("type")
    if kind not in _LAYER_SCHEMA:
        raise WorkloadError(
            f"{where}: bad or missing 'type' {kind!r}; expected one "
            f"of: {', '.join(_LAYER_SCHEMA)}"
        )
    required, optional = _LAYER_SCHEMA[kind]
    fields = {key: value for key, value in entry.items() if key != "type"}
    _check_fields(fields, required, optional, f"{where} ({kind})")
    name = fields.pop("name")
    if not isinstance(name, str) or not name:
        raise WorkloadError(f"{where}: 'name' must be a non-empty string")
    for key, value in fields.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise WorkloadError(
                f"{where} ({name!r}): {key} must be an integer, "
                f"got {value!r}"
            )
    cls = LinearLayer if kind == "linear" else ConvLayer
    return cls(name, **fields)


def model_from_dict(data: Any) -> DnnModel:
    """Build a :class:`DnnModel` from a plain layer-table dict.

    Validates the schema with errors that list the missing/unknown
    fields and the allowed set; layer shape constraints (positive
    sizes, divisible groups) are enforced by the layer constructors.
    """
    if not isinstance(data, dict):
        raise WorkloadError(
            f"model table must be a JSON object, got "
            f"{type(data).__name__}"
        )
    _check_fields(data, _MODEL_REQUIRED, _MODEL_OPTIONAL, "model table")
    name = data["name"]
    if not isinstance(name, str) or not name:
        raise WorkloadError("model table: 'name' must be a non-empty string")
    raw_layers = data["layers"]
    if not isinstance(raw_layers, list) or not raw_layers:
        raise WorkloadError(
            "model table: 'layers' must be a non-empty list"
        )
    layers = tuple(
        _layer_from_dict(entry, index)
        for index, entry in enumerate(raw_layers)
    )
    names = [layer.name for layer in layers]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise WorkloadError(
            f"model table: duplicate layer name(s): "
            f"{', '.join(duplicates)}"
        )
    prunable = data.get("prunable", names)
    if (
        not isinstance(prunable, list)
        or not all(isinstance(n, str) for n in prunable)
    ):
        raise WorkloadError(
            "model table: 'prunable' must be a list of layer names"
        )
    unknown = sorted(set(prunable) - set(names))
    if unknown:
        raise WorkloadError(
            f"model table: 'prunable' names unknown layer(s): "
            f"{', '.join(unknown)}"
        )
    activation_sparsity = data.get("activation_sparsity", 0.0)
    prunability = data.get("prunability", 0.5)
    for key, value in (
        ("activation_sparsity", activation_sparsity),
        ("prunability", prunability),
    ):
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not 0.0 <= float(value) < 1.0
        ):
            raise WorkloadError(
                f"model table: {key} must be a number in [0, 1), "
                f"got {value!r}"
            )
    return DnnModel(
        name=name,
        layers=layers,
        prunable=tuple(prunable),
        activation_sparsity=float(activation_sparsity),
        prunability=float(prunability),
    )


def load_model_file(path: "str | Path") -> DnnModel:
    """Read a user-defined layer table from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as error:
        raise WorkloadError(f"cannot read model file {path}: {error}")
    except json.JSONDecodeError as error:
        raise WorkloadError(
            f"model file {path} is not valid JSON: {error}"
        )
    try:
        return model_from_dict(data)
    except WorkloadError as error:
        raise WorkloadError(f"model file {path}: {error}")


def get_model(name: str) -> DnnModel:
    """Build a registered network by name (case-insensitive)."""
    for registered, builder in MODEL_BUILDERS.items():
        if registered.lower() == name.lower():
            return builder()
    raise WorkloadError(
        f"unknown model {name!r}; registered: "
        f"{', '.join(MODEL_BUILDERS)}"
    )
