"""Layer descriptors and their mapping to matrix multiplications.

Following the paper's Fig. 8(a) conventions for convolutions:
M = number of filters, C = input channels, R/S = kernel height/width,
P/Q = output height/width. The GEMM view is A (weights) of shape
(M, C*R*S) times B (Toeplitz-expanded inputs) of shape (C*R*S, P*Q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution layer (optionally grouped/depthwise).

    A grouped convolution with ``groups`` splits channels into
    independent convolutions; each group is its own (smaller) GEMM, so
    ``gemm_shape`` reports the per-group shape and ``gemm_instances``
    the number of GEMMs (repeats x groups). Depthwise convolutions are
    ``groups == in_channels``.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    input_size: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    #: How many times this exact shape repeats in the network.
    repeats: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "in_channels", "out_channels", "kernel", "input_size",
            "stride", "groups", "repeats",
        ):
            if getattr(self, field_name) <= 0:
                raise WorkloadError(
                    f"{self.name}: {field_name} must be positive"
                )
        # Padding is the one field allowed to be zero, so it needs its
        # own check: a negative (or fractional) padding silently
        # shrinks the Toeplitz GEMM instead of failing.
        if isinstance(self.padding, bool) or not isinstance(
            self.padding, int
        ):
            raise WorkloadError(
                f"{self.name}: padding must be an integer, "
                f"got {self.padding!r}"
            )
        if self.padding < 0:
            raise WorkloadError(
                f"{self.name}: padding must be >= 0, got {self.padding}"
            )
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise WorkloadError(
                f"{self.name}: channels must divide evenly into "
                f"{self.groups} groups"
            )

    @property
    def output_size(self) -> int:
        size = (
            self.input_size + 2 * self.padding - self.kernel
        ) // self.stride + 1
        if size <= 0:
            raise WorkloadError(f"{self.name}: non-positive output size")
        return size

    def gemm_shape(self) -> Tuple[int, int, int]:
        """(M, K, N) of the Toeplitz-flattened GEMM (per group)."""
        m = self.out_channels // self.groups
        k = (self.in_channels // self.groups) * self.kernel * self.kernel
        n = self.output_size * self.output_size
        return m, k, n

    @property
    def gemm_instances(self) -> int:
        """GEMMs this layer contributes: repeats x groups."""
        return self.repeats * self.groups

    @property
    def weight_count(self) -> int:
        m, k, _ = self.gemm_shape()
        return m * k * self.groups

    @property
    def macs(self) -> int:
        m, k, n = self.gemm_shape()
        return m * k * n * self.groups


@dataclass(frozen=True)
class LinearLayer:
    """A fully-connected / projection layer applied to ``tokens`` rows."""

    name: str
    in_features: int
    out_features: int
    tokens: int = 1
    repeats: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "in_features", "out_features", "tokens", "repeats",
        ):
            if getattr(self, field_name) <= 0:
                raise WorkloadError(
                    f"{self.name}: {field_name} must be positive"
                )

    def gemm_shape(self) -> Tuple[int, int, int]:
        """(M, K, N): weights (out, in) times activations (in, tokens)."""
        return self.out_features, self.in_features, self.tokens

    @property
    def gemm_instances(self) -> int:
        """GEMMs this layer contributes (repeats; no grouping)."""
        return self.repeats

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    @property
    def macs(self) -> int:
        m, k, n = self.gemm_shape()
        return m * k * n


Layer = Union[ConvLayer, LinearLayer]
