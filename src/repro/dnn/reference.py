"""Reference numpy implementations used to validate the GEMM pipeline."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain reference GEMM (the ground truth for simulator checks)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise WorkloadError(
            f"incompatible matmul shapes {a.shape} x {b.shape}"
        )
    return a @ b


def conv2d_reference(
    weights: np.ndarray,
    inputs: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct convolution: weights (M, C, R, S) over inputs (C, H, W)."""
    weights = np.asarray(weights, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if weights.ndim != 4 or inputs.ndim != 3:
        raise WorkloadError("conv2d_reference expects 4-D weights, 3-D inputs")
    if weights.shape[1] != inputs.shape[0]:
        raise WorkloadError(
            f"channel mismatch: weights C={weights.shape[1]}, "
            f"inputs C={inputs.shape[0]}"
        )
    filters, _, kernel, kernel_w = weights.shape
    if kernel != kernel_w:
        raise WorkloadError("only square kernels are supported")
    if padding:
        inputs = np.pad(
            inputs, ((0, 0), (padding, padding), (padding, padding))
        )
    height = inputs.shape[1]
    out = (height - kernel) // stride + 1
    result = np.zeros((filters, out, out), dtype=float)
    for p in range(out):
        for q in range(out):
            patch = inputs[
                :, p * stride : p * stride + kernel,
                q * stride : q * stride + kernel,
            ]
            result[:, p, q] = np.tensordot(
                weights, patch, axes=([1, 2, 3], [0, 1, 2])
            )
    return result


def linear_reference(
    weights: np.ndarray, activations: np.ndarray
) -> np.ndarray:
    """Fully-connected layer: weights (out, in) x activations (in, tokens)."""
    return matmul(weights, activations)


def relu(values: np.ndarray) -> np.ndarray:
    """ReLU — the activation function that makes operand B sparse."""
    return np.maximum(values, 0.0)
