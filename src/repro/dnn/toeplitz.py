"""Toeplitz (im2col) expansion: convolution as matrix multiplication.

Paper Fig. 8(a): a convolution with weights (M, C, R, S) over inputs
(C, H, W) becomes A (M, C*R*S) x B (C*R*S, P*Q). The expansion is what
lets one GEMM engine (HighLight and all baselines) process both conv
and FC layers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def conv_output_size(
    input_size: int, kernel: int, stride: int = 1, padding: int = 0
) -> int:
    """Output spatial extent of a convolution."""
    size = (input_size + 2 * padding - kernel) // stride + 1
    if size <= 0:
        raise WorkloadError(
            f"non-positive conv output size for input {input_size}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return size


def toeplitz_expand(
    inputs: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Expand inputs (C, H, W) into the Toeplitz matrix (C*R*S, P*Q).

    Column (p*Q + q) holds the receptive field of output pixel (p, q),
    flattened in (C, R, S) order to match flattened weights.
    """
    inputs = np.asarray(inputs, dtype=float)
    if inputs.ndim != 3:
        raise WorkloadError(
            f"toeplitz_expand expects (C, H, W) inputs, got {inputs.ndim} dims"
        )
    channels, height, width = inputs.shape
    if height != width:
        raise WorkloadError("only square inputs are supported")
    if padding:
        inputs = np.pad(
            inputs, ((0, 0), (padding, padding), (padding, padding))
        )
    out = conv_output_size(height, kernel, stride, padding)
    columns = np.empty((channels * kernel * kernel, out * out), dtype=float)
    for p in range(out):
        for q in range(out):
            row_start = p * stride
            col_start = q * stride
            patch = inputs[
                :, row_start : row_start + kernel,
                col_start : col_start + kernel,
            ]
            columns[:, p * out + q] = patch.reshape(-1)
    return columns


def flatten_weights(weights: np.ndarray) -> np.ndarray:
    """Flatten conv weights (M, C, R, S) into the GEMM operand (M, C*R*S)."""
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 4:
        raise WorkloadError(
            f"expected (M, C, R, S) weights, got {weights.ndim} dims"
        )
    return weights.reshape(weights.shape[0], -1)


def fold_outputs(gemm_output: np.ndarray, out: int) -> np.ndarray:
    """Reshape GEMM output (M, P*Q) back to feature maps (M, P, Q)."""
    gemm_output = np.asarray(gemm_output)
    if gemm_output.ndim != 2 or gemm_output.shape[1] != out * out:
        raise WorkloadError(
            f"cannot fold output of shape {gemm_output.shape} to "
            f"{out}x{out} maps"
        )
    return gemm_output.reshape(gemm_output.shape[0], out, out)
