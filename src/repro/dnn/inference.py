"""Whole-network inference through the functional simulator.

Chains the full HighLight processing story over a small CNN: each conv
layer's HSS weights run through the simulated PE arrays (Toeplitz-
expanded inputs streamed via GLB + VFMU), the activation-function unit
applies ReLU, and the compression unit compresses the activations for
the next layer (the Fig. 10 path "activation function unit ->
compression unit"). Everything is checked exactly against the numpy
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dnn.reference import relu
from repro.dnn.toeplitz import (
    conv_output_size,
    flatten_weights,
    fold_outputs,
    toeplitz_expand,
)
from repro.errors import SimulationError
from repro.sim.config import SimConfig
from repro.sim.simulator import HighLightSimulator, SimStats
from repro.sparsity.hss import HSSPattern
from repro.sparsity.sparsify import sparsify


@dataclass(frozen=True)
class SimulatedConvLayer:
    """One conv layer with HSS weights, ready for simulation."""

    weights: np.ndarray  # (M, C, R, S), already HSS along (C, R, S)
    pattern: HSSPattern
    stride: int = 1
    padding: int = 0

    @property
    def kernel(self) -> int:
        return self.weights.shape[2]


@dataclass(frozen=True)
class LayerTrace:
    """Per-layer simulation record."""

    stats: SimStats
    output_shape: Tuple[int, ...]
    activation_sparsity: float


class SimulatedNetwork:
    """A stack of conv layers executed on the simulated HighLight."""

    def __init__(
        self,
        layers: Sequence[SimulatedConvLayer],
        config: Optional[SimConfig] = None,
    ) -> None:
        if not layers:
            raise SimulationError("a network needs at least one layer")
        self.layers = list(layers)
        self.config = config or SimConfig()
        self._simulator = HighLightSimulator(self.config)

    def forward(
        self, inputs: np.ndarray, compress_activations: bool = True
    ) -> Tuple[np.ndarray, List[LayerTrace]]:
        """Run inference; returns (final feature maps, per-layer traces).

        ``compress_activations`` routes each layer's (ReLU-sparse)
        activations through the compressed operand-B path.
        """
        activations = np.asarray(inputs, dtype=float)
        traces: List[LayerTrace] = []
        for index, layer in enumerate(self.layers):
            expanded = toeplitz_expand(
                activations, layer.kernel, layer.stride, layer.padding
            )
            flat_weights = flatten_weights(layer.weights)
            result, stats = self._simulator.run(
                flat_weights,
                expanded,
                layer.pattern,
                compress_b=compress_activations and index > 0,
            )
            out = conv_output_size(
                activations.shape[1], layer.kernel, layer.stride,
                layer.padding,
            )
            activations = relu(fold_outputs(result, out))
            traces.append(
                LayerTrace(
                    stats=stats,
                    output_shape=activations.shape,
                    activation_sparsity=float(
                        np.mean(activations == 0)
                    ),
                )
            )
        return activations, traces

    @staticmethod
    def reference_forward(
        layers: Sequence[SimulatedConvLayer], inputs: np.ndarray
    ) -> np.ndarray:
        """Pure-numpy reference of the same network."""
        from repro.dnn.reference import conv2d_reference

        activations = np.asarray(inputs, dtype=float)
        for layer in layers:
            activations = relu(
                conv2d_reference(
                    layer.weights, activations, layer.stride,
                    layer.padding,
                )
            )
        return activations


def random_network(
    channel_plan: Sequence[int],
    kernel: int = 2,
    input_size: int = 8,
    config: Optional[SimConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[SimulatedNetwork, np.ndarray]:
    """Build a random HSS-pruned CNN plus a matching input tensor.

    ``channel_plan`` is (in_channels, layer1_out, layer2_out, ...);
    every layer's flattened weights are sparsified to the simulator's
    supported pattern.
    """
    config = config or SimConfig()
    rng = rng or np.random.default_rng(0)
    pattern = config.example_pattern()
    layers: List[SimulatedConvLayer] = []
    for in_channels, out_channels in zip(channel_plan, channel_plan[1:]):
        dense = rng.normal(size=(out_channels, in_channels, kernel,
                                 kernel))
        flat = sparsify(flatten_weights(dense), pattern)
        layers.append(
            SimulatedConvLayer(
                weights=flat.reshape(dense.shape), pattern=pattern
            )
        )
    inputs = rng.normal(size=(channel_plan[0], input_size, input_size))
    return SimulatedNetwork(layers, config), inputs
