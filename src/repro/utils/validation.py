"""Argument-validation helpers shared by the public API surface."""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(name: str, numerator: int, denominator: int) -> None:
    """Validate a G:H style fraction: integers with 0 < G <= H."""
    if not isinstance(numerator, int) or not isinstance(denominator, int):
        raise TypeError(f"{name} must use integer G and H")
    if denominator <= 0:
        raise ValueError(f"{name}: H must be positive, got {denominator}")
    if numerator <= 0:
        raise ValueError(f"{name}: G must be positive, got {numerator}")
    if numerator > denominator:
        raise ValueError(
            f"{name}: G must not exceed H, got {numerator}:{denominator}"
        )


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}: {value!r}"
        )
