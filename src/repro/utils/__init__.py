"""Shared utilities: validation helpers, small math helpers, formatting."""

from repro.utils.mathutils import (
    ceil_div,
    geomean,
    is_power_of_two,
    prod,
    round_up_to_multiple,
)
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "ceil_div",
    "geomean",
    "is_power_of_two",
    "prod",
    "round_up_to_multiple",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_type",
]
