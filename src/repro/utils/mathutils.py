"""Small numeric helpers used across the library."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up.

    >>> ceil_div(7, 4)
    2
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def prod(values: Iterable[float]) -> float:
    """Product of an iterable (like :func:`math.prod` but float-friendly)."""
    result = 1.0
    for value in values:
        result *= value
    return result


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of positive values.

    The paper reports geomean EDP/energy/latency gains (Fig. 14); this is
    the single implementation used everywhere.
    """
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def round_up_to_multiple(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    return ceil_div(value, multiple) * multiple
