"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the finer-grained categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """An invalid sparsity specification (bad rank order, bad rule, ...)."""


class PatternError(SpecificationError):
    """An invalid G:H pattern (e.g. G > H, non-positive values)."""


class SparsificationError(ReproError):
    """A tensor could not be sparsified to the requested pattern."""


class ConformanceError(ReproError):
    """A tensor does not conform to the sparsity pattern it claims."""


class CompressionError(ReproError):
    """A tensor could not be compressed or decompressed."""


class ArchitectureError(ReproError):
    """An invalid architecture description or resource allocation."""


class ModelError(ReproError):
    """The analytical performance model was given inconsistent inputs."""


class UnsupportedWorkloadError(ModelError):
    """A design cannot process the given workload (e.g. S2TA on dense)."""


class SimulationError(ReproError):
    """The functional micro-architecture simulator hit an invalid state."""


class WorkloadError(ReproError):
    """An invalid workload description (bad shapes, bad density)."""


class PruningError(ReproError):
    """The pruning/fine-tuning pipeline was misconfigured."""


class EvaluationError(ReproError):
    """An experiment harness failure (unknown experiment, bad sweep)."""


class CacheError(ReproError):
    """A persistent-cache operation failed (e.g. merging cache
    directories whose estimator fingerprints disagree)."""


class LintError(ReproError):
    """A static-analysis run failed (duplicate rule id, a plugin
    module that does not import, a malformed baseline file)."""


class LintUsageError(LintError):
    """An invalid ``repro lint`` invocation (unknown rule id, missing
    path, plugin directory, or baseline file) — the CLI maps this to
    exit code 2, like any other argparse usage error."""


class ServeError(ReproError):
    """An invalid ``repro serve`` request or a server-side protocol
    failure. Carries the HTTP status code the service should answer
    with — client mistakes (bad JSON, unknown artifact, malformed
    sweep spec) default to 400 so the spec validators stay loud
    instead of silently coercing."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class QueueError(CacheError):
    """A job-queue operation failed (e.g. a worker attaching to a
    queue database filled for a different estimator fingerprint).
    Subclasses :class:`CacheError`: the queue lives inside the cache
    database, and callers handling cache failures should see queue
    failures too."""
