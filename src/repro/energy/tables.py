"""Technology constants for the 65 nm-class energy/area characterization.

All values are per-action energies in picojoules for 16-bit datapaths and
areas in square micrometres. The *absolute* values are representative of
published 65 nm numbers; the paper's conclusions are all relative
(normalized EDP), which these tables preserve because every design is
costed from the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyAreaTable:
    """The constants consumed by the estimation plug-ins."""

    # --- compute -----------------------------------------------------
    #: Full 16-bit multiply-accumulate.
    mac_pj: float = 2.2
    #: Gated MAC: operands held, clock/data gated (an AND-gate tax).
    gated_mac_pj: float = 0.12
    mac_area_um2: float = 1800.0

    # --- memories ----------------------------------------------------
    #: SRAM read/write per 16-bit word at the reference capacity; scales
    #: with sqrt(capacity) like bitline/wordline energy.
    sram_ref_bytes: int = 256 * 1024
    sram_read_pj: float = 22.0
    sram_write_pj: float = 25.0
    sram_area_um2_per_byte: float = 2.8
    #: Register files (small SRAM / latch arrays).
    regfile_ref_bytes: int = 2 * 1024
    regfile_read_pj: float = 1.4
    regfile_write_pj: float = 1.6
    regfile_area_um2_per_byte: float = 6.0
    #: Pipeline/operand registers.
    register_pj: float = 0.15
    register_area_um2: float = 120.0
    #: LPDDR4-class DRAM access per 16-bit word.
    dram_read_pj: float = 150.0
    dram_write_pj: float = 160.0

    # --- sparsity acceleration features -------------------------------
    #: Mux select energy per output value, per input line, per 16 bits
    #: of width (an H-to-1 mux costs ~H of these). A 4-to-1 16-bit
    #: select is ~1.5% of a MAC — the "very low" tax of Table 1.
    mux_pj_per_input_16b: float = 0.008
    mux_area_um2_per_input_bit: float = 1.8
    #: VFMU: variable-shift block read (registers + shift network).
    vfmu_block_read_pj: float = 0.6
    vfmu_shift_pj: float = 0.2
    vfmu_write_pj_per_word: float = 0.15
    vfmu_area_um2_per_byte: float = 6.0
    vfmu_control_area_um2: float = 12000.0
    #: Unstructured intersection (prefix-sum style, as in SparTen, whose
    #: prefix logic occupies 55% of PE area — hence the large constants).
    intersection_pj: float = 2.2
    intersection_area_um2: float = 1500.0
    #: Activation compression unit, per value compressed.
    compression_pj_per_value: float = 0.5
    compression_area_um2: float = 50000.0
    #: Control overhead attributed per design (sequencers, NoC, AGEN).
    control_area_um2: float = 80000.0
    control_pj_per_cycle: float = 1.0

    #: Metadata is stored/streamed as 16-bit words alongside data.
    word_bits: int = 16

    extras: Dict[str, float] = field(default_factory=dict)


def default_table() -> EnergyAreaTable:
    """The table used by all shipped experiments."""
    return EnergyAreaTable()
