"""Estimation plug-ins: map (component, action) -> pJ and component -> um^2.

Mirrors Accelergy's plug-in architecture: each plug-in declares which
component classes it can characterize; an :class:`repro.energy.Estimator`
routes queries to the first plug-in that supports the class.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Protocol

from repro.arch.components import Component, ComponentClass
from repro.energy.tables import EnergyAreaTable
from repro.errors import ArchitectureError


class EstimationPlugin(Protocol):
    """The plug-in protocol (structural typing, like Accelergy's API)."""

    def supports(self, component_class: ComponentClass) -> bool:
        """Whether this plug-in characterizes the component class."""
        ...

    def energy_pj(self, component: Component, action: str) -> float:
        """Energy of one ``action`` on one instance of ``component``."""
        ...

    def area_um2(self, component: Component) -> float:
        """Area of one instance of ``component``."""
        ...


class SramPlugin:
    """SRAM/regfile/register model: sqrt-capacity energy scaling."""

    CLASSES = (
        ComponentClass.SRAM,
        ComponentClass.REGFILE,
        ComponentClass.REGISTER,
    )

    def __init__(self, table: EnergyAreaTable) -> None:
        self._table = table

    def supports(self, component_class: ComponentClass) -> bool:
        return component_class in self.CLASSES

    def energy_pj(self, component: Component, action: str) -> float:
        table = self._table
        if component.component_class is ComponentClass.REGISTER:
            if action in ("read", "write"):
                return table.register_pj
            raise ArchitectureError(
                f"register action {action!r} not recognized"
            )
        capacity = int(component.attribute("capacity_bytes"))
        if component.component_class is ComponentClass.SRAM:
            reference, read, write = (
                table.sram_ref_bytes,
                table.sram_read_pj,
                table.sram_write_pj,
            )
            # A partitioned region (e.g. the GLB's data/metadata split,
            # Table 4) dissipates per the *physical* array it lives in.
            capacity = int(component.attribute("array_bytes", capacity))
        else:
            reference, read, write = (
                table.regfile_ref_bytes,
                table.regfile_read_pj,
                table.regfile_write_pj,
            )
        scale = math.sqrt(max(capacity, 1) / reference)
        if action == "read":
            return read * scale
        if action == "write":
            return write * scale
        raise ArchitectureError(f"memory action {action!r} not recognized")

    def area_um2(self, component: Component) -> float:
        table = self._table
        if component.component_class is ComponentClass.REGISTER:
            return table.register_area_um2
        capacity = int(component.attribute("capacity_bytes"))
        if component.component_class is ComponentClass.SRAM:
            return capacity * table.sram_area_um2_per_byte
        return capacity * table.regfile_area_um2_per_byte


class DramPlugin:
    """Vendor-data-style DRAM model: flat per-word access energy."""

    def __init__(self, table: EnergyAreaTable) -> None:
        self._table = table

    def supports(self, component_class: ComponentClass) -> bool:
        return component_class is ComponentClass.DRAM

    def energy_pj(self, component: Component, action: str) -> float:
        if action == "read":
            return self._table.dram_read_pj
        if action == "write":
            return self._table.dram_write_pj
        raise ArchitectureError(f"DRAM action {action!r} not recognized")

    def area_um2(self, component: Component) -> float:
        return 0.0  # off-chip


class LogicPlugin:
    """Synthesized-RTL-style model for MACs, muxes, VFMU, intersection,
    compression and control logic."""

    CLASSES = (
        ComponentClass.MAC,
        ComponentClass.MUX,
        ComponentClass.VFMU,
        ComponentClass.INTERSECTION,
        ComponentClass.COMPRESSION,
        ComponentClass.CONTROL,
        ComponentClass.NOC,
    )

    def __init__(self, table: EnergyAreaTable) -> None:
        self._table = table

    def supports(self, component_class: ComponentClass) -> bool:
        return component_class in self.CLASSES

    def energy_pj(self, component: Component, action: str) -> float:
        table = self._table
        cls = component.component_class
        if cls is ComponentClass.MAC:
            if action == "mac":
                return table.mac_pj
            if action == "gated_mac":
                return table.gated_mac_pj
        elif cls is ComponentClass.MUX:
            if action == "select":
                inputs = int(component.attribute("inputs"))
                width = int(component.attribute("width_bits"))
                return table.mux_pj_per_input_16b * inputs * (width / 16.0)
        elif cls is ComponentClass.VFMU:
            if action == "block_read":
                return table.vfmu_block_read_pj
            if action == "shift":
                return table.vfmu_shift_pj
            if action == "write_word":
                return table.vfmu_write_pj_per_word
        elif cls is ComponentClass.INTERSECTION:
            if action == "intersect":
                return table.intersection_pj
        elif cls is ComponentClass.COMPRESSION:
            if action == "compress_value":
                return table.compression_pj_per_value
        elif cls in (ComponentClass.CONTROL, ComponentClass.NOC):
            if action == "cycle":
                return table.control_pj_per_cycle
        raise ArchitectureError(
            f"{cls.value} action {action!r} not recognized"
        )

    def area_um2(self, component: Component) -> float:
        table = self._table
        cls = component.component_class
        if cls is ComponentClass.MAC:
            return table.mac_area_um2
        if cls is ComponentClass.MUX:
            inputs = int(component.attribute("inputs"))
            width = int(component.attribute("width_bits"))
            return table.mux_area_um2_per_input_bit * inputs * width
        if cls is ComponentClass.VFMU:
            buffer_bytes = int(component.attribute("buffer_bytes"))
            return (
                buffer_bytes * table.vfmu_area_um2_per_byte
                + table.vfmu_control_area_um2
            )
        if cls is ComponentClass.INTERSECTION:
            return table.intersection_area_um2
        if cls is ComponentClass.COMPRESSION:
            return table.compression_area_um2
        if cls in (ComponentClass.CONTROL, ComponentClass.NOC):
            return table.control_area_um2
        raise ArchitectureError(f"no area model for {cls.value}")


def default_plugins(table: EnergyAreaTable) -> List[EstimationPlugin]:
    """The shipped plug-in chain (order matters: first match wins)."""
    return [SramPlugin(table), DramPlugin(table), LogicPlugin(table)]


def iter_supported(
    plugins: Iterable[EstimationPlugin], component_class: ComponentClass
):
    """Yield plug-ins that support ``component_class``."""
    for plugin in plugins:
        if plugin.supports(component_class):
            yield plugin
