"""Accelergy-style energy/area estimation.

The paper characterizes component energy/area with synthesized 65 nm RTL,
an SRAM compiler, CACTI and vendor DRAM data, all behind Accelergy
plug-ins. We reproduce the *structure*: every component class has a
plug-in that maps (component, action) to energy in pJ and component to
area in um^2, with constants in :mod:`repro.energy.tables` chosen in
65 nm-class ranges and — critically — shared by every design so that all
cross-design comparisons are apples-to-apples.
"""

from repro.energy.tables import EnergyAreaTable, default_table
from repro.energy.plugins import (
    DramPlugin,
    EstimationPlugin,
    LogicPlugin,
    SramPlugin,
    default_plugins,
)
from repro.energy.estimator import Estimator

__all__ = [
    "EnergyAreaTable",
    "default_table",
    "EstimationPlugin",
    "LogicPlugin",
    "SramPlugin",
    "DramPlugin",
    "default_plugins",
    "Estimator",
]
