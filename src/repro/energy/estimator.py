"""The :class:`Estimator`: routes energy/area queries to plug-ins."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.arch.components import Component
from repro.arch.spec import ArchitectureSpec
from repro.energy.plugins import EstimationPlugin, default_plugins
from repro.energy.tables import EnergyAreaTable, default_table
from repro.errors import ArchitectureError


class Estimator:
    """Accelergy-like front end: per-action energy and per-component area.

    Queries are cached; all designs in an experiment should share one
    estimator so they are costed from identical technology assumptions.
    """

    def __init__(
        self,
        table: Optional[EnergyAreaTable] = None,
        plugins: Optional[Sequence[EstimationPlugin]] = None,
    ) -> None:
        self.table = table or default_table()
        self._plugins = (
            list(plugins)
            if plugins is not None
            else default_plugins(self.table)
        )
        self._energy_cache: Dict[Tuple, float] = {}
        self._area_cache: Dict[Tuple, float] = {}

    @staticmethod
    def _key(component: Component) -> Tuple:
        """Content-based cache key (never identity: ids get reused)."""
        return (
            component.name,
            component.component_class,
            component.count,
            tuple(sorted(component.attributes.items())),
        )

    def _plugin_for(self, component: Component) -> EstimationPlugin:
        for plugin in self._plugins:
            if plugin.supports(component.component_class):
                return plugin
        raise ArchitectureError(
            f"no plug-in supports component class "
            f"{component.component_class.value!r}"
        )

    def energy_pj(self, component: Component, action: str) -> float:
        """Energy of one ``action`` on one instance of ``component``."""
        key = (self._key(component), action)
        if key not in self._energy_cache:
            self._energy_cache[key] = self._plugin_for(component).energy_pj(
                component, action
            )
        return self._energy_cache[key]

    def area_um2(self, component: Component) -> float:
        """Total area of the component group (per-instance area x count)."""
        key = self._key(component)
        if key not in self._area_cache:
            per_instance = self._plugin_for(component).area_um2(component)
            self._area_cache[key] = per_instance * component.count
        return self._area_cache[key]

    def architecture_area_um2(self, arch: ArchitectureSpec) -> float:
        """Total area of all components in an architecture."""
        return sum(self.area_um2(c) for c in arch.components)
