"""The :class:`Estimator`: routes energy/area queries to plug-ins."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch.components import Component, ComponentClass
from repro.arch.spec import ArchitectureSpec
from repro.energy.plugins import EstimationPlugin, default_plugins
from repro.energy.tables import EnergyAreaTable, default_table
from repro.errors import ArchitectureError


#: The default table/plug-in stack, built once and shared by every
#: default-constructed Estimator. The table is frozen and the shipped
#: plug-ins are stateless calculators, so sharing is safe — and it
#: makes the default configuration *identity*-comparable (the cache
#: fingerprint memoizes on it).
_DEFAULT_SETUP: Optional[
    Tuple[EnergyAreaTable, Tuple[EstimationPlugin, ...]]
] = None


def _default_setup() -> Tuple[
    EnergyAreaTable, Tuple[EstimationPlugin, ...]
]:
    global _DEFAULT_SETUP
    if _DEFAULT_SETUP is None:
        table = default_table()
        _DEFAULT_SETUP = (table, tuple(default_plugins(table)))
    return _DEFAULT_SETUP


class Estimator:
    """Accelergy-like front end: per-action energy and per-component area.

    Queries are cached; all designs in an experiment should share one
    estimator so they are costed from identical technology assumptions.
    """

    def __init__(
        self,
        table: Optional[EnergyAreaTable] = None,
        plugins: Optional[Sequence[EstimationPlugin]] = None,
    ) -> None:
        if table is None and plugins is None:
            self.table, shared = _default_setup()
            self._plugins = list(shared)
        else:
            self.table = table or default_table()
            self._plugins = (
                list(plugins)
                if plugins is not None
                else default_plugins(self.table)
            )
        self._energy_cache: Dict[Tuple, float] = {}
        self._area_cache: Dict[Tuple, float] = {}
        self._plugin_cache: Dict[ComponentClass, EstimationPlugin] = {}
        # Identity-level energy memo. Building the content key (sorted
        # attribute tuples) dominates a cached energy_pj call, and the
        # hot callers query the same long-lived spec instances over and
        # over; keeping a strong reference to the component makes the
        # id() stable (ids are only reused after collection).
        self._energy_by_identity: Dict[
            Tuple[int, str], Tuple[Component, float]
        ] = {}
        # Priced event-schema vectors for the batch path, keyed by
        # architecture identity + event tuple (see energy_vector_for).
        self._vector_cache: Dict[
            Tuple[int, Tuple[Tuple[str, str], ...]],
            Tuple[ArchitectureSpec, np.ndarray],
        ] = {}

    @staticmethod
    def _key(component: Component) -> Tuple:
        """Content-based cache key (never identity: ids get reused)."""
        return (
            component.name,
            component.component_class,
            component.count,
            tuple(sorted(component.attributes.items())),
        )

    def _plugin_for(self, component: Component) -> EstimationPlugin:
        """The first plug-in supporting the component's class, resolved
        once per class (the linear scan used to run on every cache
        miss)."""
        component_class = component.component_class
        plugin = self._plugin_cache.get(component_class)
        if plugin is None:
            for candidate in self._plugins:
                if candidate.supports(component_class):
                    plugin = candidate
                    break
            else:
                raise ArchitectureError(
                    f"no plug-in supports component class "
                    f"{component_class.value!r}"
                )
            self._plugin_cache[component_class] = plugin
        return plugin

    def energy_pj(self, component: Component, action: str) -> float:
        """Energy of one ``action`` on one instance of ``component``."""
        ident = (id(component), action)
        hit = self._energy_by_identity.get(ident)
        if hit is not None and hit[0] is component:
            return hit[1]
        key = (self._key(component), action)
        if key not in self._energy_cache:
            self._energy_cache[key] = self._plugin_for(component).energy_pj(
                component, action
            )
        energy = self._energy_cache[key]
        self._energy_by_identity[ident] = (component, energy)
        return energy

    def energy_vector(
        self,
        components_actions: Sequence[Tuple[Component, str]],
    ) -> np.ndarray:
        """Per-pair action energies as one float64 vector.

        The bulk query of the batched pricing layer: one call resolves
        every (component, action) of an activity matrix, and each
        energy is the exact value :meth:`energy_pj` returns (same
        cache), so batch pricing cannot drift from scalar pricing.
        """
        return np.array(
            [
                self.energy_pj(component, action)
                for component, action in components_actions
            ],
            dtype=np.float64,
        )

    def energy_vector_for(
        self,
        arch: ArchitectureSpec,
        events: Tuple[Tuple[str, str], ...],
    ) -> np.ndarray:
        """The priced vector of an architecture's (component name,
        action) event schema, memoized by arch identity + event tuple.

        A design's batch evaluations emit the same few event schemas
        over and over (one per metadata/compression variant), so the
        component lookups and per-event pricing calls collapse to one
        dict hit per batch. Values come from the same ``energy_pj``
        cache as the scalar path, so batch pricing cannot drift from
        scalar pricing; the memo pins the arch so its id stays valid,
        and the vector is marked read-only because it is shared.
        """
        key = (id(arch), events)
        hit = self._vector_cache.get(key)
        if hit is not None and hit[0] is arch:
            return hit[1]
        vector = self.energy_vector(
            [
                (arch.component(component), action)
                for component, action in events
            ]
        )
        vector.setflags(write=False)
        self._vector_cache[key] = (arch, vector)
        return vector

    def area_um2(self, component: Component) -> float:
        """Total area of the component group (per-instance area x count)."""
        key = self._key(component)
        if key not in self._area_cache:
            per_instance = self._plugin_for(component).area_um2(component)
            self._area_cache[key] = per_instance * component.count
        return self._area_cache[key]

    def architecture_area_um2(self, arch: ArchitectureSpec) -> float:
        """Total area of all components in an architecture."""
        return sum(self.area_um2(c) for c in arch.components)
