"""JSON-friendly serialization of the library's core objects.

Experiment configurations and results need to round-trip through plain
dicts (for JSON files, sweep manifests, result archives). Covered
objects: :class:`GH`/:class:`HSSPattern`, :class:`SparsitySpec`,
:class:`OperandSparsity`/:class:`MatmulWorkload`, and
:class:`Metrics`. Every ``*_to_dict`` output round-trips through the
matching ``*_from_dict``; the dict formats are stable and versioned.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import SpecificationError
from repro.model.metrics import Metrics
from repro.model.workload import (
    MatmulWorkload,
    OperandSparsity,
    Structure,
)
from repro.sparsity.hss import HSSPattern
from repro.sparsity.pattern import GH
from repro.sparsity.spec import SparsitySpec, parse_spec

FORMAT_VERSION = 1


def _tagged(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"kind": kind, "version": FORMAT_VERSION, **payload}


def _expect(data: Dict[str, Any], kind: str) -> None:
    if not isinstance(data, dict) or data.get("kind") != kind:
        raise SpecificationError(
            f"expected a serialized {kind!r}, got {data!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise SpecificationError(
            f"unsupported {kind} format version {data.get('version')!r}"
        )


# --- patterns ----------------------------------------------------------


def pattern_to_dict(pattern: HSSPattern) -> Dict[str, Any]:
    """Serialize an HSS pattern (ranks lowest first)."""
    return _tagged(
        "hss_pattern",
        {"ranks": [[rank.g, rank.h] for rank in pattern.ranks]},
    )


def pattern_from_dict(data: Dict[str, Any]) -> HSSPattern:
    _expect(data, "hss_pattern")
    return HSSPattern(tuple(GH(g, h) for g, h in data["ranks"]))


# --- specs -------------------------------------------------------------


def spec_to_dict(spec: SparsitySpec) -> Dict[str, Any]:
    """Serialize a spec via its canonical string form."""
    return _tagged("sparsity_spec", {"spec": str(spec)})


def spec_from_dict(data: Dict[str, Any]) -> SparsitySpec:
    _expect(data, "sparsity_spec")
    return parse_spec(data["spec"])


# --- workloads -----------------------------------------------------------


def operand_to_dict(operand: OperandSparsity) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "density": operand.density,
        "structure": operand.structure.value,
    }
    if operand.pattern is not None:
        payload["pattern"] = pattern_to_dict(operand.pattern)
    return _tagged("operand", payload)


def operand_from_dict(data: Dict[str, Any]) -> OperandSparsity:
    _expect(data, "operand")
    pattern = (
        pattern_from_dict(data["pattern"]) if "pattern" in data else None
    )
    return OperandSparsity(
        density=float(data["density"]),
        structure=Structure(data["structure"]),
        pattern=pattern,
    )


def workload_to_dict(workload: MatmulWorkload) -> Dict[str, Any]:
    return _tagged(
        "matmul_workload",
        {
            "m": workload.m,
            "k": workload.k,
            "n": workload.n,
            "a": operand_to_dict(workload.a),
            "b": operand_to_dict(workload.b),
            "name": workload.name,
        },
    )


def workload_from_dict(data: Dict[str, Any]) -> MatmulWorkload:
    _expect(data, "matmul_workload")
    return MatmulWorkload(
        m=int(data["m"]),
        k=int(data["k"]),
        n=int(data["n"]),
        a=operand_from_dict(data["a"]),
        b=operand_from_dict(data["b"]),
        name=data.get("name", ""),
    )


# --- metrics ---------------------------------------------------------------


def metrics_to_dict(metrics: Metrics) -> Dict[str, Any]:
    """Serialize a result (includes derived EDP for convenience)."""
    return _tagged(
        "metrics",
        {
            "design": metrics.design,
            "workload": metrics.workload,
            "cycles": metrics.cycles,
            "energy_breakdown_pj": dict(metrics.energy_breakdown_pj),
            "utilization": metrics.utilization,
            "supported": metrics.supported,
            "swapped": metrics.swapped,
            "edp": metrics.edp,
        },
    )


def metrics_from_dict(data: Dict[str, Any]) -> Metrics:
    _expect(data, "metrics")
    return Metrics(
        design=data["design"],
        workload=data["workload"],
        cycles=float(data["cycles"]),
        energy_breakdown_pj={
            key: float(value)
            for key, value in data["energy_breakdown_pj"].items()
        },
        utilization=float(data["utilization"]),
        supported=bool(data["supported"]),
        swapped=bool(data["swapped"]),
    )
