"""Gradual HSS pruning schedules (paper Sec. 4.2's "sparsified at once
or gradually over the process").

The sparsity pattern is orthogonal to the pruning *schedule*: instead
of masking straight to the final HSS pattern, a gradual schedule walks
through intermediate degrees — e.g. dense -> C0(2:4) ->
C1(3:4)->C0(2:4) -> C1(2:4)->C0(2:4) — fine-tuning between steps. Each
intermediate pattern must be a *refinement* of the previous one (its
kept set shrinks monotonically) so earlier fine-tuning is never undone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import PruningError
from repro.pruning.finetune import MaskedMLP, TrainConfig
from repro.pruning.schemes import HSSScheme
from repro.sparsity.hss import HSSPattern


def is_refinement(coarser: HSSPattern, finer: HSSPattern) -> bool:
    """Whether ``finer`` keeps a subset of what ``coarser`` keeps.

    Sufficient conditions rank-by-rank: same H with G no larger, for
    every rank of the coarser pattern (extra ranks in ``finer`` only
    remove more).
    """
    if finer.num_ranks < coarser.num_ranks:
        return False
    for level in range(coarser.num_ranks):
        coarse_rule = coarser.rank(level)
        fine_rule = finer.rank(level)
        if fine_rule.h != coarse_rule.h:
            return False
        if fine_rule.g > coarse_rule.g:
            return False
    return True


def validate_schedule(patterns: Sequence[HSSPattern]) -> None:
    """Raise unless each pattern refines its predecessor."""
    if not patterns:
        raise PruningError("empty pruning schedule")
    for earlier, later in zip(patterns, patterns[1:]):
        if not is_refinement(earlier, later):
            raise PruningError(
                f"{later.succinct()} does not refine "
                f"{earlier.succinct()}"
            )


@dataclass(frozen=True)
class GradualStepResult:
    """Accuracy record of one schedule step."""

    pattern: HSSPattern
    sparsity: float
    accuracy_after_mask: float
    accuracy_after_finetune: float


def gradual_prune(
    model: MaskedMLP,
    schedule: Sequence[HSSPattern],
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[TrainConfig] = None,
    epochs_per_step: int = 5,
) -> List[GradualStepResult]:
    """Walk ``model`` through the schedule with fine-tuning between
    steps; returns the per-step accuracy trajectory."""
    validate_schedule(schedule)
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed + 7)
    results: List[GradualStepResult] = []
    for pattern in schedule:
        model.install_masks(HSSScheme(pattern))
        after_mask = model.accuracy(x, y)
        for _ in range(epochs_per_step):
            model.train_epoch(
                x, y, config.learning_rate, config.batch_size, rng
            )
        results.append(
            GradualStepResult(
                pattern=pattern,
                sparsity=model.weight_sparsity,
                accuracy_after_mask=after_mask,
                accuracy_after_finetune=model.accuracy(x, y),
            )
        )
    return results


def default_schedule() -> List[HSSPattern]:
    """A canonical dense-to-75% refinement ladder."""
    return [
        HSSPattern.from_ratios((2, 4), (4, 4)),  # 50%
        HSSPattern.from_ratios((2, 4), (3, 4)),  # 62.5%
        HSSPattern.from_ratios((2, 4), (2, 4)),  # 75%
    ]
