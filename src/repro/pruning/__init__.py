"""Pruning pipeline: schemes, masked fine-tuning, accuracy modeling.

The paper (Sec. 7.1.3) uses Condensa [24] with the sparse-tensor-core
pruning algorithm [32]: statically mask a pre-trained dense model to
the target sparsity pattern, then fine-tune with gradients masked.

This package provides:

* :mod:`repro.pruning.schemes` — composable pruning schemes
  (unstructured, G:H, HSS, channel), Condensa-style;
* :mod:`repro.pruning.masks` — mask construction for each scheme;
* :mod:`repro.pruning.finetune` — a real (numpy, manual-backprop) MLP
  with masked-gradient fine-tuning, demonstrating accuracy recovery
  end-to-end on synthetic data;
* :mod:`repro.pruning.accuracy` — the calibrated accuracy-loss model
  used for the paper-scale networks (see DESIGN.md substitutions).
"""

from repro.pruning.schemes import (
    ChannelScheme,
    HSSScheme,
    PruningScheme,
    StructuredGHScheme,
    UnstructuredScheme,
)
from repro.pruning.masks import mask_for, apply_mask
from repro.pruning.finetune import (
    MaskedMLP,
    TrainConfig,
    make_blobs,
    prune_and_finetune,
    train_dense,
)
from repro.pruning.accuracy import AccuracyModel, accuracy_loss_pct

__all__ = [
    "PruningScheme",
    "UnstructuredScheme",
    "StructuredGHScheme",
    "HSSScheme",
    "ChannelScheme",
    "mask_for",
    "apply_mask",
    "MaskedMLP",
    "TrainConfig",
    "make_blobs",
    "train_dense",
    "prune_and_finetune",
    "AccuracyModel",
    "accuracy_loss_pct",
]
