"""Mask construction: the static-masking step of the STC algorithm [32].

The pruning algorithm first masks weights (and their gradients) to zero
based on the scheme's sparsification rule, then fine-tunes. The mask is
the set of kept positions; it stays fixed during fine-tuning.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PruningError
from repro.pruning.schemes import PruningScheme


def mask_for(weights: np.ndarray, scheme: PruningScheme) -> np.ndarray:
    """Boolean keep-mask for ``weights`` under ``scheme``."""
    pruned = scheme.prune(np.asarray(weights, dtype=float))
    return pruned != 0


def apply_mask(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero out the masked-away entries of ``values``."""
    values = np.asarray(values, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    if values.shape != mask.shape:
        raise PruningError(
            f"mask shape {mask.shape} != values shape {values.shape}"
        )
    return values * mask
