"""Composable pruning schemes (Condensa-style).

A scheme decides *which* weights to zero for a given target pattern;
the masking/fine-tuning machinery is shared. Each scheme exposes the
pattern-granularity factor consumed by the calibrated accuracy model:
coarser constraints recover less accuracy at the same sparsity degree.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import PruningError
from repro.sparsity.hss import HSSPattern
from repro.sparsity.sparsify import (
    scaled_l2_norm,
    sparsify,
    sparsify_unstructured,
)


class PruningScheme(abc.ABC):
    """One way of introducing zeros into a weight matrix."""

    @property
    @abc.abstractmethod
    def sparsity(self) -> float:
        """Target sparsity degree in [0, 1)."""

    @property
    @abc.abstractmethod
    def granularity_factor(self) -> float:
        """Accuracy-degradation factor of the pattern's rigidity.

        1.0 for unconstrained (unstructured) pruning; larger for more
        constrained patterns (they must sometimes keep less-important
        weights to satisfy the structure).
        """

    @abc.abstractmethod
    def prune(self, weights: np.ndarray) -> np.ndarray:
        """Return a pruned copy of ``weights``."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.sparsity:.1%})"


@dataclass(frozen=True)
class UnstructuredScheme(PruningScheme):
    """Global magnitude pruning with no location constraints."""

    target_sparsity: float

    @property
    def sparsity(self) -> float:
        return self.target_sparsity

    @property
    def granularity_factor(self) -> float:
        return 1.0

    def prune(self, weights: np.ndarray) -> np.ndarray:
        return sparsify_unstructured(weights, self.target_sparsity)


@dataclass(frozen=True)
class StructuredGHScheme(PruningScheme):
    """One-rank G:H pruning along the last axis (e.g. 2:4, 4:16)."""

    g: int
    h: int

    @property
    def pattern(self) -> HSSPattern:
        return HSSPattern.from_ratios((self.g, self.h))

    @property
    def sparsity(self) -> float:
        return self.pattern.sparsity

    @property
    def granularity_factor(self) -> float:
        # A single fine-grained rank constrains choice within every
        # block of H; the cost grows mildly as H shrinks relative to G.
        return 1.06

    def prune(self, weights: np.ndarray) -> np.ndarray:
        return sparsify(weights, self.pattern, axis=-1)


@dataclass(frozen=True)
class HSSScheme(PruningScheme):
    """Hierarchical structured sparsity (the paper's Sec. 4.2 scheme)."""

    hss: HSSPattern

    @property
    def sparsity(self) -> float:
        return self.hss.sparsity

    @property
    def granularity_factor(self) -> float:
        # Two simple ranks constrain slightly less than one rank at the
        # same overall degree (larger effective freedom per block),
        # but slightly more than unstructured.
        return 1.04

    def prune(self, weights: np.ndarray) -> np.ndarray:
        return sparsify(weights, self.hss, axis=-1)

    def describe(self) -> str:
        return f"HSSScheme({self.hss.succinct()})"


@dataclass(frozen=True)
class ChannelScheme(PruningScheme):
    """Remove whole input channels (rows/column groups) by scaled L2
    norm — the coarsest structure (Fig. 4(a))."""

    target_sparsity: float

    @property
    def sparsity(self) -> float:
        return self.target_sparsity

    @property
    def granularity_factor(self) -> float:
        return 1.5

    def prune(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise PruningError("ChannelScheme expects a 2-D weight matrix")
        # Score each input channel (column) by its scaled L2 norm.
        scores = scaled_l2_norm(weights.T)
        num_prune = int(round(self.target_sparsity * weights.shape[1]))
        if num_prune == 0:
            return weights.copy()
        drop = np.argsort(scores, kind="stable")[:num_prune]
        out = weights.copy()
        out[:, drop] = 0.0
        return out
