"""Empirical calibration of the accuracy-model assumptions.

The Fig. 15 accuracy axis uses a calibrated parametric model (see
DESIGN.md substitutions). Its two load-bearing assumptions are that
post-fine-tuning accuracy loss is (a) monotone in sparsity and (b)
monotone in pattern rigidity at a fixed degree. This module *measures*
both on the real (numpy) prune + masked-fine-tune pipeline over
synthetic data, so the substitution is backed by an experiment the
repository actually runs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pruning.finetune import (
    MaskedMLP,
    TrainConfig,
    make_blobs,
    prune_and_finetune,
    train_dense,
)
from repro.pruning.schemes import (
    ChannelScheme,
    HSSScheme,
    PruningScheme,
    UnstructuredScheme,
)
from repro.sparsity.hss import HSSPattern


@dataclass(frozen=True)
class CalibrationPoint:
    """One (scheme, degree) measurement."""

    scheme: str
    granularity: float
    target_sparsity: float
    measured_sparsity: float
    loss_pct: float  # accuracy loss vs dense, percentage points


def scheme_ladders() -> Dict[str, List[PruningScheme]]:
    """Comparable degree ladders per scheme family."""
    return {
        "unstructured": [
            UnstructuredScheme(s) for s in (0.5, 0.625, 0.75, 0.875)
        ],
        "hss": [
            HSSScheme(HSSPattern.from_ratios((2, 4), (4, 4))),
            HSSScheme(HSSPattern.from_ratios((2, 4), (3, 4))),
            HSSScheme(HSSPattern.from_ratios((2, 4), (2, 4))),
            HSSScheme(HSSPattern.from_ratios((2, 4), (1, 4))),
        ],
        "channel": [
            ChannelScheme(s) for s in (0.5, 0.625, 0.75, 0.875)
        ],
    }


def run_calibration(
    config: Optional[TrainConfig] = None,
    num_samples: int = 1500,
    num_features: int = 48,
    num_classes: int = 6,
) -> List[CalibrationPoint]:
    """Measure loss-vs-degree for every scheme ladder."""
    config = config or TrainConfig(hidden=64, epochs=12)
    x, y = make_blobs(num_samples, num_features, num_classes)
    dense = train_dense(x, y, config)
    points: List[CalibrationPoint] = []
    for family, ladder in scheme_ladders().items():
        for scheme in ladder:
            model = copy.deepcopy(dense)
            result = prune_and_finetune(model, scheme, x, y, config)
            points.append(
                CalibrationPoint(
                    scheme=family,
                    granularity=scheme.granularity_factor,
                    target_sparsity=scheme.sparsity,
                    measured_sparsity=result.weight_sparsity,
                    loss_pct=100.0 * result.final_loss,
                )
            )
    return points


def check_monotone_in_sparsity(
    points: Sequence[CalibrationPoint], slack_pct: float = 1.0
) -> bool:
    """Within each family, loss never *drops* by more than the slack
    as sparsity grows (SGD noise allows small inversions)."""
    by_family: Dict[str, List[CalibrationPoint]] = {}
    for point in points:
        by_family.setdefault(point.scheme, []).append(point)
    for family_points in by_family.values():
        ordered = sorted(family_points, key=lambda p: p.target_sparsity)
        running_max = float("-inf")
        for point in ordered:
            if point.loss_pct < running_max - slack_pct:
                return False
            running_max = max(running_max, point.loss_pct)
    return True


def check_granularity_ordering(
    points: Sequence[CalibrationPoint], slack_pct: float = 1.0
) -> bool:
    """At matching degrees, the rigid channel scheme never beats the
    flexible schemes by more than the slack."""
    by_degree: Dict[float, Dict[str, float]] = {}
    for point in points:
        by_degree.setdefault(
            round(point.target_sparsity, 3), {}
        )[point.scheme] = point.loss_pct
    for losses in by_degree.values():
        if "channel" in losses and "unstructured" in losses:
            if losses["channel"] < losses["unstructured"] - slack_pct:
                return False
        if "channel" in losses and "hss" in losses:
            if losses["channel"] < losses["hss"] - slack_pct:
                return False
    return True


def summarize_calibration(
    points: Sequence[CalibrationPoint],
) -> str:
    lines = [
        f"{'scheme':14s} {'target':>7s} {'measured':>9s} {'loss (pct)':>11s}"
    ]
    for point in sorted(
        points, key=lambda p: (p.scheme, p.target_sparsity)
    ):
        lines.append(
            f"{point.scheme:14s} {point.target_sparsity:7.1%} "
            f"{point.measured_sparsity:9.1%} {point.loss_pct:11.2f}"
        )
    return "\n".join(lines)


def mean_loss_by_family(
    points: Sequence[CalibrationPoint],
) -> Dict[str, float]:
    """Average loss per scheme family (rigidity summary)."""
    sums: Dict[str, Tuple[float, int]] = {}
    for point in points:
        total, count = sums.get(point.scheme, (0.0, 0))
        sums[point.scheme] = (total + point.loss_pct, count + 1)
    return {
        family: total / count for family, (total, count) in sums.items()
    }
