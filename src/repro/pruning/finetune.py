"""Masked fine-tuning on a real (numpy) MLP.

This is a faithful, runnable miniature of the paper's pruning pipeline
(Sec. 7.1.3): train a dense model, statically mask weights *and their
gradients* to the target pattern, fine-tune, and measure how much
accuracy the fine-tuning recovers. It runs on synthetic Gaussian-blob
classification so the whole loop is a few seconds on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PruningError
from repro.pruning.masks import apply_mask, mask_for
from repro.pruning.schemes import PruningScheme


def make_blobs(
    num_samples: int = 2000,
    num_features: int = 64,
    num_classes: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic classification data: Gaussian blobs with one center
    per class."""
    rng = rng or np.random.default_rng(0)
    centers = rng.normal(scale=2.0, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    samples = centers[labels] + rng.normal(size=(num_samples, num_features))
    return samples, labels


@dataclass
class TrainConfig:
    """Hyper-parameters shared by dense training and fine-tuning.

    The paper stresses that *the same* algorithm and hyper-parameters
    are used for every sparsity pattern — keep it that way in
    experiments for fair comparisons.
    """

    hidden: int = 128
    learning_rate: float = 0.05
    epochs: int = 30
    batch_size: int = 128
    seed: int = 0


class MaskedMLP:
    """A two-layer MLP with optional per-layer weight masks.

    Forward: ``softmax(relu(X W1) W2)``; manual backprop; SGD. When a
    mask is installed the weights are projected onto the mask after
    every update (equivalently: gradients are masked), implementing the
    STC pruning algorithm's static masking.
    """

    def __init__(
        self, num_features: int, hidden: int, num_classes: int, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / num_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.w1 = rng.normal(scale=scale1, size=(num_features, hidden))
        self.w2 = rng.normal(scale=scale2, size=(hidden, num_classes))
        self.masks: Dict[str, np.ndarray] = {}

    # -- masking -------------------------------------------------------
    def install_masks(self, scheme: PruningScheme) -> None:
        """Statically mask both layers to the scheme's pattern."""
        self.masks = {
            "w1": mask_for(self.w1, scheme),
            "w2": mask_for(self.w2, scheme),
        }
        self._project()

    def _project(self) -> None:
        if "w1" in self.masks:
            self.w1 = apply_mask(self.w1, self.masks["w1"])
        if "w2" in self.masks:
            self.w2 = apply_mask(self.w2, self.masks["w2"])

    @property
    def weight_sparsity(self) -> float:
        total = self.w1.size + self.w2.size
        zeros = np.count_nonzero(self.w1 == 0) + np.count_nonzero(
            self.w2 == 0
        )
        return zeros / total

    # -- forward/backward ------------------------------------------------
    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(x @ self.w1, 0.0)
        logits = hidden @ self.w2
        return hidden, logits

    def predict(self, x: np.ndarray) -> np.ndarray:
        _, logits = self.forward(x)
        return np.argmax(logits, axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == y))

    def train_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        learning_rate: float,
        batch_size: int,
        rng: np.random.Generator,
    ) -> float:
        """One SGD epoch; returns mean cross-entropy loss."""
        order = rng.permutation(len(x))
        losses: List[float] = []
        for start in range(0, len(x), batch_size):
            batch = order[start : start + batch_size]
            losses.append(self._step(x[batch], y[batch], learning_rate))
        return float(np.mean(losses))

    def _step(
        self, x: np.ndarray, y: np.ndarray, learning_rate: float
    ) -> float:
        hidden, logits = self.forward(x)
        # Softmax cross-entropy.
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        batch = len(x)
        loss = float(
            -np.mean(np.log(probs[np.arange(batch), y] + 1e-12))
        )
        grad_logits = probs.copy()
        grad_logits[np.arange(batch), y] -= 1.0
        grad_logits /= batch
        grad_w2 = hidden.T @ grad_logits
        grad_hidden = (grad_logits @ self.w2.T) * (hidden > 0)
        grad_w1 = x.T @ grad_hidden
        # Masked gradients: pruned weights never revive.
        if "w1" in self.masks:
            grad_w1 = apply_mask(grad_w1, self.masks["w1"])
        if "w2" in self.masks:
            grad_w2 = apply_mask(grad_w2, self.masks["w2"])
        self.w1 -= learning_rate * grad_w1
        self.w2 -= learning_rate * grad_w2
        self._project()
        return loss


def train_dense(
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[TrainConfig] = None,
) -> MaskedMLP:
    """Train the dense reference model."""
    config = config or TrainConfig()
    num_classes = int(y.max()) + 1
    model = MaskedMLP(x.shape[1], config.hidden, num_classes, config.seed)
    rng = np.random.default_rng(config.seed + 1)
    for _ in range(config.epochs):
        model.train_epoch(x, y, config.learning_rate, config.batch_size, rng)
    return model


@dataclass(frozen=True)
class PruneFinetuneResult:
    """Accuracies along the prune-then-fine-tune pipeline."""

    dense_accuracy: float
    pruned_accuracy: float
    finetuned_accuracy: float
    weight_sparsity: float

    @property
    def recovered(self) -> float:
        """Accuracy recovered by fine-tuning (percentage points)."""
        return self.finetuned_accuracy - self.pruned_accuracy

    @property
    def final_loss(self) -> float:
        """Accuracy loss vs dense after fine-tuning (can be negative)."""
        return self.dense_accuracy - self.finetuned_accuracy


def prune_and_finetune(
    model: MaskedMLP,
    scheme: PruningScheme,
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[TrainConfig] = None,
    finetune_epochs: Optional[int] = None,
) -> PruneFinetuneResult:
    """The full STC-style pipeline on an already-trained model.

    The model is modified in place (mask installed, weights fine-tuned).
    """
    config = config or TrainConfig()
    if finetune_epochs is None:
        finetune_epochs = max(1, config.epochs // 2)
    dense_accuracy = model.accuracy(x, y)
    model.install_masks(scheme)
    pruned_accuracy = model.accuracy(x, y)
    rng = np.random.default_rng(config.seed + 2)
    for _ in range(finetune_epochs):
        model.train_epoch(x, y, config.learning_rate, config.batch_size, rng)
    finetuned_accuracy = model.accuracy(x, y)
    if model.weight_sparsity == 0 and scheme.sparsity > 0:
        raise PruningError(
            f"{scheme.describe()} produced no zeros; check the scheme"
        )
    return PruneFinetuneResult(
        dense_accuracy=dense_accuracy,
        pruned_accuracy=pruned_accuracy,
        finetuned_accuracy=finetuned_accuracy,
        weight_sparsity=model.weight_sparsity,
    )
