"""Calibrated accuracy-loss model for the paper-scale DNNs.

We cannot fine-tune ResNet50/DeiT/Transformer-Big on ImageNet/WMT16 in
this environment (see DESIGN.md substitutions), so Fig. 15's accuracy
axis comes from a parametric model calibrated to the qualitative anchor
points the paper (and its cited pruning literature) reports:

* accuracy loss is ~0 below a network-specific "free" sparsity and
  grows super-linearly beyond it;
* large over-parameterized models (ResNet50) can reach ~80% sparsity
  within ~0.5% loss; compact models (DeiT-small) cannot be pruned as
  aggressively (Sec. 1);
* more rigid patterns lose more accuracy at the same degree
  (unstructured < HSS < one-rank G:H < channel), which is what each
  scheme's ``granularity_factor`` encodes.

The model is monotone in sparsity and in granularity — the properties
Fig. 15's Pareto-frontier conclusions actually rest on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dnn.models import DnnModel
from repro.errors import PruningError


@dataclass(frozen=True)
class AccuracyModel:
    """Parametric accuracy-loss curve for one network.

    ``loss_pct(s, granularity)`` returns the top-1 accuracy loss in
    percentage points after prune + fine-tune at overall weight
    sparsity ``s`` with a scheme of the given granularity factor.
    """

    #: Sparsity below which fine-tuning fully recovers accuracy.
    free_sparsity: float
    #: Curve steepness beyond the free region.
    steepness: float
    #: Scale (pct points) of the loss at (free + 1/steepness).
    scale: float

    def loss_pct(self, sparsity: float, granularity: float = 1.0) -> float:
        """Accuracy loss (percentage points) at a sparsity degree."""
        if not 0.0 <= sparsity < 1.0:
            raise PruningError(f"sparsity must be in [0, 1), got {sparsity}")
        if granularity < 1.0:
            raise PruningError(
                f"granularity factor must be >= 1, got {granularity}"
            )
        effective = sparsity * granularity
        overshoot = max(0.0, effective - self.free_sparsity)
        if overshoot == 0.0:
            return 0.0
        return self.scale * (math.exp(self.steepness * overshoot) - 1.0)

    @classmethod
    def for_model(cls, model: DnnModel) -> "AccuracyModel":
        """Calibrate from the network's prunability.

        Anchors: at sparsity == prunability with unstructured pruning
        the loss is ~0.4 pct points (the "still maintains accuracy"
        operating point); the free region covers roughly the first
        60% of the prunable range.
        """
        free = 0.6 * model.prunability
        steepness = 6.0
        overshoot_at_limit = model.prunability - free
        target_loss_at_limit = 0.4
        scale = target_loss_at_limit / (
            math.exp(steepness * overshoot_at_limit) - 1.0
        )
        return cls(
            free_sparsity=free, steepness=steepness, scale=scale
        )


def accuracy_loss_pct(
    model: DnnModel, sparsity: float, granularity: float = 1.0
) -> float:
    """Convenience wrapper: loss for ``model`` at ``sparsity``."""
    return AccuracyModel.for_model(model).loss_pct(sparsity, granularity)
