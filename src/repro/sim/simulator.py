"""The HighLight functional simulator: hierarchical skipping end-to-end.

``simulate_matmul`` runs ``Z = A @ B`` through the down-sized HighLight
of Sec. 6: A in hierarchical CP form held stationary in PEs (Rank1 SAF
dispatches only non-empty blocks), B streamed from the GLB through the
VFMU (dense: fixed shifts, Fig. 11; compressed: metadata-driven shifts,
Fig. 12), Rank0 muxing inside each PE, gating on zero B operands, and
spatial partial-sum accumulation across PEs.

The result is exact, and the step counts validate the analytical model:
with a supported pattern the step count equals
``M x N x ceil(K / (H0 x H1))`` — the theoretical structured speedup
with perfect workload balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.hierarchical import encode_hierarchical_cp
from repro.compression.operand_b import CompressedOperandB, encode_operand_b
from repro.errors import SimulationError
from repro.sim.config import SimConfig
from repro.sim.glb import GlobalBuffer
from repro.sim.pe import ProcessingElement
from repro.sim.vfmu import VariableFetchManagementUnit
from repro.sparsity.hss import HSSPattern
from repro.utils import ceil_div


@dataclass(frozen=True)
class SimStats:
    """Aggregate activity of one simulated matmul."""

    steps: int
    scheduled_products: int
    full_macs: int
    gated_macs: int
    glb_reads: int
    vfmu_refills: int
    vfmu_shifts: int
    vfmu_block_reads: int
    vfmu_skipped_fetches: int
    mux_selects: int
    pe_loads: int

    @property
    def mac_slots(self) -> int:
        """MAC issue slots = steps x PEs x MACs (upper bound on work)."""
        return self.scheduled_products


# One non-empty Rank0 block of an A row: (group, position-in-group,
# values, offsets).
_Block = Tuple[int, int, Tuple[float, ...], Tuple[int, ...]]


class HighLightSimulator:
    """Drives the down-sized HighLight through a full matmul."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config or SimConfig()

    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        pattern: HSSPattern,
        compress_b: bool = False,
    ) -> Tuple[np.ndarray, SimStats]:
        """Simulate ``Z = A @ B``; returns (Z, stats).

        ``a`` must conform to ``pattern`` (a supported two-rank HSS
        pattern); ``b`` may be dense or unstructured sparse. With
        ``compress_b`` the operand-B stream is stored compressed with
        three-level metadata and the VFMU shifts by encoded counts.
        """
        config = self.config
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise SimulationError(
                f"incompatible shapes {a.shape} x {b.shape}"
            )
        if not config.supports(pattern):
            raise SimulationError(
                f"pattern {pattern} unsupported by this configuration"
            )
        h0 = pattern.rank(0).h
        h1 = pattern.rank(1).h
        rows, k = a.shape
        columns = b.shape[1]
        num_groups = ceil_div(k, h0 * h1)

        encoded_rows = [
            encode_hierarchical_cp(a[row], pattern) for row in range(rows)
        ]
        row_blocks = [self._collect_blocks(enc, h1) for enc in encoded_rows]

        pes = [
            ProcessingElement(config.macs_per_pe, h0)
            for _ in range(config.num_pes)
        ]
        output = np.zeros((rows, columns), dtype=float)
        steps = 0
        glb_reads = 0
        vfmu_totals = dict.fromkeys(
            ("refills", "shifts", "block_reads", "skipped_fetches"), 0
        )

        for column in range(columns):
            stream, compressed = self._column_stream(
                b[:, column], h0, h1, num_groups, compress_b
            )
            glb = GlobalBuffer(stream, config.glb_row_values)
            vfmu = VariableFetchManagementUnit(
                glb, capacity_values=max(
                    2 * config.h1_max * h0, 2 * config.glb_row_values
                )
            )
            # Candidate B blocks per group, reconstructed through the
            # VFMU exactly as the hardware would see them.
            group_blocks = self._drain_groups(
                vfmu, compressed, h0, h1, num_groups
            )
            glb_reads += glb.reads
            for key in vfmu_totals:
                vfmu_totals[key] += getattr(vfmu, key)
            for row in range(rows):
                for group in range(num_groups):
                    blocks = row_blocks[row].get(group, [])
                    if not blocks:
                        # Rank1 SAF: a fully empty group is skipped.
                        continue
                    steps += 1
                    partial = 0.0
                    for pe_index, pe in enumerate(pes):
                        if pe_index < len(blocks):
                            _, position, values, offsets = blocks[pe_index]
                            pe.load_block(values, offsets)
                            candidate = group_blocks[group][position]
                            partial += pe.step(candidate)
                        else:
                            pe.clear()
                    # Spatial accumulation across PEs into the RF.
                    output[row, column] += partial
        stats = SimStats(
            steps=steps,
            scheduled_products=steps * config.num_pes * config.macs_per_pe,
            full_macs=sum(pe.full_macs for pe in pes),
            gated_macs=sum(pe.gated_macs for pe in pes),
            glb_reads=glb_reads,
            vfmu_refills=vfmu_totals["refills"],
            vfmu_shifts=vfmu_totals["shifts"],
            vfmu_block_reads=vfmu_totals["block_reads"],
            vfmu_skipped_fetches=vfmu_totals["skipped_fetches"],
            mux_selects=sum(pe.mux_selects for pe in pes),
            pe_loads=sum(pe.loads for pe in pes),
        )
        return output, stats

    @staticmethod
    def _collect_blocks(encoded, h1: int) -> Dict[int, List[_Block]]:
        """Group an encoded A row's non-empty blocks by Rank1 group."""
        groups: Dict[int, List[_Block]] = {}
        cursor = 0
        for (group, position), occupancy in zip(
            encoded.rank1_offsets, encoded.block_occupancies
        ):
            values = tuple(
                float(v)
                for v in encoded.values[cursor : cursor + occupancy]
            )
            offsets = tuple(
                encoded.rank0_offsets[cursor : cursor + occupancy]
            )
            cursor += occupancy
            groups.setdefault(group, []).append(
                (group, position, values, offsets)
            )
        return groups

    @staticmethod
    def _column_stream(
        column: np.ndarray,
        h0: int,
        h1: int,
        num_groups: int,
        compress: bool,
    ) -> Tuple[np.ndarray, Optional[CompressedOperandB]]:
        padded = np.zeros(num_groups * h0 * h1, dtype=float)
        padded[: column.size] = column
        if not compress:
            return padded, None
        encoded = encode_operand_b(
            padded, rank0_block=h0, rank1_block=1, set_size=h1
        )
        return encoded.values, encoded

    @staticmethod
    def _drain_groups(
        vfmu: VariableFetchManagementUnit,
        compressed: Optional[CompressedOperandB],
        h0: int,
        h1: int,
        num_groups: int,
    ) -> List[List[np.ndarray]]:
        """Stream the whole column through the VFMU, one Rank1 group
        (H1 blocks) per shift, reconstructing per-block candidates."""
        groups: List[List[np.ndarray]] = []
        for group in range(num_groups):
            if compressed is None:
                window = vfmu.read_shift(h0 * h1)
                blocks = [
                    window[index * h0 : (index + 1) * h0]
                    for index in range(h1)
                ]
            else:
                shift = compressed.set_counts[group]
                window = vfmu.read_shift(shift)
                blocks = _decompress_group(
                    compressed, window, group, h0, h1
                )
            groups.append(blocks)
        return groups

    # Backwards-compatible alias used in examples/docs.
    simulate = run


def _decompress_group(
    encoded: CompressedOperandB,
    window: np.ndarray,
    group: int,
    h0: int,
    h1: int,
) -> List[np.ndarray]:
    """Rebuild the H1 dense candidate blocks of one group from the
    compressed window using the block end addresses and offsets."""
    first_block = group * h1
    start_addr = (
        encoded.block_end_addresses[first_block - 1] if first_block else 0
    )
    blocks: List[np.ndarray] = []
    cursor = 0
    for index in range(h1):
        block = np.zeros(h0, dtype=float)
        end_addr = encoded.block_end_addresses[first_block + index]
        count = end_addr - (
            encoded.block_end_addresses[first_block + index - 1]
            if first_block + index
            else 0
        )
        for _ in range(count):
            absolute = start_addr + cursor
            block[encoded.intra_positions[absolute]] = window[cursor]
            cursor += 1
        blocks.append(block)
    return blocks


def simulate_matmul(
    a: np.ndarray,
    b: np.ndarray,
    pattern: HSSPattern,
    config: Optional[SimConfig] = None,
    compress_b: bool = False,
) -> Tuple[np.ndarray, SimStats]:
    """Convenience wrapper around :class:`HighLightSimulator`."""
    return HighLightSimulator(config).run(a, b, pattern, compress_b)
