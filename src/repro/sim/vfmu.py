"""The Variable Fetch Management Unit (paper Sec. 6.3.2, Figs. 11-12).

The VFMU decouples the GLB's aligned fixed-width fetches from the
variable-length block accesses hierarchical skipping needs: it holds a
small register buffer, refills it from the GLB in aligned rows, and
serves "read the next `shift` values" requests. For compressed operand
B the shift is driven by the per-set nonzero counts, and a GLB fetch is
skipped whenever enough valid words are already buffered (Fig. 12(b)).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.sim.glb import GlobalBuffer


class VariableFetchManagementUnit:
    """A refillable sliding window over a GLB-resident stream."""

    def __init__(self, glb: GlobalBuffer, capacity_values: int) -> None:
        if capacity_values < glb.row_values:
            raise SimulationError(
                "VFMU buffer must hold at least one GLB row "
                f"({glb.row_values} values), got {capacity_values}"
            )
        self._glb = glb
        self._capacity = capacity_values
        self._buffer: List[float] = []
        self._next_row = 0
        # --- statistics ------------------------------------------------
        self.refills = 0
        self.words_written = 0
        self.shifts = 0
        self.block_reads = 0
        self.skipped_fetches = 0

    @property
    def valid_entries(self) -> int:
        return len(self._buffer)

    def _refill_if_needed(self, needed: int) -> None:
        """Fetch aligned GLB rows until ``needed`` values are buffered.

        When the buffer already holds enough valid entries the fetch is
        skipped — the metadata catch-up mechanism of Fig. 12(b).
        """
        if needed > self._capacity:
            raise SimulationError(
                f"request of {needed} values exceeds VFMU capacity "
                f"{self._capacity}"
            )
        if len(self._buffer) >= needed:
            self.skipped_fetches += 1
            return
        while (
            len(self._buffer) < needed
            and self._next_row < self._glb.num_rows
        ):
            if len(self._buffer) + self._glb.row_values > self._capacity:
                raise SimulationError(
                    "VFMU overflow: refill would exceed capacity"
                )
            row = self._glb.read_row(self._next_row)
            self._buffer.extend(float(v) for v in row)
            self._next_row += 1
            self.refills += 1
            self.words_written += self._glb.row_values
        if len(self._buffer) < needed:
            raise SimulationError(
                "GLB stream exhausted before request was satisfied"
            )

    def read_shift(self, shift: int) -> np.ndarray:
        """Return the next ``shift`` values and advance the window.

        The shift is the per-step offset signal: a fixed number of
        blocks for dense operand B (Fig. 11), the encoded nonzero count
        for compressed operand B (Fig. 12).
        """
        if shift < 0:
            raise SimulationError(f"negative shift {shift}")
        self.shifts += 1
        if shift == 0:
            return np.empty(0, dtype=float)
        self._refill_if_needed(shift)
        self.block_reads += 1
        out = np.array(self._buffer[:shift], dtype=float)
        del self._buffer[:shift]
        return out
