"""Functional micro-architecture simulator of HighLight (paper Sec. 6).

Simulates the down-sized HighLight organization of Fig. 10 at block
granularity: operand A rows in hierarchical CP form held stationary in
PEs, operand B streamed from a GLB through the Variable Fetch
Management Unit (VFMU), Rank1 skipping (only non-empty A blocks are
dispatched), Rank0 skipping (per-PE muxes select the B values matching
A's CP metadata), and gating of MACs whose B operand is zero.

The simulator is *exact*: its output equals ``A @ B`` bit-for-bit in
float64, and its step/access counts validate the analytical model's
cycle and activity counting.
"""

from repro.sim.config import SimConfig
from repro.sim.glb import GlobalBuffer
from repro.sim.vfmu import VariableFetchManagementUnit
from repro.sim.pe import ProcessingElement
from repro.sim.simulator import HighLightSimulator, SimStats, simulate_matmul
from repro.sim.dsso import DssoStats, simulate_dsso_matmul

__all__ = [
    "SimConfig",
    "GlobalBuffer",
    "VariableFetchManagementUnit",
    "ProcessingElement",
    "HighLightSimulator",
    "SimStats",
    "simulate_matmul",
    "DssoStats",
    "simulate_dsso_matmul",
]
