"""Functional simulation of the dual-side HSS design (DSSO, Sec. 7.5).

DSSO supports operands with *alternating dense ranks*: weights carry
``C1(dense) -> C0(Ga:H0)`` and activations ``C1(Gb:H1) -> C0(dense)``.
Because the operands are never sparse at the same rank, each rank's SAF
is a dense-sparse intersection with perfect balance:

* Rank1: only the activation's non-empty C1 blocks are visited (the
  weights are dense at that rank, so every visited block pairs up);
* Rank0: inside a visited block, only the weights' nonzero offsets are
  multiplied (the activations are dense at that rank).

The step count therefore shrinks by *both* densities — the dual-side
speedup Fig. 17 reports — and the result stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sparsity.hss import HSSPattern
from repro.utils import ceil_div


@dataclass(frozen=True)
class DssoStats:
    """Activity of one simulated DSSO matmul."""

    steps: int
    scheduled_products: int
    full_macs: int
    rank1_blocks_skipped: int

    @property
    def speedup_vs_dense(self) -> float:
        return self.dense_slots / max(1, self.scheduled_products)

    dense_slots: int = 0


def simulate_dsso_matmul(
    a: np.ndarray,
    b: np.ndarray,
    pattern_a: HSSPattern,
    pattern_b: HSSPattern,
) -> Tuple[np.ndarray, DssoStats]:
    """Simulate ``Z = A @ B`` with dual-side alternating-rank skipping.

    ``pattern_a`` must be one-rank sparse at rank 0 (upper ranks
    dense); ``pattern_b`` must be dense at rank 0 and sparse at rank 1,
    with matching block geometry (B's rank-0 block is A's H0).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SimulationError(f"incompatible shapes {a.shape} x {b.shape}")
    rank0 = pattern_a.rank(0)
    if any(rule.g != rule.h for rule in pattern_a.ranks[1:]):
        raise SimulationError("operand A must be dense above rank 0")
    if pattern_b.num_ranks < 2:
        raise SimulationError("operand B needs a sparse rank 1")
    b_rank0, b_rank1 = pattern_b.rank(0), pattern_b.rank(1)
    if b_rank0.g != b_rank0.h:
        raise SimulationError("operand B must be dense at rank 0")
    if b_rank0.h != rank0.h:
        raise SimulationError(
            "block geometry mismatch: B rank-0 shape must equal A's H0"
        )

    h0 = rank0.h
    h1 = b_rank1.h
    rows, k = a.shape
    columns = b.shape[1]
    num_blocks = ceil_div(k, h0)

    padded_k = num_blocks * h0
    a_padded = np.zeros((rows, padded_k))
    a_padded[:, :k] = a
    b_padded = np.zeros((padded_k, columns))
    b_padded[:k, :] = b

    output = np.zeros((rows, columns))
    steps = 0
    full_macs = 0
    skipped = 0
    for column in range(columns):
        # Rank1 SAF: visit only non-empty activation blocks.
        for block in range(num_blocks):
            b_block = b_padded[block * h0 : (block + 1) * h0, column]
            if not np.any(b_block):
                skipped += 1
                continue
            steps += 1
            for row in range(rows):
                a_block = a_padded[row, block * h0 : (block + 1) * h0]
                # Rank0 SAF: only the weights' nonzero offsets.
                for offset in np.flatnonzero(a_block):
                    full_macs += 1
                    output[row, column] += (
                        a_block[offset] * b_block[offset]
                    )
    scheduled = steps * rows * rank0.g
    stats = DssoStats(
        steps=steps,
        scheduled_products=scheduled,
        full_macs=full_macs,
        rank1_blocks_skipped=skipped,
        dense_slots=rows * k * columns,
    )
    return output, stats
