"""Simulator configuration: the down-sized HighLight of paper Sec. 6."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sparsity.hss import HSSPattern
from repro.sparsity.pattern import GH


@dataclass(frozen=True)
class SimConfig:
    """Hardware parameters of the simulated (down-sized) HighLight.

    The Sec. 6 walkthrough uses two PEs with two MACs each and sparsity
    support ``C1(2:{2<=H<=4}) -> C0(2:4)``: ``num_pes`` is Rank1's G,
    ``macs_per_pe`` is Rank0's G, ``h0`` is Rank0's fiber shape and
    ``h1_max`` bounds Rank1's supported H (the VFMU buffers
    ``2 x h1_max`` blocks).
    """

    num_pes: int = 2
    macs_per_pe: int = 2
    h0: int = 4
    h1_max: int = 4
    #: GLB row width in values (Fig. 11: 16 data words per row).
    glb_row_values: int = 16

    def __post_init__(self) -> None:
        for name in (
            "num_pes", "macs_per_pe", "h0", "h1_max", "glb_row_values",
        ):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")
        if self.macs_per_pe > self.h0:
            raise SimulationError("macs_per_pe (G0) cannot exceed h0")

    def supports(self, pattern: HSSPattern) -> bool:
        """Whether the simulated hardware can skip this operand-A
        pattern (G values must match the MAC/PE counts; H within
        range)."""
        if pattern.num_ranks != 2:
            return False
        rank0, rank1 = pattern.rank(0), pattern.rank(1)
        return (
            rank0.g == self.macs_per_pe
            and rank0.h == self.h0
            and rank1.g == self.num_pes
            and rank1.g <= rank1.h <= self.h1_max
        )

    def example_pattern(self, h1: int = 4) -> HSSPattern:
        """A supported pattern (defaults to the paper's C1(2:4)->C0(2:4))."""
        pattern = HSSPattern((GH(self.macs_per_pe, self.h0),
                              GH(self.num_pes, h1)))
        if not self.supports(pattern):
            raise SimulationError(f"pattern {pattern} is not supported")
        return pattern
