"""Processing elements: stationary A nonzeros, Rank0 muxing, gating.

Each PE (Fig. 10) holds the (at most G0) nonzero operand-A values of
one Rank0 block in registers together with their CP offsets; each MAC
works on one of those nonzeros. Per step the PE receives a candidate
block of H0 operand-B values; the 4-to-2 mux selects the B value at
each A nonzero's offset (Rank0 skipping SAF), and the MAC is *gated*
when the selected B value is zero (operand-B sparsity, Sec. 6.4).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class ProcessingElement:
    """One PE: up to ``macs`` stationary A values plus their offsets."""

    def __init__(self, macs: int, h0: int) -> None:
        if macs <= 0 or h0 <= 0:
            raise SimulationError("macs and h0 must be positive")
        self._macs = macs
        self._h0 = h0
        self._values: Tuple[float, ...] = ()
        self._offsets: Tuple[int, ...] = ()
        # --- statistics -----------------------------------------------
        self.loads = 0
        self.mux_selects = 0
        self.full_macs = 0
        self.gated_macs = 0

    def load_block(
        self, values: Sequence[float], offsets: Sequence[int]
    ) -> None:
        """Hold one Rank0 block's nonzeros stationary (HSS-operand
        stationary dataflow, Sec. 6.3.1)."""
        if len(values) != len(offsets):
            raise SimulationError("values/offsets length mismatch")
        if len(values) > self._macs:
            raise SimulationError(
                f"block occupancy {len(values)} exceeds {self._macs} MACs"
            )
        for offset in offsets:
            if not 0 <= offset < self._h0:
                raise SimulationError(f"offset {offset} out of block range")
        self._values = tuple(float(v) for v in values)
        self._offsets = tuple(int(o) for o in offsets)
        self.loads += 1

    def clear(self) -> None:
        """Idle the PE (its Rank1 group had fewer non-empty blocks)."""
        self._values = ()
        self._offsets = ()

    def step(self, b_block: np.ndarray) -> float:
        """One processing step: partial sum of this PE's products.

        ``b_block`` holds the H0 candidate operand-B values for the
        block this PE owns.
        """
        if b_block.size != self._h0:
            raise SimulationError(
                f"expected a block of {self._h0} B values, got {b_block.size}"
            )
        partial = 0.0
        for a_value, offset in zip(self._values, self._offsets):
            self.mux_selects += 1
            b_value = float(b_block[offset])
            if b_value == 0.0:
                # Gating SAF: the MAC idles; cycles are unaffected so
                # the spatial accumulation stays in sync (Sec. 6.4).
                self.gated_macs += 1
                continue
            self.full_macs += 1
            partial += a_value * b_value
        return partial
