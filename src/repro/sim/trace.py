"""Step-by-step execution traces of the down-sized HighLight.

A tracing variant of the simulator's inner loop for documentation and
debugging: records, per processing step, which Rank1 group was
dispatched, which blocks went to which PE, the selected B values, and
the gated lanes — the information Fig. 10's annotated datapath shows.
Intended for *small* examples (the walkthrough), not performance runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.simulator import HighLightSimulator
from repro.sparsity.hss import HSSPattern


@dataclass(frozen=True)
class StepRecord:
    """One processing step of one (row, group, column) dispatch."""

    row: int
    column: int
    group: int
    #: Per-PE: (block position in group, A values, offsets) or None.
    pe_assignments: Tuple[Optional[Tuple[int, Tuple[float, ...],
                                         Tuple[int, ...]]], ...]
    #: Per-PE-lane gating flags (True = MAC idled on a zero B value).
    gated_lanes: Tuple[bool, ...]
    partial_sum: float

    def describe(self) -> str:
        parts = [f"row {self.row}, col {self.column}, group {self.group}:"]
        for index, assignment in enumerate(self.pe_assignments):
            if assignment is None:
                parts.append(f"  PE{index}: idle (no block)")
                continue
            position, values, offsets = assignment
            pairs = ", ".join(
                f"{value:g}@{offset}"
                for value, offset in zip(values, offsets)
            )
            parts.append(f"  PE{index}: block {position} [{pairs}]")
        gated = sum(self.gated_lanes)
        parts.append(
            f"  partial sum {self.partial_sum:+.4f}"
            + (f" ({gated} lanes gated)" if gated else "")
        )
        return "\n".join(parts)


@dataclass
class ExecutionTrace:
    """The full per-step record of one traced matmul."""

    steps: List[StepRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def render(self, limit: int = 20) -> str:
        lines = [step.describe() for step in self.steps[:limit]]
        if len(self.steps) > limit:
            lines.append(f"... {len(self.steps) - limit} more steps")
        return "\n".join(lines)


def traced_matmul(
    a: np.ndarray,
    b: np.ndarray,
    pattern: HSSPattern,
    config: Optional[SimConfig] = None,
) -> Tuple[np.ndarray, ExecutionTrace]:
    """Run the simulator while recording a per-step trace.

    Functionally identical to :func:`repro.sim.simulate_matmul` (dense
    operand-B path); the trace is reconstructed from the same encoded
    structures the simulator dispatches.
    """
    config = config or SimConfig()
    simulator = HighLightSimulator(config)
    result, _ = simulator.run(a, b, pattern)

    # Re-walk the schedule to record it (cheap at walkthrough sizes).
    from repro.compression.hierarchical import encode_hierarchical_cp
    from repro.utils import ceil_div

    h0 = pattern.rank(0).h
    h1 = pattern.rank(1).h
    rows, k = np.asarray(a).shape
    columns = np.asarray(b).shape[1]
    num_groups = ceil_div(k, h0 * h1)
    padded_b = np.zeros((num_groups * h0 * h1, columns))
    padded_b[:k, :] = b

    trace = ExecutionTrace()
    for column in range(columns):
        for row in range(rows):
            encoded = encode_hierarchical_cp(np.asarray(a)[row], pattern)
            blocks = HighLightSimulator._collect_blocks(encoded, h1)
            for group in range(num_groups):
                group_blocks = blocks.get(group, [])
                if not group_blocks:
                    continue
                assignments = []
                gated = []
                partial = 0.0
                for pe_index in range(config.num_pes):
                    if pe_index >= len(group_blocks):
                        assignments.append(None)
                        continue
                    _, position, values, offsets = group_blocks[pe_index]
                    assignments.append((position, values, offsets))
                    base = (group * h1 + position) * h0
                    for value, offset in zip(values, offsets):
                        operand = padded_b[base + offset, column]
                        gated.append(operand == 0.0)
                        partial += value * operand
                trace.steps.append(
                    StepRecord(
                        row=row,
                        column=column,
                        group=group,
                        pe_assignments=tuple(assignments),
                        gated_lanes=tuple(gated),
                        partial_sum=partial,
                    )
                )
    return result, trace
