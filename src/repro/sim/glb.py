"""The global buffer (GLB) model: aligned fixed-width row accesses.

Fig. 11: the GLB stores operand B in rows of a fixed number of data
words; every fetch returns one aligned row — the reason the VFMU exists
(variable-length block accesses cannot be served by the GLB directly).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.utils import ceil_div


class GlobalBuffer:
    """A read-counted, row-aligned buffer over a 1-D data stream."""

    def __init__(self, data: np.ndarray, row_values: int) -> None:
        data = np.asarray(data, dtype=float).reshape(-1)
        if row_values <= 0:
            raise SimulationError("row_values must be positive")
        padded = ceil_div(max(data.size, 1), row_values) * row_values
        self._data = np.zeros(padded, dtype=float)
        self._data[: data.size] = data
        self._row_values = row_values
        self.reads = 0

    @property
    def num_rows(self) -> int:
        return self._data.size // self._row_values

    @property
    def row_values(self) -> int:
        return self._row_values

    def read_row(self, row: int) -> np.ndarray:
        """Fetch one aligned row (counted)."""
        if not 0 <= row < self.num_rows:
            raise SimulationError(
                f"GLB row {row} out of range (have {self.num_rows})"
            )
        self.reads += 1
        start = row * self._row_values
        return self._data[start : start + self._row_values].copy()

    def read_rows(self, first: int, count: int) -> List[np.ndarray]:
        """Fetch ``count`` consecutive aligned rows."""
        return [self.read_row(first + index) for index in range(count)]
