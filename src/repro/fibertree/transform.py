"""Content-preserving fibertree transforms: reorder, flatten, partition.

Sparsity pattern specifications may first apply these transforms to a
tensor (paper Sec. 3.2), e.g. the 2:4 pattern of Fig. 4(b) reorders
``C, R, S`` to ``R, S, C``, flattens ``R`` and ``S`` into ``RS`` and then
partitions ``C`` into ``C1`` and ``C0`` with a block size of 4.

The transforms preserve *content*: present coordinates stay present (even
when their value is numerically zero) and pruned coordinates stay pruned.
Partitioning may pad the inner rank with pruned coordinates when the
original shape is not divisible by the block size.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import FiberTensor
from repro.utils import ceil_div


def reorder(tensor: FiberTensor, new_order: Sequence[str]) -> FiberTensor:
    """Reorder ranks to ``new_order`` (highest rank first)."""
    names = tuple(new_order)
    if sorted(names) != sorted(tensor.rank_names):
        raise SpecificationError(
            f"new order {names} is not a permutation of {tensor.rank_names}"
        )
    values, mask = _to_dense_with_mask(tensor)
    axes = tuple(tensor.rank_names.index(name) for name in names)
    return _from_dense_with_mask(
        np.transpose(values, axes), np.transpose(mask, axes), names
    )


def flatten(
    tensor: FiberTensor, ranks: Sequence[str], new_name: str
) -> FiberTensor:
    """Flatten adjacent ranks into a single rank named ``new_name``.

    ``ranks`` must appear contiguously and in order in the tensor's rank
    order (e.g. flattening ``("R", "S")`` of a ``R->S->C`` tensor into
    ``RS`` yields a ``RS->C`` tensor).
    """
    ranks = tuple(ranks)
    if len(ranks) < 2:
        raise SpecificationError("flatten needs at least two ranks")
    start = tensor.rank_index(ranks[0])
    if tensor.rank_names[start : start + len(ranks)] != ranks:
        raise SpecificationError(
            f"ranks {ranks} are not contiguous in {tensor.rank_names}"
        )
    values, mask = _to_dense_with_mask(tensor)
    shape = values.shape
    flat_size = 1
    for axis in range(start, start + len(ranks)):
        flat_size *= shape[axis]
    new_shape = shape[:start] + (flat_size,) + shape[start + len(ranks) :]
    new_names = (
        tensor.rank_names[:start]
        + (new_name,)
        + tensor.rank_names[start + len(ranks) :]
    )
    if len(set(new_names)) != len(new_names):
        raise SpecificationError(f"duplicate rank name {new_name!r}")
    return _from_dense_with_mask(
        values.reshape(new_shape), mask.reshape(new_shape), new_names
    )


def partition(
    tensor: FiberTensor,
    rank: str,
    inner_size: int,
    names: Tuple[str, str],
) -> FiberTensor:
    """Split ``rank`` into an (outer, inner) pair of ranks.

    The inner rank has shape ``inner_size`` (this is the fiber shape a G:H
    rule's H refers to). When the original shape is not divisible by
    ``inner_size`` the last inner fiber is padded with pruned coordinates.
    """
    if inner_size <= 0:
        raise SpecificationError(
            f"inner_size must be positive, got {inner_size}"
        )
    axis = tensor.rank_index(rank)
    outer_name, inner_name = names
    values, mask = _to_dense_with_mask(tensor)
    original = values.shape[axis]
    outer = ceil_div(original, inner_size)
    padded = outer * inner_size
    if padded != original:
        pad_width = [(0, 0)] * values.ndim
        pad_width[axis] = (0, padded - original)
        values = np.pad(values, pad_width)
        mask = np.pad(mask, pad_width)
    new_shape = (
        values.shape[:axis] + (outer, inner_size) + values.shape[axis + 1 :]
    )
    new_names = (
        tensor.rank_names[:axis]
        + (outer_name, inner_name)
        + tensor.rank_names[axis + 1 :]
    )
    if len(set(new_names)) != len(new_names):
        raise SpecificationError(f"duplicate rank names in {new_names}")
    return _from_dense_with_mask(
        values.reshape(new_shape), mask.reshape(new_shape), new_names
    )


def _to_dense_with_mask(
    tensor: FiberTensor,
) -> Tuple[np.ndarray, np.ndarray]:
    values = np.zeros(tensor.rank_shapes, dtype=float)
    mask = np.zeros(tensor.rank_shapes, dtype=bool)
    for path, value in tensor.leaves():
        values[path] = value
        mask[path] = True
    return values, mask


def _from_dense_with_mask(
    values: np.ndarray, mask: np.ndarray, rank_names: Sequence[str]
) -> FiberTensor:
    root = _build(values, mask)
    if root is None:
        root = Fiber(values.shape[0])
    return FiberTensor(rank_names, root)


def _build(values: np.ndarray, mask: np.ndarray):
    fiber = Fiber(values.shape[0])
    if values.ndim == 1:
        for coordinate in range(values.shape[0]):
            if mask[coordinate]:
                fiber.set_payload(coordinate, float(values[coordinate]))
    else:
        for coordinate in range(values.shape[0]):
            child = _build(values[coordinate], mask[coordinate])
            if child is not None:
                fiber.set_payload(coordinate, child)
    return fiber if fiber.occupancy else None
