"""The :class:`Fiber` data structure: one node of a fibertree.

A fiber is an ordered mapping from integer *coordinates* to *payloads*.
For intermediate ranks the payload of a coordinate is a :class:`Fiber`
from the next-lower rank; for the lowest rank the payload is a value.

The paper (Sec. 3.1) defines two key per-fiber quantities which we expose
directly:

* ``shape`` — the total number of coordinate slots the fiber spans
  (the H of a G:H rule applies to the fiber shape).
* ``occupancy`` — the number of coordinates present, i.e. associated
  with nonzero (sub)content (the G of a G:H rule bounds the occupancy).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple


class Fiber:
    """An ordered set of (coordinate, payload) pairs with a known shape."""

    __slots__ = ("_shape", "_entries")

    def __init__(
        self,
        shape: int,
        entries: Optional[Dict[int, Any]] = None,
    ) -> None:
        if shape <= 0:
            raise ValueError(f"fiber shape must be positive, got {shape}")
        self._shape = shape
        self._entries: Dict[int, Any] = {}
        if entries:
            for coord, payload in entries.items():
                self.set_payload(coord, payload)

    @property
    def shape(self) -> int:
        """Total number of coordinate slots in the fiber."""
        return self._shape

    @property
    def occupancy(self) -> int:
        """Number of coordinates currently present in the fiber."""
        return len(self._entries)

    @property
    def density(self) -> float:
        """Occupancy as a fraction of shape."""
        return self.occupancy / self.shape

    def coordinates(self) -> List[int]:
        """Coordinates present in the fiber, in ascending order."""
        return sorted(self._entries)

    def payload(self, coordinate: int) -> Any:
        """Payload at ``coordinate``; raises ``KeyError`` when pruned."""
        return self._entries[coordinate]

    def get(self, coordinate: int, default: Any = None) -> Any:
        """Payload at ``coordinate``, or ``default`` when absent."""
        self._check_coordinate(coordinate)
        return self._entries.get(coordinate, default)

    def set_payload(self, coordinate: int, payload: Any) -> None:
        """Insert/replace the payload at ``coordinate``."""
        self._check_coordinate(coordinate)
        self._entries[coordinate] = payload

    def prune(self, coordinate: int) -> None:
        """Remove a coordinate (and, implicitly, its whole subtree).

        Pruning an intermediate-rank coordinate removes its fiber payload,
        which is exactly the "chained effect" that makes the resulting
        sparsity *structured* (paper Sec. 3.2).
        """
        self._check_coordinate(coordinate)
        self._entries.pop(coordinate, None)

    def __contains__(self, coordinate: int) -> bool:
        return coordinate in self._entries

    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        for coordinate in self.coordinates():
            yield coordinate, self._entries[coordinate]

    def __len__(self) -> int:
        return self.occupancy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return self._shape == other._shape and self._entries == other._entries

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{coord}: {payload!r}" for coord, payload in self
        )
        return f"Fiber(shape={self._shape}, {{{inner}}})"

    def _check_coordinate(self, coordinate: int) -> None:
        if not 0 <= coordinate < self._shape:
            raise IndexError(
                f"coordinate {coordinate} out of range for shape {self._shape}"
            )

    def blocks(self, block_size: int) -> List["Fiber"]:
        """Split this fiber into contiguous fixed-size blocks.

        Used when applying a G:H rule: each block of H coordinate slots is
        checked/pruned independently. The final block may be a partial
        block when the shape is not a multiple of ``block_size``.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        blocks: List[Fiber] = []
        for start in range(0, self._shape, block_size):
            size = min(block_size, self._shape - start)
            block = Fiber(size)
            for coord in range(start, start + size):
                if coord in self._entries:
                    block.set_payload(coord - start, self._entries[coord])
            blocks.append(block)
        return blocks
