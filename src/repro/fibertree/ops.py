"""Fibertree algebra: the traversal operators sparse dataflows build on.

The fibertree literature (Sze et al. [44], ExTensor [19]) expresses
sparse kernels through a small set of fiber operators:

* :func:`intersect` — coordinates present in *both* fibers (the
  operator behind effectual-product identification; an A(i) x B(i)
  product is effectual iff i survives the intersection);
* :func:`union` — coordinates present in either fiber (additive
  merges);
* :func:`dot` — the leader-follower dot product of two leaf fibers,
  returning the value and the count of effectual multiplies.

These make statements like "dense-sparse intersections lead to a
perfectly balanced workload" (paper Sec. 7.5) executable and testable.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.errors import SpecificationError
from repro.fibertree.fiber import Fiber


def _check_shapes(first: Fiber, second: Fiber) -> None:
    if first.shape != second.shape:
        raise SpecificationError(
            f"fiber shape mismatch: {first.shape} vs {second.shape}"
        )


def intersect(first: Fiber, second: Fiber) -> Fiber:
    """Coordinates present in both fibers; payloads become pairs."""
    _check_shapes(first, second)
    out = Fiber(first.shape)
    # Iterate the smaller fiber, probe the larger (leader-follower).
    leader, follower = (
        (first, second)
        if first.occupancy <= second.occupancy
        else (second, first)
    )
    swap = leader is second
    for coordinate, payload in leader:
        other = follower.get(coordinate)
        if other is None and coordinate not in follower:
            continue
        pair = (other, payload) if swap else (payload, other)
        out.set_payload(coordinate, pair)
    return out


def union(first: Fiber, second: Fiber) -> Fiber:
    """Coordinates present in either fiber; payloads become pairs with
    ``None`` marking the absent side."""
    _check_shapes(first, second)
    out = Fiber(first.shape)
    for coordinate, payload in first:
        out.set_payload(coordinate, (payload, second.get(coordinate)))
    for coordinate, payload in second:
        if coordinate not in out:
            out.set_payload(coordinate, (None, payload))
    return out


def map_payloads(fiber: Fiber, function: Callable) -> Fiber:
    """A new fiber with ``function`` applied to every payload."""
    out = Fiber(fiber.shape)
    for coordinate, payload in fiber:
        out.set_payload(coordinate, function(payload))
    return out


def dot(first: Fiber, second: Fiber) -> Tuple[float, int]:
    """Dot product of two leaf fibers: (value, effectual multiplies).

    Only intersected coordinates multiply — the count is exactly the
    number of effectual compute operations a skipping accelerator
    performs for this fiber pair.
    """
    intersection = intersect(first, second)
    total = 0.0
    for _, (a_value, b_value) in intersection:
        total += float(a_value) * float(b_value)
    return total, intersection.occupancy


def intersection_balance(first: Fiber, second: Fiber) -> float:
    """Fraction of the *leader's* coordinates that survive intersection.

    For a dense leader against a G:H-structured follower this is
    exactly G/H regardless of where the nonzeros sit — the "dense-
    sparse intersections by nature lead to a perfectly balanced
    workload" property (Sec. 7.5). For two unstructured fibers it
    varies with the operands, which is the imbalance DSTC suffers.
    """
    _check_shapes(first, second)
    leader = first if first.occupancy <= second.occupancy else second
    if leader.occupancy == 0:
        return 1.0
    return intersect(first, second).occupancy / leader.occupancy
