"""Fibertree linear algebra: matmul with effectual-operation counting.

A reference implementation of ``Z = A @ B`` expressed entirely through
fiber intersection (the way sparse-tensor-accelerator papers reason
about kernels): only coordinates surviving the A-row x B-column
intersection multiply, so the returned operation count *is* the number
of effectual compute operations — the quantity every design's density
model predicts. The tests close the loop: for structured operands the
count equals ``M*K*N*dA*dB`` exactly in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree.builders import from_dense
from repro.fibertree.fiber import Fiber
from repro.fibertree.ops import dot
from repro.fibertree.tensor import FiberTensor


@dataclass(frozen=True)
class MatmulCount:
    """Operation accounting of a fibertree matmul."""

    effectual_multiplies: int
    dense_slots: int

    @property
    def effectual_fraction(self) -> float:
        if self.dense_slots == 0:
            return 0.0
        return self.effectual_multiplies / self.dense_slots


def matmul_fibertree(
    a: FiberTensor, b: FiberTensor
) -> Tuple[FiberTensor, MatmulCount]:
    """Multiply two 2-D fibertrees; returns (Z tree, counts).

    ``a`` is (M, K) with K lowest; ``b`` must be (N, K) — i.e. B
    *transposed* so both contracted fibers are leaf fibers and rows
    can intersect directly (the inner-product / Gustavson view).
    """
    if a.num_ranks != 2 or b.num_ranks != 2:
        raise SpecificationError("matmul_fibertree expects 2-D tensors")
    # Empty (fully pruned) tensors report a 0 lower-rank shape; they
    # are compatible with anything and contribute no operations.
    extents = (a.rank_shapes[1], b.rank_shapes[1])
    if 0 not in extents and extents[0] != extents[1]:
        raise SpecificationError(
            f"contracted extents differ: {extents[0]} vs {extents[1]}"
        )
    rows = a.rank_shapes[0]
    columns = b.rank_shapes[0]
    root = Fiber(rows)
    effectual = 0
    for row_coordinate, row_fiber in a.root:
        out_fiber = Fiber(max(1, columns))
        for column_coordinate, column_fiber in b.root:
            value, multiplies = dot(row_fiber, column_fiber)
            effectual += multiplies
            if multiplies:
                out_fiber.set_payload(column_coordinate, value)
        if out_fiber.occupancy:
            root.set_payload(row_coordinate, out_fiber)
    result = FiberTensor((a.rank_names[0], b.rank_names[0]), root)
    counts = MatmulCount(
        effectual_multiplies=effectual,
        dense_slots=rows * a.rank_shapes[1] * columns,
    )
    return result, counts


def matmul_dense_check(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, MatmulCount]:
    """Convenience: numpy in, fibertree matmul inside, numpy out.

    ``a`` is (M, K), ``b`` is (K, N); zeros are pruned on entry so the
    count reflects the operands' true sparsity.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SpecificationError(
            f"incompatible shapes {a.shape} x {b.shape}"
        )
    tree_a = from_dense(a, ("M", "K"))
    tree_b = from_dense(b.T.copy(), ("N", "K"))
    result, counts = matmul_fibertree(tree_a, tree_b)
    dense = np.zeros((a.shape[0], b.shape[1]))
    for (row, column), value in result.leaves():
        dense[row, column] = value
    return dense, counts
