"""Fibertree abstraction (Sze et al. [44]): precise tensor-content trees.

A *fibertree* represents the content of a tensor independent of its storage
layout. Each tensor dimension corresponds to a *rank*; each rank contains
*fibers*; a fiber is an ordered set of (coordinate, payload) pairs where a
payload is either a lower-rank fiber (intermediate ranks) or a value
(the lowest rank). Sparsity is expressed by *pruning coordinates*.

This package provides:

* :class:`Fiber` / :class:`FiberTensor` — the tree data structures.
* :func:`from_dense` / ``FiberTensor.to_dense`` — numpy round-trips.
* Content-preserving transforms used by sparsity specifications:
  :func:`reorder`, :func:`flatten`, :func:`partition` (rank splitting).
* :func:`render` — a text rendering of small trees for docs and debugging.
"""

from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import FiberTensor
from repro.fibertree.builders import from_dense
from repro.fibertree.transform import flatten, partition, reorder
from repro.fibertree.pretty import render

__all__ = [
    "Fiber",
    "FiberTensor",
    "from_dense",
    "flatten",
    "partition",
    "reorder",
    "render",
]
