"""Text rendering of small fibertrees (for docs, examples and debugging)."""

from __future__ import annotations

from typing import List

from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import FiberTensor


def render(tensor: FiberTensor, max_leaves: int = 64) -> str:
    """Render a fibertree as an indented text tree.

    Example output for a small ``C->R->S`` tensor::

        C (shape=2)
        +- 0
        |  R (shape=2)
        |  +- 0
        |  |  S (shape=2): {0: 1.0, 1: 2.0}
        ...
    """
    lines: List[str] = []
    _render_fiber(tensor.root, tensor.rank_names, 0, "", lines, max_leaves)
    return "\n".join(lines)


def _render_fiber(
    fiber: Fiber,
    rank_names,
    depth: int,
    indent: str,
    lines: List[str],
    max_leaves: int,
) -> None:
    name = rank_names[depth]
    if depth == len(rank_names) - 1:
        entries = ", ".join(
            f"{coord}: {value:g}" for coord, value in list(fiber)[:max_leaves]
        )
        suffix = ", ..." if fiber.occupancy > max_leaves else ""
        lines.append(f"{indent}{name} (shape={fiber.shape}): "
                     f"{{{entries}{suffix}}}")
        return
    lines.append(f"{indent}{name} (shape={fiber.shape})")
    for coordinate, child in fiber:
        lines.append(f"{indent}+- {coordinate}")
        _render_fiber(
            child, rank_names, depth + 1, indent + "|  ", lines, max_leaves
        )
