"""Construct fibertrees from dense numpy arrays."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import FiberTensor


def from_dense(
    array: np.ndarray,
    rank_names: Sequence[str],
    keep_zeros: bool = False,
) -> FiberTensor:
    """Build a :class:`FiberTensor` from a dense array.

    By default zero values are *not* inserted (their coordinates are
    pruned), so the resulting tree directly reflects the sparsity of the
    array. Pass ``keep_zeros=True`` to build the fully dense tree of
    Fig. 3(b), which is the starting point for specification examples.
    """
    array = np.asarray(array)
    names = tuple(rank_names)
    if array.ndim != len(names):
        raise SpecificationError(
            f"array has {array.ndim} dims but {len(names)} rank names given"
        )
    if array.ndim == 0:
        raise SpecificationError("cannot build a fibertree from a scalar")
    root = _build_fiber(array, keep_zeros)
    if root is None:
        root = Fiber(array.shape[0])
    return FiberTensor(names, root)


def _build_fiber(array: np.ndarray, keep_zeros: bool):
    """Recursively build the fiber for ``array``; ``None`` if all-zero."""
    fiber = Fiber(array.shape[0])
    if array.ndim == 1:
        for coordinate, value in enumerate(array):
            if keep_zeros or value != 0:
                fiber.set_payload(int(coordinate), value.item())
    else:
        for coordinate in range(array.shape[0]):
            child = _build_fiber(array[coordinate], keep_zeros)
            if child is not None:
                fiber.set_payload(coordinate, child)
    if fiber.occupancy == 0 and not keep_zeros:
        return None
    return fiber
