"""The :class:`FiberTensor`: a named-rank fibertree over a whole tensor."""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree.fiber import Fiber


class FiberTensor:
    """A fibertree with named ranks.

    ``rank_names`` is ordered *highest rank first* (the root of the tree),
    matching the paper's left-to-right ``->`` notation, e.g. the dense
    weight tensor of Fig. 3 has ``rank_names=("C", "R", "S")``.
    """

    def __init__(self, rank_names: Sequence[str], root: Fiber) -> None:
        names = tuple(rank_names)
        if not names:
            raise SpecificationError("a tensor needs at least one rank")
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate rank names in {names}")
        self._rank_names = names
        self._root = root
        self._rank_shapes = self._infer_rank_shapes()

    @property
    def rank_names(self) -> Tuple[str, ...]:
        """Rank names, highest rank first."""
        return self._rank_names

    @property
    def num_ranks(self) -> int:
        return len(self._rank_names)

    @property
    def root(self) -> Fiber:
        """The root fiber (the single fiber of the highest rank)."""
        return self._root

    @property
    def rank_shapes(self) -> Tuple[int, ...]:
        """Per-rank fiber shapes, highest rank first."""
        return self._rank_shapes

    def _infer_rank_shapes(self) -> Tuple[int, ...]:
        shapes: List[int] = [self._root.shape]
        fiber: Any = self._root
        for _ in range(self.num_ranks - 1):
            child = _first_child(fiber)
            if child is None:
                # An empty subtree: we cannot see deeper shapes. This only
                # happens for fully-pruned tensors; report shape 0 markers.
                shapes.extend([0] * (self.num_ranks - len(shapes)))
                return tuple(shapes)
            shapes.append(child.shape)
            fiber = child
        return tuple(shapes)

    def rank_index(self, rank_name: str) -> int:
        """Index of a rank by name (0 is the highest rank)."""
        try:
            return self._rank_names.index(rank_name)
        except ValueError:
            raise SpecificationError(
                f"unknown rank {rank_name!r}; tensor has {self._rank_names}"
            ) from None

    def fibers_at_rank(self, rank: int) -> List[Fiber]:
        """All fibers belonging to the given rank depth (0 = root rank)."""
        if not 0 <= rank < self.num_ranks:
            raise SpecificationError(
                f"rank {rank} out of range for {self.num_ranks} ranks"
            )
        fibers = [self._root]
        for _ in range(rank):
            next_level: List[Fiber] = []
            for fiber in fibers:
                for _, payload in fiber:
                    next_level.append(payload)
            fibers = next_level
        return fibers

    def leaves(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate (coordinate-path, value) pairs for all present values."""
        yield from _walk(self._root, (), self.num_ranks)

    @property
    def occupancy(self) -> int:
        """Total number of present (nonzero) values."""
        return sum(1 for _ in self.leaves())

    @property
    def size(self) -> int:
        """Total number of value slots in the dense envelope."""
        total = 1
        for shape in self._rank_shapes:
            total *= shape
        return total

    @property
    def density(self) -> float:
        """Fraction of value slots that are occupied."""
        size = self.size
        return self.occupancy / size if size else 0.0

    @property
    def sparsity(self) -> float:
        """1 - density (the paper's definition of sparsity degree)."""
        return 1.0 - self.density

    def to_dense(self) -> np.ndarray:
        """Materialize the tree into a dense numpy array (zeros filled in)."""
        array = np.zeros(self._rank_shapes, dtype=float)
        for path, value in self.leaves():
            array[path] = value
        return array

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiberTensor):
            return NotImplemented
        return (
            self._rank_names == other._rank_names
            and self._root == other._root
        )

    def __repr__(self) -> str:
        ranks = "->".join(self._rank_names)
        return (
            f"FiberTensor({ranks}, shapes={self._rank_shapes}, "
            f"occupancy={self.occupancy}/{self.size})"
        )


def _first_child(fiber: Fiber) -> Any:
    for _, payload in fiber:
        return payload
    return None


def _walk(
    fiber: Fiber, prefix: Tuple[int, ...], ranks_left: int
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    if ranks_left == 1:
        for coordinate, value in fiber:
            yield prefix + (coordinate,), value
        return
    for coordinate, child in fiber:
        yield from _walk(child, prefix + (coordinate,), ranks_left - 1)
