"""HSS sparsification of numpy tensors (paper Sec. 4.2).

Sparsification proceeds rank-by-rank in a lower-to-higher fashion:

* at the lowest rank, the values with the smallest magnitude inside each
  block of H0 are pruned, keeping at most G0;
* at an intermediate rank n, whole rank-(n-1) blocks are pruned inside
  each group of Hn blocks, keeping the Gn blocks with the largest
  *scaled L2 norm* — defined by the paper as the average magnitude of
  all values in the block's payload.

The functions operate along one axis of a numpy array (the flattened
channel axis for weights). Axes whose length is not a multiple of the
pattern's span are handled by zero-padding the trailing partial block;
padding slots never displace real values because their magnitude is 0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SparsificationError
from repro.sparsity.hss import HSSPattern
from repro.sparsity.pattern import GH
from repro.utils import ceil_div


def scaled_l2_norm(blocks: np.ndarray) -> np.ndarray:
    """Per-block importance score: the average magnitude of the payload.

    ``blocks`` has block elements on the last axis; the score reduces
    that axis.
    """
    return np.mean(np.abs(blocks), axis=-1)


def sparsify(
    array: np.ndarray, pattern: HSSPattern, axis: int = -1
) -> np.ndarray:
    """Return a copy of ``array`` sparsified to ``pattern`` along ``axis``.

    >>> import numpy as np
    >>> from repro.sparsity import HSSPattern
    >>> a = np.arange(1.0, 9.0)
    >>> sparsify(a, HSSPattern.from_ratios((2, 4)))
    array([0., 0., 3., 4., 0., 0., 7., 8.])
    """
    array = np.asarray(array, dtype=float)
    if array.ndim == 0:
        raise SparsificationError("cannot sparsify a scalar")
    moved = np.moveaxis(array, axis, -1)
    lead_shape = moved.shape[:-1]
    length = moved.shape[-1]
    flat = moved.reshape(-1, length)

    span = pattern.block_sizes()[-1]
    padded_length = ceil_div(length, span) * span
    work = np.zeros((flat.shape[0], padded_length), dtype=float)
    work[:, :length] = flat

    result = _sparsify_rows(work, pattern)

    out = result[:, :length].reshape(lead_shape + (length,))
    return np.moveaxis(out, -1, axis)


def _sparsify_rows(rows: np.ndarray, pattern: HSSPattern) -> np.ndarray:
    """Sparsify each row of a 2-D array whose width is a span multiple."""
    out = rows.copy()
    # Rank 0: magnitude pruning inside each block of H0 values.
    rank0 = pattern.rank(0)
    out = _prune_rank0(out, rank0)
    # Intermediate ranks: prune whole lower-rank blocks by scaled L2 norm.
    span = rank0.h
    for level in range(1, pattern.num_ranks):
        rule = pattern.rank(level)
        out = _prune_intermediate(out, rule, span)
        span *= rule.h
    return out


def _prune_rank0(rows: np.ndarray, rule: GH) -> np.ndarray:
    num_rows, width = rows.shape
    blocks = rows.reshape(num_rows, width // rule.h, rule.h)
    if rule.g >= rule.h:
        return rows
    # Keep the G largest magnitudes per block: zero everything ranked
    # below the top G. argsort ascending; the first H-G indices go.
    order = np.argsort(np.abs(blocks), axis=-1, kind="stable")
    drop = order[..., : rule.h - rule.g]
    pruned = blocks.copy()
    np.put_along_axis(pruned, drop, 0.0, axis=-1)
    return pruned.reshape(num_rows, width)


def _prune_intermediate(
    rows: np.ndarray, rule: GH, lower_span: int
) -> np.ndarray:
    """Prune whole lower-rank blocks: keep G of every H blocks."""
    if rule.g >= rule.h:
        return rows
    num_rows, width = rows.shape
    group_span = lower_span * rule.h
    if width % group_span:
        raise SparsificationError(
            f"row width {width} is not a multiple of the rank span "
            f"{group_span}"
        )
    # (rows, groups, H blocks, lower_span values)
    grouped = rows.reshape(num_rows, width // group_span, rule.h, lower_span)
    scores = scaled_l2_norm(grouped)
    order = np.argsort(scores, axis=-1, kind="stable")
    drop = order[..., : rule.h - rule.g]
    pruned = grouped.copy()
    np.put_along_axis(
        pruned, drop[..., np.newaxis], 0.0, axis=-2
    )
    return pruned.reshape(num_rows, width)


def sparsify_unstructured(
    array: np.ndarray,
    sparsity: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Unstructured magnitude pruning to a target overall sparsity.

    Used to produce the workloads unstructured-sparse baselines (DSTC)
    run. Ties at the threshold are broken arbitrarily but
    deterministically.
    """
    if not 0.0 <= sparsity < 1.0:
        raise SparsificationError(
            f"sparsity must be in [0, 1), got {sparsity}"
        )
    array = np.asarray(array, dtype=float)
    flat = array.reshape(-1)
    num_prune = int(round(sparsity * flat.size))
    if num_prune == 0:
        return array.copy()
    order = np.argsort(np.abs(flat), kind="stable")
    out = flat.copy()
    out[order[:num_prune]] = 0.0
    return out.reshape(array.shape)


def random_hss_matrix(
    rows: int,
    cols: int,
    pattern: Optional[HSSPattern],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A random matrix sparsified to ``pattern`` along its columns.

    With ``pattern=None`` a dense random matrix is returned. Values are
    drawn away from zero so that kept entries are always nonzero, making
    measured density equal the pattern density exactly.
    """
    rng = rng or np.random.default_rng(0)
    # Uniform in [0.5, 1.5) with random sign: no accidental zeros.
    magnitude = rng.uniform(0.5, 1.5, size=(rows, cols))
    sign = rng.choice([-1.0, 1.0], size=(rows, cols))
    dense = magnitude * sign
    if pattern is None:
        return dense
    return sparsify(dense, pattern, axis=-1)
