"""Executable sparsity specifications: prune a fibertree per a spec.

Table 2's fibertree-based specification is not just descriptive — this
module makes it *executable*: :func:`apply_spec` walks a
:class:`~repro.fibertree.FiberTensor` and prunes coordinates according
to each rank's rule (unconstrained by magnitude fraction, G:H by
scaled-L2 block ranking), lowest sparse rank first, exactly the
Sec. 4.2 sparsification order. The numpy fast path
(:func:`repro.sparsity.sparsify.sparsify`) and this tree path agree on
their common cases, which the tests assert.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import FiberTensor
from repro.sparsity.pattern import GH, Dense, GHRange, Unconstrained
from repro.sparsity.spec import SparsitySpec


def apply_spec(
    tensor: FiberTensor,
    spec: SparsitySpec,
    unconstrained_sparsity: float = 0.5,
) -> FiberTensor:
    """Return a new tensor pruned to ``spec``.

    ``spec``'s rank names must match the tensor's rank order. Ranks
    with :class:`Unconstrained` rules prune the smallest-importance
    fraction ``unconstrained_sparsity`` of each fiber; :class:`GH`
    rules keep the top-G sub-payloads of every aligned block of H.
    Rules are applied lowest-rank-first.
    """
    if spec.rank_names != tensor.rank_names:
        raise SpecificationError(
            f"spec ranks {spec.rank_names} do not match tensor ranks "
            f"{tensor.rank_names}"
        )
    if not 0.0 <= unconstrained_sparsity < 1.0:
        raise SpecificationError(
            "unconstrained_sparsity must be in [0, 1), got "
            f"{unconstrained_sparsity}"
        )
    root = _clone(tensor.root, tensor.num_ranks)
    result = FiberTensor(tensor.rank_names, root)
    # Lowest sparse rank first (Sec. 4.2).
    for depth in reversed(range(tensor.num_ranks)):
        rule = spec.ranks[depth].rule
        if isinstance(rule, Dense):
            continue
        if isinstance(rule, GHRange):
            raise SpecificationError(
                "cannot apply a GHRange family; pick a concrete G:H"
            )
        for fiber in result.fibers_at_rank(depth):
            _prune_fiber(fiber, rule, unconstrained_sparsity)
    return result


def _clone(fiber: Fiber, ranks_left: int) -> Fiber:
    out = Fiber(fiber.shape)
    for coordinate, payload in fiber:
        if ranks_left == 1:
            out.set_payload(coordinate, payload)
        else:
            out.set_payload(coordinate, _clone(payload, ranks_left - 1))
    return out


def _importance(payload: Union[Fiber, float]) -> float:
    """Scaled L2 norm of a payload: |value| at leaves, the average
    magnitude of the subtree otherwise (the Sec. 4.2 score)."""
    if not isinstance(payload, Fiber):
        return abs(float(payload))
    values: List[float] = []
    _collect(payload, values)
    if not values:
        return 0.0
    return float(np.mean(np.abs(values)))


def _collect(fiber: Fiber, out: List[float]) -> None:
    for _, payload in fiber:
        if isinstance(payload, Fiber):
            _collect(payload, out)
        else:
            out.append(float(payload))


def _prune_fiber(fiber: Fiber, rule, unconstrained_sparsity: float) -> None:
    if isinstance(rule, Unconstrained):
        coordinates = fiber.coordinates()
        num_prune = int(round(unconstrained_sparsity * fiber.shape))
        ranked = sorted(
            coordinates, key=lambda c: _importance(fiber.payload(c))
        )
        for coordinate in ranked[:num_prune]:
            fiber.prune(coordinate)
        return
    if isinstance(rule, GH):
        for block_start in range(0, fiber.shape, rule.h):
            block = [
                c
                for c in range(block_start,
                               min(block_start + rule.h, fiber.shape))
                if c in fiber
            ]
            if len(block) <= rule.g:
                continue
            ranked = sorted(
                block, key=lambda c: _importance(fiber.payload(c))
            )
            for coordinate in ranked[: len(block) - rule.g]:
                fiber.prune(coordinate)
        return
    raise SpecificationError(f"cannot apply rule {rule!r}")
