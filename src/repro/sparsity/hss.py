"""N-rank HSS patterns and the design-space math of paper Secs. 4-5.

An :class:`HSSPattern` is an ordered list of concrete G:H rules, *lowest
rank first* (rank 0 is the value rank, matching the paper's C0). The
overall density is the product of the per-rank fractions and the overall
sparsity degree is ``1 - prod(G_n/H_n)`` (Sec. 4.1.2).

This module also implements the analyses behind Fig. 6:

* :func:`compose_densities` — composing sets of density fractions
  multiplicatively (Fig. 1).
* :func:`supported_degrees` — the distinct overall densities a hardware
  design supports given per-rank :class:`GHRange` families.
* :func:`mux_cost` — the muxing sparsity-tax model (Secs. 5.2-5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from typing import Iterable, List, Sequence, Tuple

from repro.errors import PatternError
from repro.sparsity.pattern import GH, GHRange


@dataclass(frozen=True)
class HSSPattern:
    """A concrete N-rank HSS instance (rank 0 = lowest/value rank)."""

    ranks: Tuple[GH, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise PatternError("an HSS pattern needs at least one rank")
        for rank in self.ranks:
            if not isinstance(rank, GH):
                raise PatternError(
                    f"HSS ranks must be concrete G:H rules, got {rank!r}"
                )

    @staticmethod
    def from_ratios(*ratios: Tuple[int, int]) -> "HSSPattern":
        """Build from (G, H) tuples given lowest rank first.

        >>> HSSPattern.from_ratios((2, 4), (3, 4)).sparsity
        0.625
        """
        return HSSPattern(tuple(GH(g, h) for g, h in ratios))

    @property
    def num_ranks(self) -> int:
        """The N of the N-rank HSS."""
        return len(self.ranks)

    @cached_property
    def density(self) -> float:
        """Overall density: product of per-rank G/H fractions.
        Computed once per (frozen) instance — the exact-fraction
        product is far more expensive than a float and sweeps query
        densities constantly."""
        return float(self.density_fraction)

    @cached_property
    def density_fraction(self) -> Fraction:
        result = Fraction(1)
        for rank in self.ranks:
            result *= rank.fraction
        return result

    @property
    def sparsity(self) -> float:
        """Overall sparsity degree: 1 - prod(G_n / H_n) (Sec. 4.1.2)."""
        return 1.0 - self.density

    def rank(self, level: int) -> GH:
        """The G:H rule at rank ``level`` (0 = lowest)."""
        return self.ranks[level]

    def block_sizes(self) -> Tuple[int, ...]:
        """Per-rank block sizes in *values*, lowest rank first.

        Rank 0's block is H0 values; rank 1's block is H1 rank-0 blocks,
        i.e. H1*H0 values; and so on (the granularity hierarchy of
        Sec. 4.1.2).
        """
        sizes: List[int] = []
        span = 1
        for rank in self.ranks:
            span *= rank.h
            sizes.append(span)
        return tuple(sizes)

    def max_speedup(self) -> float:
        """Ideal skipping speedup when all ranks are skipped: 1/density."""
        return 1.0 / self.density

    def succinct(self) -> str:
        """Paper-style short form, highest rank first:
        ``C1(3:4)->C0(2:4)``."""
        parts = [
            f"C{level}({rank})"
            for level, rank in reversed(list(enumerate(self.ranks)))
        ]
        return "->".join(parts)

    def __str__(self) -> str:
        return self.succinct()


def compose_densities(
    *sets: Iterable[Fraction],
) -> List[Fraction]:
    """Compose sets of density fractions by multiplication (Fig. 1).

    Returns the distinct products in descending order. Composing
    ``{1, 1/2}`` and ``{1, 2/3, 1/2}`` yields six degrees, which is the
    figure's S0 x S1 example.
    """
    products = {Fraction(1)}
    for density_set in sets:
        densities = list(density_set)
        if not densities:
            raise PatternError("cannot compose an empty density set")
        products = {p * Fraction(d) for p in products for d in densities}
    return sorted(products, reverse=True)


def supported_degrees(rank_families: Sequence[GHRange]) -> List[Fraction]:
    """Distinct overall densities supported by per-rank G:H families.

    ``rank_families`` is given lowest rank first. The one-rank design S
    of Fig. 6 uses ``[GHRange(2, 2, 16)]`` (15 degrees) and the two-rank
    design SS uses ``[GHRange(2, 2, 4), GHRange(2, 2, 8)]`` (also 15
    degrees, with much smaller per-rank Hmax).
    """
    if not rank_families:
        raise PatternError("need at least one rank family")
    return compose_densities(
        *[family.densities() for family in rank_families]
    )


#: Relative width of an address/pointer mux input vs a data mux input.
#: Upper-rank SAFs select *blocks* by muxing start/end addresses into the
#: VFMU's registers (Sec. 6.3.2) rather than muxing full-width data words,
#: so their per-input cost is the metadata width over the data width
#: (4-bit offsets vs 16-bit data by default).
ADDRESS_WIDTH_RATIO = 0.25


def mux_cost(
    rank_families: Sequence[GHRange],
    address_width_ratio: float = ADDRESS_WIDTH_RATIO,
) -> float:
    """Muxing sparsity-tax of a design, in data-mux-input units.

    Model (Secs. 5.2-5.3): supporting a ``G:{..<=H<=Hmax}`` family needs G
    muxes with Hmax inputs each, so a rank costs ``G * Hmax`` mux inputs
    — linear in Hmax at fixed G, as the paper states. Rank 0 muxes
    full-width data; higher ranks mux addresses/pointers, whose inputs
    are cheaper by ``address_width_ratio``.
    """
    if not rank_families:
        raise PatternError("need at least one rank family")
    total = 0.0
    for level, family in enumerate(rank_families):
        inputs = family.g * family.h_max
        width = 1.0 if level == 0 else address_width_ratio
        total += inputs * width
    return total


def fig6_designs() -> Tuple[List[GHRange], List[GHRange]]:
    """The S (one-rank) and SS (two-rank) designs compared in Fig. 6.

    Both support 15 sparsity degrees across 0%-87.5%; S needs Hmax=16
    while SS needs Hmax=8 at Rank1 and Hmax=4 at Rank0.
    """
    design_s = [GHRange(2, 2, 16)]
    design_ss = [GHRange(2, 2, 4), GHRange(2, 2, 8)]
    return design_s, design_ss
