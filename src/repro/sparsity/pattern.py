"""Per-rank pruning rules: G:H patterns, ranges of patterns, unconstrained.

A *pruning rule* (paper Sec. 3.2) says whether and how coordinates inside
each fiber of a rank may be pruned:

* :class:`Dense` — no pruning (ranks without a ``(<rule>)`` in the spec).
* :class:`Unconstrained` — any subset of coordinates may be pruned
  (unstructured sparsity when applied at the lowest rank, channel
  sparsity when applied at the top rank).
* :class:`GH` — at most G of every H coordinates are present, giving a
  density of exactly G/H for a fully sparsified tensor.
* :class:`GHRange` — a *family* of G:H rules with fixed G and a range of
  H values; hardware (Table 3) supports such families, e.g. HighLight's
  Rank1 supports ``4:{4<=H<=8}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from repro.errors import PatternError
from repro.utils import check_fraction


@dataclass(frozen=True)
class Dense:
    """No pruning at this rank (implicitly fully dense)."""

    def __str__(self) -> str:
        return "dense"

    @property
    def density(self) -> float:
        return 1.0


@dataclass(frozen=True)
class Unconstrained:
    """Coordinates may be pruned arbitrarily (unstructured sparsity)."""

    def __str__(self) -> str:
        return "unconstrained"


@dataclass(frozen=True)
class GH:
    """A G:H structured pattern: at most G nonzeros per block of H.

    ``GH(2, 4)`` is the sparse-tensor-core 2:4 pattern; its density is
    the fraction G/H = 0.5.
    """

    g: int
    h: int

    def __post_init__(self) -> None:
        try:
            check_fraction("G:H pattern", self.g, self.h)
        except (TypeError, ValueError) as exc:
            raise PatternError(str(exc)) from None

    @property
    def density(self) -> float:
        """Density contributed by this rank (G/H)."""
        return self.g / self.h

    @property
    def fraction(self) -> Fraction:
        """Exact density as a fraction (used for degree composition)."""
        return Fraction(self.g, self.h)

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def __str__(self) -> str:
        return f"{self.g}:{self.h}"


@dataclass(frozen=True)
class GHRange:
    """A family of G:H rules with fixed G and H in [h_min, h_max].

    Skipping hardware favours a fixed G equal to (a factor of) the number
    of parallel units (Sec. 5.1); flexibility then comes from supporting
    several H values, at a mux cost that grows with ``h_max`` (Sec. 5.2).
    """

    g: int
    h_min: int
    h_max: int

    def __post_init__(self) -> None:
        if self.g <= 0:
            raise PatternError(f"G must be positive, got {self.g}")
        if self.h_min > self.h_max:
            raise PatternError(
                f"h_min {self.h_min} exceeds h_max {self.h_max}"
            )
        if self.h_min < self.g:
            raise PatternError(
                f"h_min {self.h_min} must be at least G {self.g}"
            )

    def patterns(self) -> List[GH]:
        """All concrete G:H rules in the family."""
        return [GH(self.g, h) for h in range(self.h_min, self.h_max + 1)]

    def densities(self) -> List[Fraction]:
        """Distinct densities expressible by the family, descending."""
        seen = sorted(
            {Fraction(self.g, h) for h in range(self.h_min, self.h_max + 1)},
            reverse=True,
        )
        return seen

    def supports(self, pattern: GH) -> bool:
        """Whether a concrete G:H rule belongs to this family."""
        return (
            pattern.g == self.g and self.h_min <= pattern.h <= self.h_max
        )

    def __str__(self) -> str:
        if self.h_min == self.h_max:
            return f"{self.g}:{self.h_min}"
        return f"{self.g}:{{{self.h_min}<=H<={self.h_max}}}"


def parse_rule(text: str):
    """Parse a rule string: ``dense``, ``unconstrained``, ``G:H`` or
    ``G:{lo<=H<=hi}``."""
    text = text.strip()
    if text.lower() == "dense":
        return Dense()
    if text.lower() == "unconstrained":
        return Unconstrained()
    if ":" not in text:
        raise PatternError(f"cannot parse rule {text!r}")
    g_text, h_text = text.split(":", 1)
    try:
        g = int(g_text)
    except ValueError:
        raise PatternError(f"bad G in rule {text!r}") from None
    h_text = h_text.strip()
    if h_text.startswith("{") and h_text.endswith("}"):
        bounds = _parse_h_range(h_text[1:-1])
        return GHRange(g, bounds[0], bounds[1])
    try:
        h = int(h_text)
    except ValueError:
        raise PatternError(f"bad H in rule {text!r}") from None
    return GH(g, h)


def _parse_h_range(inner: str) -> Tuple[int, int]:
    parts = inner.split("<=")
    if len(parts) != 3 or parts[1].strip().upper() != "H":
        raise PatternError(f"bad H range {{{inner}}}")
    try:
        return int(parts[0]), int(parts[2])
    except ValueError:
        raise PatternError(f"bad H range bounds in {{{inner}}}") from None
