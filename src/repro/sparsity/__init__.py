"""Hierarchical structured sparsity (HSS): the paper's core contribution.

Public surface:

* :class:`GH` / :class:`GHRange` / :class:`Unconstrained` — per-rank
  pruning rules (paper Sec. 3.2).
* :class:`RankSpec` / :class:`SparsitySpec` — the precise fibertree-based
  sparsity specification of Table 2, with a parser for strings like
  ``"RS->C1(3:4)->C0(2:4)"``.
* :class:`HSSPattern` — an N-rank HSS instance: per-rank G:H patterns,
  density-degree composition (Fig. 1), overall sparsity (Sec. 4.1.2).
* :func:`supported_degrees` / :func:`mux_cost` — the design-space
  analyses behind Fig. 6.
* :func:`sparsify` — rank-by-rank magnitude HSS sparsification of numpy
  matrices (Sec. 4.2), plus unstructured pruning for baselines.
* :func:`conforms` / :func:`measure_sparsity` — conformance checking.
"""

from repro.sparsity.pattern import GH, GHRange, Unconstrained, Dense
from repro.sparsity.spec import RankSpec, SparsitySpec, parse_spec
from repro.sparsity.hss import (
    HSSPattern,
    compose_densities,
    mux_cost,
    supported_degrees,
)
from repro.sparsity.sparsify import (
    random_hss_matrix,
    scaled_l2_norm,
    sparsify,
    sparsify_unstructured,
)
from repro.sparsity.analyze import conforms, conformance_report, measure_sparsity
from repro.sparsity.apply import apply_spec
from repro.sparsity import library

__all__ = [
    "GH",
    "GHRange",
    "Unconstrained",
    "Dense",
    "RankSpec",
    "SparsitySpec",
    "parse_spec",
    "HSSPattern",
    "compose_densities",
    "mux_cost",
    "supported_degrees",
    "sparsify",
    "sparsify_unstructured",
    "random_hss_matrix",
    "scaled_l2_norm",
    "conforms",
    "conformance_report",
    "measure_sparsity",
    "apply_spec",
    "library",
]
