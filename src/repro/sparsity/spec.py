"""The precise fibertree-based sparsity specification (paper Sec. 3).

A :class:`SparsitySpec` is an ordered list of :class:`RankSpec` (highest
rank first); each rank optionally carries a pruning rule. The string form
matches the paper's Table 2 notation::

    C(unconstrained)->R->S              # channel pruning
    RS->C1->C0(2:4)                     # sparse tensor core 2:4
    RS->C2->C1(3:4)->C0(2:4)            # the two-rank HSS of Fig. 5

``->`` orders ranks from higher to lower; ranks without a parenthesized
rule are dense. Rank names ending in digits conventionally denote
partitioned ranks (``C`` split into ``C1``/``C0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import SpecificationError
from repro.fibertree import FiberTensor, from_dense, flatten, partition, reorder
from repro.sparsity.pattern import (
    GH,
    Dense,
    GHRange,
    Unconstrained,
    parse_rule,
)

Rule = Union[Dense, Unconstrained, GH, GHRange]


@dataclass(frozen=True)
class RankSpec:
    """One rank of a sparsity specification: a name plus a pruning rule."""

    name: str
    rule: Rule = field(default_factory=Dense)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SpecificationError(f"bad rank name {self.name!r}")

    @property
    def is_sparse(self) -> bool:
        """Whether this rank carries an explicit pruning rule."""
        return not isinstance(self.rule, Dense)

    def __str__(self) -> str:
        if isinstance(self.rule, Dense):
            return self.name
        return f"{self.name}({self.rule})"


@dataclass(frozen=True)
class SparsitySpec:
    """An ordered (highest rank first) fibertree sparsity specification."""

    ranks: Tuple[RankSpec, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise SpecificationError("a spec needs at least one rank")
        names = [rank.name for rank in self.ranks]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate rank names in {names}")

    @property
    def rank_names(self) -> Tuple[str, ...]:
        return tuple(rank.name for rank in self.ranks)

    @property
    def sparse_ranks(self) -> Tuple[RankSpec, ...]:
        """Ranks that carry pruning rules, highest first."""
        return tuple(rank for rank in self.ranks if rank.is_sparse)

    @property
    def num_sparse_ranks(self) -> int:
        """The N of an N-rank HSS (ranks with patterns assigned)."""
        return len(self.sparse_ranks)

    @property
    def is_hierarchical(self) -> bool:
        """Whether more than one rank has a pruning rule (HSS proper)."""
        return self.num_sparse_ranks > 1

    def density(self) -> Optional[float]:
        """Overall density when all rules are concrete G:H patterns.

        Returns ``None`` when any sparse rank is unconstrained or a
        GHRange (density is then not a single number).
        """
        result = 1.0
        for rank in self.sparse_ranks:
            if not isinstance(rank.rule, GH):
                return None
            result *= rank.rule.density
        return result

    def sparsity(self) -> Optional[float]:
        """Overall sparsity degree: ``1 - prod(G_n / H_n)`` (Sec. 4.1.2)."""
        density = self.density()
        return None if density is None else 1.0 - density

    def __str__(self) -> str:
        return "->".join(str(rank) for rank in self.ranks)

    def succinct(self) -> str:
        """The paper's short form: only ranks with patterns, e.g.
        ``C1(3:4)->C0(2:4)``."""
        sparse = self.sparse_ranks
        if not sparse:
            return "dense"
        return "->".join(str(rank) for rank in sparse)


def parse_spec(text: str) -> SparsitySpec:
    """Parse a specification string like ``"RS->C1(3:4)->C0(2:4)"``.

    Both the ASCII arrow ``->`` and the unicode arrow used in the paper
    are accepted.
    """
    text = text.strip().replace("→", "->")
    if not text:
        raise SpecificationError("empty specification string")
    ranks: List[RankSpec] = []
    for part in text.split("->"):
        part = part.strip()
        if not part:
            raise SpecificationError(f"empty rank in {text!r}")
        if "(" in part:
            if not part.endswith(")"):
                raise SpecificationError(f"unbalanced parens in {part!r}")
            name, rule_text = part[:-1].split("(", 1)
            ranks.append(RankSpec(name.strip(), parse_rule(rule_text)))
        else:
            ranks.append(RankSpec(part))
    return SparsitySpec(tuple(ranks))


def weight_tensor_spec_view(
    weights: np.ndarray, h_values: Tuple[int, ...]
) -> FiberTensor:
    """Build the partitioned fibertree view a spec's rules apply to.

    Takes a (C, R, S) weight tensor, reorders to (R, S, C), flattens R and
    S into RS, then repeatedly partitions the lowest rank by the H values
    given lowest-rank-first (e.g. ``h_values=(4, 4)`` reproduces the
    ``RS->C2->C1->C0`` view of Fig. 5 with fiber shapes 4 at C0 and C1).
    """
    if weights.ndim != 3:
        raise SpecificationError(
            f"expected a (C, R, S) tensor, got {weights.ndim} dims"
        )
    tree = from_dense(weights, ("C", "R", "S"), keep_zeros=True)
    tree = reorder(tree, ("R", "S", "C"))
    tree = flatten(tree, ("R", "S"), "RS")
    lowest = "C"
    for level, h in enumerate(h_values):
        is_last = level == len(h_values) - 1
        # Intermediate upper ranks get re-partitioned at the next level, so
        # only the final upper rank's name (C<N>) survives in the output.
        upper = f"C{len(h_values)}" if is_last else f"Ctmp{level}"
        tree = partition(tree, lowest, h, (upper, f"C{level}"))
        lowest = upper
    return tree
