"""Conformance checking and sparsity measurement for HSS tensors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.sparsity.hss import HSSPattern
from repro.utils import ceil_div


def measure_sparsity(array: np.ndarray) -> float:
    """Measured sparsity: fraction of exactly-zero entries."""
    array = np.asarray(array)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array == 0) / array.size)


def measure_density(array: np.ndarray) -> float:
    """Measured density: fraction of nonzero entries."""
    return 1.0 - measure_sparsity(array)


@dataclass(frozen=True)
class RankConformance:
    """Conformance of one HSS rank: observed vs allowed occupancy."""

    level: int
    g: int
    h: int
    max_occupancy: int
    num_violations: int

    @property
    def ok(self) -> bool:
        return self.num_violations == 0


@dataclass(frozen=True)
class ConformanceReport:
    """Per-rank conformance details for a tensor against a pattern."""

    ranks: Tuple[RankConformance, ...]
    measured_sparsity: float
    pattern_sparsity: float

    @property
    def ok(self) -> bool:
        return all(rank.ok for rank in self.ranks)


def conformance_report(
    array: np.ndarray, pattern: HSSPattern, axis: int = -1
) -> ConformanceReport:
    """Check that ``array`` satisfies ``pattern`` along ``axis``.

    A rank-n fiber conforms when at most G_n of its H_n sub-blocks are
    non-empty. Trailing partial blocks (axis length not a multiple of
    the span) are treated as zero-padded.
    """
    array = np.asarray(array, dtype=float)
    moved = np.moveaxis(array, axis, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    length = flat.shape[1]
    span = pattern.block_sizes()[-1]
    padded = ceil_div(length, span) * span
    work = np.zeros((flat.shape[0], padded), dtype=float)
    work[:, :length] = flat

    nonzero = work != 0
    ranks: List[RankConformance] = []
    lower_span = 1
    for level, rule in enumerate(pattern.ranks):
        # A sub-block is non-empty when any value inside it is nonzero.
        grouped = nonzero.reshape(
            nonzero.shape[0], padded // (lower_span * rule.h), rule.h,
            lower_span,
        )
        block_nonempty = grouped.any(axis=-1)
        occupancy = block_nonempty.sum(axis=-1)
        violations = int(np.count_nonzero(occupancy > rule.g))
        ranks.append(
            RankConformance(
                level=level,
                g=rule.g,
                h=rule.h,
                max_occupancy=int(occupancy.max(initial=0)),
                num_violations=violations,
            )
        )
        lower_span *= rule.h
    return ConformanceReport(
        ranks=tuple(ranks),
        measured_sparsity=measure_sparsity(array),
        pattern_sparsity=pattern.sparsity,
    )


def conforms(
    array: np.ndarray, pattern: HSSPattern, axis: int = -1
) -> bool:
    """Whether ``array`` satisfies ``pattern`` along ``axis``."""
    return conformance_report(array, pattern, axis).ok
