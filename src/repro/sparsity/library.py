"""Named sparsity specifications from the paper's Tables 2 and 3.

Each entry pairs the conventional (informal) classification with the
precise fibertree-based specification, demonstrating that the precise
form distinguishes patterns the informal names conflate (three different
proposals are all called "sub-channel" in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sparsity.spec import SparsitySpec, parse_spec


@dataclass(frozen=True)
class NamedPattern:
    """A sparsity pattern with provenance, for Table 2."""

    source: str
    conventional_name: str
    spec: SparsitySpec


def table2_patterns() -> Tuple[NamedPattern, ...]:
    """The example patterns of Table 2, in paper order."""
    return (
        NamedPattern(
            source="Han et al. [15] (Deep Compression)",
            conventional_name="Unstructured",
            spec=parse_spec("CRS(unconstrained)"),
        ),
        NamedPattern(
            source="He et al. [17] (channel pruning)",
            conventional_name="Channel",
            spec=parse_spec("C(unconstrained)->R->S"),
        ),
        NamedPattern(
            source="Niu et al. [35] (PatDNN)",
            conventional_name="Sub-kernel",
            spec=parse_spec("C->RS(1:9)"),
        ),
        NamedPattern(
            source="Mishra et al. [32] (sparse tensor core)",
            conventional_name="Sub-channel",
            spec=parse_spec("RS->C1->C0(2:4)"),
        ),
        NamedPattern(
            source="Zhu et al. [60] (vector-wise)",
            conventional_name="Sub-channel",
            spec=parse_spec("RS->C1->C0(4:16)"),
        ),
        NamedPattern(
            source="Liu et al. [30] (S2TA)",
            conventional_name="Sub-channel",
            spec=parse_spec("RS->C1->C0(4:8)"),
        ),
        NamedPattern(
            source="This work (two-rank HSS, Fig. 5)",
            conventional_name="Sub-channel",
            spec=parse_spec("RS->C2->C1(3:4)->C0(2:4)"),
        ),
    )


# The canonical HSS example used throughout the paper's Sec. 6 walkthrough.
EXAMPLE_TWO_RANK = parse_spec("RS->C2->C1(3:4)->C0(2:4)")

# NVIDIA sparse tensor core 2:4 (Fig. 4(b)).
SPARSE_TENSOR_CORE_24 = parse_spec("RS->C1->C0(2:4)")

# Channel-based structured sparsity (Fig. 4(a)).
CHANNEL_PRUNING = parse_spec("C(unconstrained)->R->S")

# Unstructured sparsity over the fully flattened tensor.
UNSTRUCTURED = parse_spec("CRS(unconstrained)")
