"""The decorator-registered rule registry.

Mirrors the repo's other registries (``DesignRegistry``,
``ArtifactRegistry``): a :func:`rule` decorator attaches metadata —
id, human name, category, default severity, fixability, optional path
scoping — to a check function and registers it.  Collisions are
resolved by the registry's *scan mode* (``raise``/``skip``/
``replace``), the same contract the plugin loader exposes through
``repro lint --plugins DIR --on-collision MODE``.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.errors import LintError, LintUsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: A rule's per-file check: yields findings for one parsed file.
CheckFn = Callable[["FileContext"], Iterable["Finding"]]
#: A rule's optional whole-run pass, called once after every file:
#: receives the run-shared state dict rules stashed data into.
FinishFn = Callable[[Dict[str, Any]], Iterable["Finding"]]

_RULE_ID_RE = re.compile(r"^[A-Z][A-Z0-9]{2,15}$")

#: Collision behaviors a registry scan may use.
COLLISION_MODES: Tuple[str, ...] = ("raise", "skip", "replace")


@dataclass(frozen=True)
class RuleInfo:
    """One registered rule: metadata plus its check callable(s)."""

    id: str
    name: str
    category: str
    severity: str
    fixable: bool
    check: CheckFn
    #: fnmatch patterns limiting which files the rule sees; empty
    #: means every linted file.
    paths: Tuple[str, ...] = ()
    finish: Optional[FinishFn] = None
    description: str = ""


class RuleRegistry:
    """Rules keyed by id, with raise/skip/replace collision modes."""

    def __init__(self) -> None:
        self._rules: Dict[str, RuleInfo] = {}
        self._mode: str = "raise"

    def register(
        self, info: RuleInfo, on_collision: Optional[str] = None
    ) -> RuleInfo:
        """Add ``info``; returns the rule that ended up registered
        (the incumbent when a ``skip``-mode collision keeps it)."""
        mode = self._mode if on_collision is None else on_collision
        if mode not in COLLISION_MODES:
            raise LintError(
                f"unknown collision mode {mode!r}; "
                f"expected one of {', '.join(COLLISION_MODES)}"
            )
        if not _RULE_ID_RE.match(info.id):
            raise LintError(
                f"rule id {info.id!r} must be 3-16 chars of "
                f"[A-Z0-9] starting with a letter (e.g. REP001)"
            )
        incumbent = self._rules.get(info.id)
        if incumbent is not None:
            if mode == "raise":
                raise LintError(
                    f"rule id {info.id!r} is already registered "
                    f"(as {incumbent.name!r}); pass "
                    f"--on-collision skip|replace to resolve"
                )
            if mode == "skip":
                return incumbent
        self._rules[info.id] = info
        return info

    @contextmanager
    def scanning(self, mode: str) -> Iterator["RuleRegistry"]:
        """Temporarily set the default collision mode (plugin scans)."""
        if mode not in COLLISION_MODES:
            raise LintError(
                f"unknown collision mode {mode!r}; "
                f"expected one of {', '.join(COLLISION_MODES)}"
            )
        previous, self._mode = self._mode, mode
        try:
            yield self
        finally:
            self._mode = previous

    def clone(self) -> "RuleRegistry":
        """An independent copy — plugin loads mutate the copy, not
        the process-wide builtin registry."""
        copy = RuleRegistry()
        copy._rules = dict(self._rules)
        return copy

    def resolve(self, key: str) -> RuleInfo:
        """Look a rule up by id (``REP001``) or name
        (``lock-discipline``)."""
        info = self._rules.get(key)
        if info is not None:
            return info
        for candidate in self._rules.values():
            if candidate.name == key:
                return candidate
        raise LintUsageError(
            f"unknown rule {key!r}; known: "
            + ", ".join(
                f"{info.id} ({info.name})" for info in self.infos()
            )
        )

    def infos(self) -> List[RuleInfo]:
        return sorted(self._rules.values(), key=lambda info: info.id)

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[RuleInfo]:
        return iter(self.infos())


#: The process-wide registry builtin rules register into on import.
RULES = RuleRegistry()

#: Where :func:`rule` registers when no explicit registry is passed.
#: The plugin loader points this at a per-invocation clone so plugin
#: modules (which just use the plain decorator) never mutate the
#: process-wide builtin set.
_ACTIVE_REGISTRY: Optional[RuleRegistry] = None


@contextmanager
def target_registry(registry: RuleRegistry) -> Iterator[RuleRegistry]:
    """Route decorator registrations to ``registry`` for the scope."""
    global _ACTIVE_REGISTRY
    previous, _ACTIVE_REGISTRY = _ACTIVE_REGISTRY, registry
    try:
        yield registry
    finally:
        _ACTIVE_REGISTRY = previous


def rule(
    name: str,
    *,
    id: str,
    category: str,
    severity: str = "error",
    fixable: bool = False,
    paths: Iterable[str] = (),
    finish: Optional[FinishFn] = None,
    registry: Optional[RuleRegistry] = None,
) -> Callable[[CheckFn], RuleInfo]:
    """Register a lint rule: ``@rule("lock-discipline", id="REP001",
    category="concurrency")`` above its check function.

    The check receives a :class:`~repro.analysis.context.FileContext`
    and yields findings; ``ctx.finding(...)`` builds them with
    location, snippet, and suppression handling filled in.  The
    decorator returns the :class:`RuleInfo` (like ``@artifact``), so
    the module-level name is the registered spec, not the bare
    function.
    """

    def decorate(check: CheckFn) -> RuleInfo:
        info = RuleInfo(
            id=id,
            name=name,
            category=category,
            severity=severity,
            fixable=fixable,
            check=check,
            paths=tuple(paths),
            finish=finish,
            description=(check.__doc__ or "").strip().split("\n")[0],
        )
        target = registry
        if target is None:
            target = (
                RULES if _ACTIVE_REGISTRY is None else _ACTIVE_REGISTRY
            )
        return target.register(info)

    return decorate
