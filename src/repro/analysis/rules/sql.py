"""REP002 sql-transaction: balanced transactions, no built SQL.

Two checks guard the queue/cache durability story:

1. **Transaction balance** — in any function that issues
   ``conn.execute("BEGIN IMMEDIATE")``, the fall-through path must
   reach a ``COMMIT`` and the exception path a ``ROLLBACK`` (the
   repo idiom: ``try: ... except BaseException: ROLLBACK; raise``
   then ``COMMIT``).  A BEGIN with no COMMIT leaves the database
   write-locked; no ROLLBACK on error leaks the transaction into the
   next statement.

2. **No dynamically built SQL** — statements assembled with
   f-strings, ``%``, ``+`` or ``.format`` are flagged anywhere, with
   one carve-out for the repo's parameter-expansion idiom: an
   interpolation that is itself a ``"?"``-placeholder expression
   (``",".join("?" * len(chunk))`` or a name containing
   ``placeholder``) is parameter plumbing, not injectable text.
   Matching is case-sensitive on upper-case SQL keywords (the repo
   writes SQL upper-case), so prose f-strings never false-positive;
   ``PRAGMA`` statements are exempt by design (no parameter support,
   values come from code constants).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext, own_statements
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_SQL_HEAD_RE = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|CREATE|DROP|ALTER)\b"
)
_EXECUTE_METHODS = {"execute", "executemany", "executescript"}


def _execute_constant(stmt: ast.stmt) -> Optional[str]:
    """The constant SQL text of an ``x.execute("...")`` statement."""
    if not isinstance(stmt, ast.Expr):
        return None
    call = stmt.value
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Attribute)
        and call.func.attr in _EXECUTE_METHODS
        and call.args
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, str)
    ):
        return None
    return call.args[0].value


def _is_placeholder_expr(node: ast.expr) -> bool:
    """The repo's sanctioned dynamic part: '?'-placeholder expansion."""
    if isinstance(node, ast.Name):
        return "placeholder" in node.id.lower()
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "join"
        and isinstance(node.func.value, ast.Constant)
        and node.func.value.value == ","
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        for side in (node.left, node.right):
            if (
                isinstance(side, ast.Constant)
                and side.value == "?"
            ):
                return True
    if isinstance(node, ast.FormattedValue):
        return _is_placeholder_expr(node.value)
    return False


def _literal_head(node: ast.expr) -> Optional[str]:
    """The leading literal text of a string-building expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        for value in node.values:
            if isinstance(value, ast.Constant):
                return str(value.value)
            return None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Mod)
    ):
        return _literal_head(node.left)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return _literal_head(node.func.value)
    return None


def _dynamic_parts(node: ast.expr) -> List[ast.expr]:
    """Non-literal fragments of a string-building expression."""
    if isinstance(node, ast.Constant):
        return []
    if isinstance(node, ast.JoinedStr):
        return [
            value
            for value in node.values
            if isinstance(value, ast.FormattedValue)
        ]
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Mod)
    ):
        return _dynamic_parts(node.left) + _dynamic_parts(node.right)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return list(node.args) + [kw.value for kw in node.keywords]
    return [node]


def _is_built_string(node: ast.expr) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Mod)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    )


@rule(
    "sql-transaction",
    id="REP002",
    category="durability",
    severity="error",
)
def check_sql_transaction(ctx: FileContext) -> Iterator[Finding]:
    """Every BEGIN IMMEDIATE reaches COMMIT/ROLLBACK; no SQL is
    built from f-strings, ``%``, ``+`` or ``.format``."""
    yield from _check_transactions(ctx)
    yield from _check_built_sql(ctx)


def _check_transactions(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        begins: List[ast.stmt] = []
        commits: List[ast.stmt] = []
        rollbacks_in_handlers: List[ast.stmt] = []
        handler_statements = set()
        for stmt in own_statements(node):
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    for inner in ast.walk(handler):
                        handler_statements.add(id(inner))
        for stmt in own_statements(node):
            sql = _execute_constant(stmt)
            if sql is None:
                continue
            head = sql.strip().upper()
            if head.startswith("BEGIN"):
                begins.append(stmt)
            elif head.startswith("COMMIT"):
                commits.append(stmt)
            elif head.startswith("ROLLBACK"):
                if id(stmt) in handler_statements:
                    rollbacks_in_handlers.append(stmt)
        for begin in begins:
            after = [
                commit
                for commit in commits
                if commit.lineno > begin.lineno
            ]
            if not after:
                finding = ctx.finding(
                    check_sql_transaction,
                    begin,
                    "BEGIN IMMEDIATE with no COMMIT on the "
                    "fall-through path — the transaction never "
                    "becomes durable",
                )
                if finding is not None:
                    yield finding
            if not rollbacks_in_handlers:
                finding = ctx.finding(
                    check_sql_transaction,
                    begin,
                    "BEGIN IMMEDIATE with no ROLLBACK in an except "
                    "handler — an error mid-transaction leaks the "
                    "write lock into the next statement",
                )
                if finding is not None:
                    yield finding


def _check_built_sql(ctx: FileContext) -> Iterator[Finding]:
    flagged: set = set()
    for node in ast.walk(ctx.tree):
        expressions: List[Tuple[ast.expr, str]] = []
        if isinstance(node, ast.Call) and (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _EXECUTE_METHODS
            and node.args
        ):
            expressions.append((node.args[0], "execute() argument"))
        elif isinstance(node, ast.expr) and _is_built_string(node):
            expressions.append((node, "string expression"))
        for expr, kind in expressions:
            if not _is_built_string(expr) or id(expr) in flagged:
                continue
            head = _literal_head(expr)
            if head is None or not _SQL_HEAD_RE.match(head):
                continue
            offending = [
                part
                for part in _dynamic_parts(expr)
                if not _is_placeholder_expr(part)
            ]
            if not offending:
                continue
            flagged.add(id(expr))
            finding = ctx.finding(
                check_sql_transaction,
                expr,
                f"SQL {kind} is built dynamically "
                f"(f-string/%/+/.format) — use a literal statement "
                f"with '?' parameters (only '?'-placeholder "
                f"expansion may be interpolated)",
            )
            if finding is not None:
                yield finding
