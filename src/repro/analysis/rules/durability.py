"""REP004 close-discipline: constructed engines/stores must close.

``SweepEngine.close()`` flushes the persistent cache and tears down
worker pools; ``JobStore.close()`` releases the SQLite connection;
``EvaluationService.close()`` (the ``repro serve`` layer) closes the
engine the whole service shares.  The PR 4 durability guarantee — an
interrupted grid keeps every completed evaluation — holds only if
every construction site funnels through ``close()`` on all exit
paths.  This rule flags a watched constructor call whose result
provably never reaches one:

* used directly as (or wrapped in ``closing(...)`` inside) a
  ``with`` item — OK;
* constructed inside a ``return`` expression, or the bound name later
  appears in one — ownership transfers to the caller — OK;
* bound to ``self.<attr>`` (or any attribute) — lifetime belongs to
  the owning object — OK;
* the bound name is later a ``with`` item (possibly via
  ``closing(name)`` / ``closing(name.engine)``), or ``.close()`` /
  ``.shutdown()`` on it appears inside a ``finally:`` block — OK;
* handed to ``attach_cache(...)`` — the engine owns it now — OK;
* anything else leaks pools or buffered cache entries on the first
  exception — flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.context import FileContext, attr_chain
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: Classes whose instances own resources that must be released.
WATCHED_CLASSES = {
    "SweepEngine",
    "JobStore",
    "PersistentCache",
    "EngineContext",
    "EvaluationService",
}
#: Constructor-classmethods on the watched classes.
_FACTORY_METHODS = {"create", "for_estimator"}
#: Methods that release the resource when called in a finally block.
_RELEASE_METHODS = {"close", "shutdown"}
#: Call targets that take over ownership of a passed instance.
_OWNERSHIP_SINKS = {"attach_cache"}


def _constructed_class(call: ast.Call) -> Optional[str]:
    chain = attr_chain(call.func)
    if not chain:
        return None
    if chain[-1] in WATCHED_CLASSES:
        return chain[-1]
    if (
        len(chain) >= 2
        and chain[-1] in _FACTORY_METHODS
        and chain[-2] in WATCHED_CLASSES
    ):
        return chain[-2]
    return None


def _root_name(expr: ast.expr) -> Optional[str]:
    """The leftmost name of a with-item context expression,
    unwrapping ``closing(...)``-style single-argument calls."""
    if isinstance(expr, ast.Call) and len(expr.args) == 1:
        inner = attr_chain(expr.func)
        if inner and inner[-1] in {"closing", "ExitStack"}:
            return _root_name(expr.args[0])
    chain = attr_chain(expr)
    return chain[0] if chain else None


class _FunctionFacts(ast.NodeVisitor):
    """What one function scope does with names: with-items, finally
    release calls, returns, ownership handoffs.  Nested function and
    class bodies are separate scopes and are skipped."""

    def __init__(self) -> None:
        self.with_roots: set = set()
        self.finally_released: set = set()
        self.returned_names: set = set()
        self.sink_args: set = set()
        self._finally_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        self._collect_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._collect_with(node)

    def _collect_with(self, node: "ast.With | ast.AsyncWith") -> None:
        for item in node.items:
            root = _root_name(item.context_expr)
            if root is not None:
                self.with_roots.add(root)
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        for child in (
            node.body + node.handlers + node.orelse  # type: ignore[operator]
        ):
            self.visit(child)
        self._finally_depth += 1
        for stmt in node.finalbody:
            self.visit(stmt)
        self._finally_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        if (
            self._finally_depth > 0
            and len(chain) >= 2
            and chain[-1] in _RELEASE_METHODS
        ):
            self.finally_released.add(chain[0])
        if chain and chain[-1] in _OWNERSHIP_SINKS:
            for arg in node.args:
                arg_chain = attr_chain(arg)
                if arg_chain:
                    self.sink_args.add(arg_chain[0])
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        # A name in the returned expression transfers ownership to the
        # caller — unless it only appears as a method receiver
        # (``return store.stats()`` returns the stats, not the store).
        if node.value is not None:
            names: set = set()
            receivers: set = set()
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
                elif isinstance(inner, ast.Call):
                    chain = attr_chain(inner.func)
                    if len(chain) >= 2:
                        receivers.add(chain[0])
            self.returned_names.update(names - receivers)
        self.generic_visit(node)


def _parents(func: ast.AST) -> Dict[int, ast.AST]:
    table: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            table[id(child)] = node
            stack.append(child)
    return table


def _binding_target(
    call: ast.Call, parents: Dict[int, ast.AST]
) -> "tuple[str, Optional[str]]":
    """How the constructed value is captured: ('with'|'return'|
    'attr'|'name'|'sink'|'none', bound name)."""
    node: ast.AST = call
    while id(node) in parents:
        parent = parents[id(node)]
        if isinstance(parent, ast.withitem):
            return ("with", None)
        if isinstance(parent, ast.Return):
            return ("return", None)
        if isinstance(parent, ast.Call):
            chain = attr_chain(parent.func)
            if chain and chain[-1] in _OWNERSHIP_SINKS:
                return ("sink", None)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            value = getattr(parent, "value", None)
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            if value is not None:
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        return ("attr", None)
                    if isinstance(target, ast.Name):
                        return ("name", target.id)
            return ("none", None)
        node = parent
    return ("none", None)


@rule(
    "close-discipline",
    id="REP004",
    category="durability",
    severity="error",
)
def check_close_discipline(ctx: FileContext) -> Iterator[Finding]:
    """Constructed engines/stores/caches must be closed in a
    ``finally:`` or context manager, or ownership must transfer."""
    for node in ast.walk(ctx.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        facts = _FunctionFacts()
        for stmt in node.body:
            facts.visit(stmt)
        parents = _parents(node)
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            if id(inner) not in parents:
                continue  # inside a nested scope
            cls = _constructed_class(inner)
            if cls is None:
                continue
            kind, name = _binding_target(inner, parents)
            if kind in {"with", "return", "attr", "sink"}:
                continue
            if kind == "name" and name is not None:
                if (
                    name in facts.with_roots
                    or name in facts.finally_released
                    or name in facts.returned_names
                    or name in facts.sink_args
                ):
                    continue
            finding = ctx.finding(
                check_close_discipline,
                inner,
                f"{cls} constructed in {node.name}() but never "
                f"closed — use 'with closing(...)', close it in a "
                f"finally: block, or return it to transfer "
                f"ownership (leaked pools/connections lose "
                f"interrupted-run durability)",
            )
            if finding is not None:
                yield finding
