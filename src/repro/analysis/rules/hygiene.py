"""REP005 registry-hygiene: decorators carry required metadata.

The design/artifact registries are queryable (``repro list
--filter KEY=VALUE``), which only works when every registration
passes the metadata the filters key on: ``@register_design`` needs
``category`` and ``sparsity_side``, ``@artifact`` needs a non-empty
``title`` (the streaming UI prints it).  The rule also tracks
registered names across the whole run and flags duplicates — a
copy-pasted ``name = "TC"`` would otherwise either collide at import
time in production or silently shadow a builtin, depending on scan
mode.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext, attr_chain
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_STATE_KEY = "REP005"
#: decorator name -> keywords every call site must pass.
_REQUIRED_KEYWORDS = {
    "register_design": ("category", "sparsity_side"),
    "artifact": ("title",),
}


def _decorator_call(node: ast.expr) -> Optional[Tuple[str, ast.Call]]:
    if not isinstance(node, ast.Call):
        return None
    chain = attr_chain(node.func)
    if chain and chain[-1] in _REQUIRED_KEYWORDS:
        return chain[-1], node
    return None


def _class_name_constant(cls: ast.ClassDef) -> Optional[ast.Constant]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "name"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    return stmt.value
    return None


def _registered_name(decorator: str, call: ast.Call,
                     node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """The name this registration claims, and its anchor node."""
    if decorator == "artifact":
        if call.args and isinstance(call.args[0], ast.Constant):
            return str(call.args[0].value), call.args[0]
        return None
    if isinstance(node, ast.ClassDef):
        constant = _class_name_constant(node)
        if constant is not None:
            return str(constant.value), constant
    return None


@rule(
    "registry-hygiene",
    id="REP005",
    category="registries",
    severity="error",
    finish=lambda shared: _finish(shared),
)
def check_registry_hygiene(ctx: FileContext) -> Iterator[Finding]:
    """Registry decorators must pass required metadata; registered
    names must be unique across the linted set."""
    names = ctx.shared.setdefault(_STATE_KEY, {})
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef)):
            continue
        for decorator in node.decorator_list:
            resolved = _decorator_call(decorator)
            if resolved is None:
                continue
            kind, call = resolved
            keywords = {kw.arg for kw in call.keywords if kw.arg}
            missing = [
                key
                for key in _REQUIRED_KEYWORDS[kind]
                if key not in keywords
            ]
            if missing:
                finding = ctx.finding(
                    check_registry_hygiene,
                    call,
                    f"@{kind} on {node.name} is missing required "
                    f"metadata: {', '.join(missing)} (repro list "
                    f"--filter and the run UI key on it)",
                )
                if finding is not None:
                    yield finding
            for kw in call.keywords:
                if (
                    kw.arg in _REQUIRED_KEYWORDS[kind]
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in ("", None)
                ):
                    finding = ctx.finding(
                        check_registry_hygiene,
                        kw.value,
                        f"@{kind} on {node.name} passes empty "
                        f"{kw.arg!r}",
                    )
                    if finding is not None:
                        yield finding
            claimed = _registered_name(kind, call, node)
            if claimed is not None:
                name, anchor = claimed
                names.setdefault((kind, name), []).append(
                    _pending_duplicate(ctx, anchor, kind, name)
                )


def _pending_duplicate(
    ctx: FileContext, anchor: ast.AST, kind: str, name: str
) -> Optional[Finding]:
    return ctx.finding(
        check_registry_hygiene,
        anchor,
        f"duplicate {kind} registration for name {name!r} — "
        f"registries raise (or silently shadow, depending on scan "
        f"mode) on colliding names",
    )


def _finish(shared: Dict[str, Any]) -> Iterator[Finding]:
    names: Dict[Tuple[str, str], List[Optional[Finding]]] = shared.get(
        _STATE_KEY, {}
    )
    for registrations in names.values():
        if len(registrations) < 2:
            continue
        # The first registration is the legitimate one; every later
        # claimant is flagged.
        for finding in registrations[1:]:
            if finding is not None:
                yield finding
