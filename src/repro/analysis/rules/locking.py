"""REP001 lock-discipline: manifest fields only under ``self._lock``.

Classes that share state across threads (``SweepEngine``,
``PersistentCache``, ``JobStore``) declare a ``_lock_guarded``
manifest — a class-level frozenset of attribute names — and this rule
enforces the convention the docstrings only promise: every lexical
``self.<field>`` access to a manifest field happens inside a
``with self._lock:`` block.

Exemptions encode the repo's own conventions: ``__init__``/``__del__``
(no concurrent callers exist yet / teardown), methods whose name ends
in ``_locked`` (the documented caller-holds-the-lock suffix), and
nested functions (closures are invoked under whatever lock their
creator holds; lexical analysis cannot see the call site).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import RuleInfo, rule

MANIFEST_ATTR = "_lock_guarded"
LOCK_ATTR = "_lock"
_EXEMPT_METHODS = ("__init__", "__del__")


def _manifest_fields(cls: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """The ``_lock_guarded`` names, or ``None`` when the class does
    not declare a manifest."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == MANIFEST_ATTR
            ):
                return _string_elements(value)
    return None


def _string_elements(node: ast.expr) -> Tuple[str, ...]:
    if isinstance(node, ast.Call) and node.args:
        # frozenset({...}) / tuple([...]) wrappers.
        return _string_elements(node.args[0])
    elements: List[ast.expr] = []
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements = list(node.elts)
    return tuple(
        element.value
        for element in elements
        if isinstance(element, ast.Constant)
        and isinstance(element.value, str)
    )


def _acquires_lock(item: ast.withitem) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == LOCK_ATTR
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


class _LockScan(ast.NodeVisitor):
    """Flags manifest-field access outside the lock, lexically."""

    def __init__(
        self,
        ctx: FileContext,
        info: RuleInfo,
        fields: Tuple[str, ...],
        method: str,
    ) -> None:
        self.ctx = ctx
        self.info = info
        self.fields = frozenset(fields)
        self.method = method
        self.held = False
        self.findings: List[Optional[Finding]] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        for item in node.items:
            # The context expressions themselves evaluate before the
            # lock is held.
            self.visit(item.context_expr)
        acquires = any(_acquires_lock(item) for item in node.items)
        if acquires and not self.held:
            self.held = True
            for stmt in node.body:
                self.visit(stmt)
            self.held = False
        else:
            for stmt in node.body:
                self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: lock state at call time is unknowable

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.held
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.fields
        ):
            self.findings.append(
                self.ctx.finding(
                    self.info,
                    node,
                    f"self.{node.attr} is in {MANIFEST_ATTR} but "
                    f"{self.method}() touches it outside "
                    f"'with self.{LOCK_ATTR}:' (rename the method "
                    f"*_locked if the caller holds the lock)",
                )
            )
        self.generic_visit(node)


@rule(
    "lock-discipline",
    id="REP001",
    category="concurrency",
    severity="error",
)
def check_lock_discipline(ctx: FileContext) -> Iterator[Finding]:
    """Fields named in a class's ``_lock_guarded`` manifest must be
    accessed lexically inside ``with self._lock``."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        fields = _manifest_fields(node)
        if not fields:
            continue
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if stmt.name in _EXEMPT_METHODS or stmt.name.endswith(
                "_locked"
            ):
                continue
            scan = _LockScan(ctx, check_lock_discipline, fields, stmt.name)
            for body_stmt in stmt.body:
                scan.visit(body_stmt)
            for finding in scan.findings:
                if finding is not None:
                    yield finding
