"""REP003 float-determinism: no reductions over unordered iteration.

The golden tests lock batch and scalar evaluation to *bit-identical*
results, which makes IEEE-754 addition order part of the contract:
``sum`` over a ``set`` (or anything whose iteration order is
implementation-defined) can legally produce a different
last-ulp result between runs or Python versions.  In the hot-path
modules (``model/batch.py``, ``model/metrics.py``, ``energy/``) this
rule flags ``sum``/``functools.reduce``/``np.sum``-family reductions
whose operand is a set literal/comprehension, a ``set()``/
``frozenset()`` call, a set-algebra expression over ``dict.keys()``
views, a ``.keys()`` view itself, or a comprehension drawing from any
of those.  Fold over an explicitly ordered sequence (a list, a sorted
view, ``.values()`` in insertion order) instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import FileContext, attr_chain
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: Builtins whose result depends on operand order for floats.
_ORDER_SENSITIVE_BUILTINS = {"sum"}
#: numpy reductions routed through the same check.
_NUMPY_REDUCTIONS = {"sum", "nansum", "prod", "nanprod", "cumsum"}
_NUMPY_MODULES = {"np", "numpy"}


def _is_unordered(node: ast.expr) -> bool:
    """Whether iterating ``node`` has implementation-defined order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain and chain[-1] in {"set", "frozenset"}:
            return True
        # d.keys() views: insertion-ordered in CPython, but the rule
        # treats key views as "pin the order explicitly" territory —
        # they are one set-operation away from losing it.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra (| & ^ -) over keys()/sets yields sets.
        return _is_unordered(node.left) or _is_unordered(node.right)
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return any(
            _is_unordered(generator.iter)
            for generator in node.generators
        )
    return False


def _reduction_operand(node: ast.Call) -> Optional[ast.expr]:
    """The iterable a reduction call folds over, if this is one."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _ORDER_SENSITIVE_BUILTINS and node.args:
            return node.args[0]
        if func.id == "reduce" and len(node.args) >= 2:
            return node.args[1]
        return None
    chain = attr_chain(func)
    if len(chain) == 2:
        module, name = chain
        if module in _NUMPY_MODULES and name in _NUMPY_REDUCTIONS:
            return node.args[0] if node.args else None
        if module == "functools" and name == "reduce":
            return node.args[1] if len(node.args) >= 2 else None
        if module == "math" and name == "fsum":
            # fsum is exactly rounded — order-independent by
            # construction, so it is the sanctioned escape hatch.
            return None
    return None


@rule(
    "float-determinism",
    id="REP003",
    category="bit-exactness",
    severity="error",
    paths=("*model/batch.py", "*model/metrics.py", "*energy/*.py"),
)
def check_float_determinism(ctx: FileContext) -> Iterator[Finding]:
    """Hot-path reductions must fold in a pinned, reproducible
    order — never over set/keys-view iteration."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        operand = _reduction_operand(node)
        if operand is None or not _is_unordered(operand):
            continue
        finding = ctx.finding(
            check_float_determinism,
            node,
            "reduction folds over unordered iteration — IEEE-754 "
            "addition is not associative, so bit-identity (the "
            "golden-test contract) needs an explicitly ordered "
            "operand (sorted(...), a list, or math.fsum)",
        )
        if finding is not None:
            yield finding
