"""Builtin rules; importing this package registers them.

Each module holds one rule (plus its helpers) and registers it into
:data:`repro.analysis.registry.RULES` via the ``@rule`` decorator at
import time — the same self-registration idiom as the design and
artifact registries.
"""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    durability,
    hygiene,
    locking,
    sql,
    taxonomy,
)
