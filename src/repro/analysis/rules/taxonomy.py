"""REP006 error-taxonomy: no bare ``assert`` for runtime validation.

``python -O`` strips ``assert`` statements, so an assert guarding a
runtime invariant silently stops guarding in optimized runs — the
hazard PR 4 fixed ad hoc and this rule now enforces.  Library code
raises the typed hierarchy in ``repro.errors`` instead, which also
keeps failures catchable as :class:`~repro.errors.ReproError`.  Test
code (pytest rewrites asserts; they are the assertion API there) is
simply not part of the linted path set — ``repro lint src/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import rule


@rule(
    "error-taxonomy",
    id="REP006",
    category="errors",
    severity="error",
    fixable=True,
)
def check_error_taxonomy(ctx: FileContext) -> Iterator[Finding]:
    """Runtime validation raises ``repro.errors`` exceptions, never
    bare ``assert`` (stripped under ``python -O``)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assert):
            continue
        finding = ctx.finding(
            check_error_taxonomy,
            node,
            "bare assert is stripped under python -O — raise the "
            "matching repro.errors exception (EvaluationError, "
            "CacheError, ...) for runtime validation",
        )
        if finding is not None:
            yield finding
