"""Finding and result dataclasses for the lint layer.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintResult` is everything one ``lint_paths`` run produced,
ready for the reporting layer (text) or ``to_payload`` (JSON).
Findings carry a content-derived :meth:`Finding.key` — rule id, path,
and a hash of the offending source line — so baseline entries survive
unrelated edits that only shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Severities a rule (or an individual finding) may carry, most
#: severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = "error"
    #: The stripped source line the finding anchors to; feeds the
    #: content-derived baseline key.
    snippet: str = ""

    def key(self) -> str:
        """Content-derived identity for baseline matching.

        Line numbers drift when unrelated code is added above a
        finding; the key hashes the offending line's text instead, so
        a committed baseline entry keeps matching until the flagged
        code itself changes.
        """
        digest = hashlib.sha1(self.snippet.encode("utf-8")).hexdigest()
        return f"{self.rule}::{self.path}::{digest[:12]}"

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "message": self.message,
            "key": self.key(),
        }


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``findings`` is the post-baseline list (what should fail CI);
    ``baselined`` counts pre-existing findings the baseline file
    suppressed.
    """

    findings: Tuple[Finding, ...] = ()
    baselined: int = 0
    files: int = 0
    rules: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_payload(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "schema_version": 1,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [f.to_payload() for f in self.findings],
            "counts": counts,
            "baselined": self.baselined,
        }


def sort_findings(findings: List[Finding]) -> Tuple[Finding, ...]:
    """Stable presentation order: path, then line, then rule id."""
    return tuple(
        sorted(
            findings,
            key=lambda f: (f.path, f.line, f.column, f.rule),
        )
    )
