"""The analyzer driver: file discovery, rule selection, the run loop.

``lint_paths`` is the programmatic face of ``repro lint``: discover
files, parse each once, run every selected rule over it (path-scoped
rules only see matching files), run whole-run ``finish`` hooks, then
sort and baseline-filter the findings into a
:class:`~repro.analysis.findings.LintResult`.
"""

from __future__ import annotations

from collections import Counter
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.context import FileContext
from repro.analysis.baseline import apply_baseline
from repro.analysis.findings import Finding, LintResult, sort_findings
from repro.analysis.registry import RULES, RuleInfo, RuleRegistry
from repro.errors import LintUsageError

#: Reserved id for "the file did not parse" findings — not a
#: registered rule (it cannot be excluded: unparseable code can't be
#: checked for anything else either).
SYNTAX_RULE_ID = "REP000"

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


def iter_python_files(
    paths: Sequence["str | Path"],
) -> List[Tuple[Path, str]]:
    """(absolute path, display path) for every Python file under
    ``paths``, sorted by display path.  Directories are walked
    recursively; explicit file arguments are taken as-is."""
    found: Dict[str, Path] = {}
    for raw in paths:
        base = Path(raw)
        if base.is_file():
            found[_display(base)] = base.resolve()
        elif base.is_dir():
            for path in base.rglob("*.py"):
                if any(part in _SKIP_DIRS for part in path.parts):
                    continue
                found[_display(path)] = path.resolve()
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(
        ((found[display], display) for display in found),
        key=lambda pair: pair[1],
    )


def _display(path: Path) -> str:
    return path.as_posix()


def select_rules(
    registry: RuleRegistry,
    include: Optional[Iterable[str]] = None,
    exclude: Optional[Iterable[str]] = None,
) -> List[RuleInfo]:
    """The rules a run should execute, in id order.

    ``include``/``exclude`` accept rule ids or names; unknown entries
    raise :class:`~repro.errors.LintUsageError` (exit code 2 at the
    CLI) rather than silently linting with fewer rules than asked.
    """
    if include is not None:
        chosen = {registry.resolve(key).id for key in include}
    else:
        chosen = {info.id for info in registry.infos()}
    if exclude is not None:
        chosen -= {registry.resolve(key).id for key in exclude}
    selected = [
        info for info in registry.infos() if info.id in chosen
    ]
    if not selected:
        raise LintUsageError(
            "rule selection excluded every registered rule"
        )
    return selected


def _rule_applies(info: RuleInfo, display: str) -> bool:
    if not info.paths:
        return True
    return any(fnmatch(display, pattern) for pattern in info.paths)


def lint_paths(
    paths: Sequence["str | Path"],
    rules: Optional[Iterable[str]] = None,
    exclude: Optional[Iterable[str]] = None,
    registry: Optional[RuleRegistry] = None,
    baseline: Optional["Counter[str]"] = None,
) -> LintResult:
    """Run the selected rules over ``paths`` and collect findings."""
    target = RULES if registry is None else registry
    selected = select_rules(target, rules, exclude)
    files = iter_python_files(paths)
    shared: Dict[str, Any] = {}
    findings: List[Finding] = []
    for path, display in files:
        try:
            ctx = FileContext.parse(path, display, shared)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    column=getattr(exc, "offset", None) or 1,
                    message=f"file does not parse: {exc}",
                    severity="error",
                )
            )
            continue
        for info in selected:
            if not _rule_applies(info, display):
                continue
            for finding in info.check(ctx):
                if finding is None:
                    continue
                if ctx.suppressed(finding.line, finding.rule):
                    continue
                findings.append(finding)
    for info in selected:
        if info.finish is not None:
            findings.extend(
                finding
                for finding in info.finish(shared)
                if finding is not None
            )
    ordered = sort_findings(findings)
    baselined = 0
    if baseline:
        kept, baselined = apply_baseline(ordered, baseline)
        ordered = tuple(kept)
    return LintResult(
        findings=ordered,
        baselined=baselined,
        files=len(files),
        rules=tuple(info.id for info in selected),
    )
