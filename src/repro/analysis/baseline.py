"""Baseline files: let pre-existing findings ride without blocking CI.

A baseline is a JSON file of finding *keys* (content-derived — see
:meth:`~repro.analysis.findings.Finding.key`), written with
``repro lint --baseline FILE --write-baseline`` and consumed on every
subsequent run: each key suppresses as many matching findings as it
has entries, so a *new* violation on an already-baselined line still
fails.  The committed repo baseline ships near-empty — every genuine
finding the rules surfaced was fixed instead of baselined.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding
from repro.errors import LintUsageError

BASELINE_SCHEMA_VERSION = 1


def load_baseline(path: "str | Path") -> "Counter[str]":
    """The key multiset a baseline file allows."""
    path = Path(path)
    if not path.is_file():
        raise LintUsageError(f"baseline file {path} does not exist")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        keys = payload["findings"]
        if not isinstance(keys, list) or not all(
            isinstance(key, str) for key in keys
        ):
            raise ValueError("'findings' must be a list of keys")
    except (ValueError, KeyError, TypeError) as exc:
        raise LintUsageError(
            f"baseline file {path} is not a lint baseline: {exc}"
        )
    return Counter(keys)


def write_baseline(
    path: "str | Path", findings: Iterable[Finding]
) -> int:
    """Write ``findings`` as the new baseline; returns how many."""
    keys = sorted(finding.key() for finding in findings)
    Path(path).write_text(
        json.dumps(
            {
                "schema_version": BASELINE_SCHEMA_VERSION,
                "findings": keys,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return len(keys)


def apply_baseline(
    findings: Iterable[Finding], allowed: "Counter[str]"
) -> Tuple[List[Finding], int]:
    """Split findings into (kept, suppressed-count) under a baseline.

    Each baseline key absorbs at most its multiplicity: two baselined
    occurrences of one offending line suppress two findings with that
    key, and a third — new — occurrence is kept.
    """
    budget = Counter(allowed)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
