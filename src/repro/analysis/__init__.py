"""Repo-specific static analysis: ``repro lint``.

The reproduction's correctness rests on conventions no unit test can
enforce directly — every :class:`~repro.eval.engine.SweepEngine`
shared field is only touched under ``self._lock``, every
``BEGIN IMMEDIATE`` reaches ``COMMIT`` or ``ROLLBACK`` on all paths,
hot-path float folds keep a pinned order so the golden tests stay
bit-identical, and every constructed engine is closed so interrupted
grids keep their work.  This package turns those conventions into
machine-checked invariants: a multi-pass AST analyzer whose rules are
registered with the :func:`rule` decorator (the same decorator-driven
registry idiom as ``DesignRegistry`` and ``@artifact``), run over a
file set by :func:`lint_paths`, and surfaced through the ``repro
lint`` CLI with text/JSON rendering, a committed baseline, and
``--plugins DIR`` discovery with raise/skip/replace collision modes.
"""

from repro.analysis.findings import Finding, LintResult
from repro.analysis.registry import RULES, RuleInfo, RuleRegistry, rule
from repro.analysis.context import FileContext
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.plugins import load_plugins
from repro.analysis.runner import (
    SYNTAX_RULE_ID,
    iter_python_files,
    lint_paths,
    select_rules,
)

# Importing the subpackage registers every builtin rule into RULES.
from repro.analysis import rules as _builtin_rules  # noqa: F401

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "RuleInfo",
    "RuleRegistry",
    "rule",
    "FileContext",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "load_plugins",
    "SYNTAX_RULE_ID",
    "iter_python_files",
    "lint_paths",
    "select_rules",
]
