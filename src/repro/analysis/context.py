"""Per-file analysis context: source, AST, suppressions, helpers.

One :class:`FileContext` is parsed per linted file and handed to
every selected rule, so the file is read and parsed exactly once per
run.  It also owns the inline-suppression protocol: a line ending in
``# repro-lint: ignore[REP001]`` (comma-separate several ids, or use
``*`` for all) silences findings anchored to that line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import RuleInfo

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_*,\s-]+)\]"
)


def _suppressions(lines: Tuple[str, ...]) -> Dict[int, FrozenSet[str]]:
    table: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            table[number] = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
    return table


@dataclass
class FileContext:
    """One parsed file plus the run-shared scratch state."""

    path: Path
    #: The path as reported in findings: what the caller passed,
    #: POSIX-normalized (stable across platforms, baseline-friendly).
    display: str
    source: str
    lines: Tuple[str, ...]
    tree: ast.Module
    #: Per-run dict shared across files; rules needing a whole-run
    #: view (duplicate registry names) stash state under their id and
    #: read it back in their ``finish`` hook.
    shared: Dict[str, Any] = field(default_factory=dict)
    _suppressed: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def parse(
        cls,
        path: Path,
        display: str,
        shared: Optional[Dict[str, Any]] = None,
    ) -> "FileContext":
        """Read and parse ``path``; raises ``SyntaxError`` (and lets
        ``OSError`` escape) for the runner to convert."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
        lines = tuple(source.splitlines())
        return cls(
            path=path,
            display=display,
            source=source,
            lines=lines,
            tree=tree,
            shared={} if shared is None else shared,
            _suppressed=_suppressions(lines),
        )

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, line: int, rule_id: str) -> bool:
        ids = self._suppressed.get(line)
        return ids is not None and (rule_id in ids or "*" in ids)

    def finding(
        self,
        info: RuleInfo,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Optional[Finding]:
        """A finding anchored to ``node``, or ``None`` when an inline
        suppression comment covers it."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        if self.suppressed(line, info.id):
            return None
        return Finding(
            rule=info.id,
            path=self.display,
            line=line,
            column=column,
            message=message,
            severity=info.severity if severity is None else severity,
            snippet=self.snippet(line),
        )


# --- small AST helpers shared by the builtin rules ---------------------


def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """The dotted-name parts of a ``Name``/``Attribute`` chain
    (``cache_mod.PersistentCache.for_estimator`` ->
    ``("cache_mod", "PersistentCache", "for_estimator")``), or ``()``
    when the expression is not a plain dotted name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/method definition in ``tree`` (including nested
    ones — each is yielded once and analyzed as its own scope)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """The statements lexically belonging to ``func``'s own scope:
    a pre-order walk of its body that does not descend into nested
    function or class definitions (those are separate scopes)."""

    def walk_block(body: Any) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            for name in (
                "body", "orelse", "finalbody", "handlers", "cases"
            ):
                children = getattr(stmt, name, None)
                if not children:
                    continue
                if name == "handlers":
                    for handler in children:
                        yield from walk_block(handler.body)
                elif name == "cases":
                    for case in children:
                        yield from walk_block(case.body)
                else:
                    yield from walk_block(children)

    yield from walk_block(getattr(func, "body", []))
