"""Plugin rule discovery: ``repro lint --plugins DIR``.

Every ``*.py`` file in the directory is imported (sorted, so load
order is deterministic); modules call the same
:func:`~repro.analysis.registry.rule` decorator builtin rules use and
self-register into the registry passed here.  Collisions with
existing rule ids resolve per the scan mode — ``raise`` (default),
``skip`` (keep the incumbent), or ``replace`` (plugin wins) — the
importlib-registry contract from the related-work exemplars, and the
groundwork for ROADMAP item 4's ``repro --plugins`` model/artifact
discovery.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.registry import (
    RULES,
    RuleRegistry,
    target_registry,
)
from repro.errors import LintError, LintUsageError


def load_plugins(
    directory: "str | Path",
    registry: Optional[RuleRegistry] = None,
    on_collision: str = "raise",
) -> List[str]:
    """Import every plugin module in ``directory``; returns the
    module names loaded, in load order."""
    directory = Path(directory)
    if not directory.is_dir():
        raise LintUsageError(
            f"plugin directory {directory} does not exist"
        )
    target = RULES if registry is None else registry
    loaded: List[str] = []
    with target.scanning(on_collision), target_registry(target):
        for path in sorted(directory.glob("*.py")):
            if path.name.startswith("_"):
                continue
            name = f"repro_lint_plugin_{path.stem}"
            spec = importlib.util.spec_from_file_location(name, path)
            if spec is None or spec.loader is None:
                raise LintError(f"cannot import plugin {path}")
            module = importlib.util.module_from_spec(spec)
            # Registered under the prefixed name so plugin modules can
            # import each other without colliding with real packages.
            sys.modules[name] = module
            try:
                spec.loader.exec_module(module)
            except LintError:
                raise
            except Exception as exc:
                raise LintError(
                    f"plugin {path} failed to import: {exc}"
                ) from exc
            loaded.append(name)
    return loaded
