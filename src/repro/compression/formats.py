"""Baseline single-rank compression formats with metadata accounting.

These are the per-rank representation formats of the Sparseloop taxonomy
the paper builds on [54]: uncompressed (U), bitmask (B), run-length (R)
and offset-based coordinate payload (CP). Each encoder returns an
encoding object carrying the packed nonzero values, the metadata, and an
exact metadata bit count, so design-level storage and traffic can be
computed precisely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CompressionError


def _as_vector(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise CompressionError(
            f"formats operate on 1-D vectors, got {array.ndim} dims"
        )
    return array


def offset_bits(block_size: int) -> int:
    """Bits needed to name a position inside a block of ``block_size``."""
    if block_size <= 0:
        raise CompressionError(f"bad block size {block_size}")
    return max(1, math.ceil(math.log2(block_size)))


@dataclass(frozen=True)
class UncompressedEncoding:
    """The identity format: all value slots stored, no metadata."""

    values: np.ndarray

    @property
    def metadata_bits(self) -> int:
        return 0

    @property
    def num_stored_values(self) -> int:
        return int(self.values.size)

    def decode(self) -> np.ndarray:
        return self.values.copy()


def encode_uncompressed(values: np.ndarray) -> UncompressedEncoding:
    """Store the vector as-is (what a dense accelerator like TC does)."""
    return UncompressedEncoding(_as_vector(values))


@dataclass(frozen=True)
class BitmaskEncoding:
    """Packed nonzeros plus a one-bit-per-slot presence mask."""

    payload: np.ndarray
    mask: np.ndarray

    @property
    def metadata_bits(self) -> int:
        return int(self.mask.size)

    @property
    def num_stored_values(self) -> int:
        return int(self.payload.size)

    def decode(self) -> np.ndarray:
        out = np.zeros(self.mask.size, dtype=float)
        out[np.flatnonzero(self.mask)] = self.payload
        return out


def encode_bitmask(values: np.ndarray) -> BitmaskEncoding:
    """Bitmask compression (the per-level format SMASH-style designs use)."""
    vector = _as_vector(values)
    mask = vector != 0
    return BitmaskEncoding(payload=vector[mask], mask=mask)


@dataclass(frozen=True)
class RunLengthEncoding:
    """Packed nonzeros plus the zero-run length preceding each one."""

    payload: np.ndarray
    run_lengths: Tuple[int, ...]
    length: int
    run_bits: int

    @property
    def metadata_bits(self) -> int:
        return self.run_bits * len(self.run_lengths)

    @property
    def num_stored_values(self) -> int:
        return int(self.payload.size)

    def decode(self) -> np.ndarray:
        out = np.zeros(self.length, dtype=float)
        position = 0
        for run, value in zip(self.run_lengths, self.payload):
            position += run
            out[position] = value
            position += 1
        return out


def encode_run_length(
    values: np.ndarray, run_bits: int = 4
) -> RunLengthEncoding:
    """Run-length compression with fixed-width run fields.

    Runs longer than the field allows are encoded by inserting explicit
    zero payloads (the classic escape used by Eyeriss-style RLE); for
    metadata accounting we simply count those extra entries.
    """
    vector = _as_vector(values)
    max_run = (1 << run_bits) - 1
    payload = []
    runs = []
    current_run = 0
    for value in vector:
        if value == 0:
            current_run += 1
            if current_run > max_run:
                payload.append(0.0)
                runs.append(max_run)
                current_run = 0
            continue
        payload.append(float(value))
        runs.append(current_run)
        current_run = 0
    return RunLengthEncoding(
        payload=np.array(payload, dtype=float),
        run_lengths=tuple(runs),
        length=vector.size,
        run_bits=run_bits,
    )


@dataclass(frozen=True)
class CPEncoding:
    """Offset-based coordinate payload: per-nonzero offset in its block.

    This is the format of paper Fig. 9 at a single rank: each nonzero
    carries a CP naming its position within its block of ``block_size``.
    """

    payload: np.ndarray
    offsets: Tuple[int, ...]
    block_size: int
    num_blocks: int

    @property
    def metadata_bits(self) -> int:
        return offset_bits(self.block_size) * len(self.offsets)

    @property
    def num_stored_values(self) -> int:
        return int(self.payload.size)

    def decode(self, block_occupancies: Tuple[int, ...]) -> np.ndarray:
        """Rebuild the dense vector given per-block nonzero counts."""
        if sum(block_occupancies) != len(self.offsets):
            raise CompressionError(
                "block occupancies do not match the number of offsets"
            )
        out = np.zeros(self.num_blocks * self.block_size, dtype=float)
        cursor = 0
        for block, occupancy in enumerate(block_occupancies):
            for _ in range(occupancy):
                offset = self.offsets[cursor]
                out[block * self.block_size + offset] = self.payload[cursor]
                cursor += 1
        return out


def encode_cp(values: np.ndarray, block_size: int) -> CPEncoding:
    """Offset-based CP encoding over fixed-size blocks.

    The vector length must be a multiple of ``block_size`` (pad upstream
    if needed, as the GLB layout does).
    """
    vector = _as_vector(values)
    if block_size <= 0:
        raise CompressionError(f"bad block size {block_size}")
    if vector.size % block_size:
        raise CompressionError(
            f"length {vector.size} is not a multiple of block {block_size}"
        )
    payload = []
    offsets = []
    num_blocks = vector.size // block_size
    for block in range(num_blocks):
        chunk = vector[block * block_size : (block + 1) * block_size]
        for offset in np.flatnonzero(chunk):
            payload.append(float(chunk[offset]))
            offsets.append(int(offset))
    return CPEncoding(
        payload=np.array(payload, dtype=float),
        offsets=tuple(offsets),
        block_size=block_size,
        num_blocks=num_blocks,
    )
