"""Compressed unstructured operand B with three-level metadata (Fig. 12).

When operand B is unstructured sparse, HighLight stores only the nonzero
values in the GLB, plus metadata that hierarchically encodes the nonzero
locations (paper Sec. 6.4):

1. the total number of nonzeros for every *set* of Rank1 blocks (H1
   blocks per set, matching operand A's C1 grouping) — this drives the
   VFMU's variable shift amount;
2. the end address (cumulative nonzero count) of each Rank1 block;
3. the intra-Rank0-block offset of each nonzero value.

Internally the encoder also keeps each nonzero's position within its
Rank1 block so that decoding is lossless; the hardware recovers the same
information by counting valid entries while streaming, so the metadata
*bit* accounting still follows the paper's three levels exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.formats import offset_bits
from repro.utils import ceil_div


@dataclass(frozen=True)
class CompressedOperandB:
    """A compressed operand-B stream (one GLB-resident row/column)."""

    values: np.ndarray
    #: Level 1: nonzeros per set of ``set_size`` Rank1 blocks.
    set_counts: Tuple[int, ...]
    #: Level 2: per-Rank1-block end address (cumulative nonzero count).
    block_end_addresses: Tuple[int, ...]
    #: Per-nonzero position within its Rank1 block (drives decode; the
    #: paper's level-3 offsets are these positions modulo the Rank0
    #: block size).
    intra_positions: Tuple[int, ...]
    rank0_block: int
    rank1_block: int
    set_size: int
    length: int

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Level 3: intra-Rank0-block offset of each nonzero."""
        return tuple(p % self.rank0_block for p in self.intra_positions)

    @property
    def num_stored_values(self) -> int:
        return int(self.values.size)

    @property
    def compression_ratio(self) -> float:
        """Dense slots per stored value (>= 1; 1 means incompressible)."""
        if self.num_stored_values == 0:
            return float("inf")
        return self.length / self.num_stored_values

    @property
    def metadata_bits(self) -> int:
        """Exact metadata footprint in bits.

        Set counts and end addresses are address-sized fields (wide
        enough to index the padded stream); offsets are Rank0-local.
        """
        address_bits = max(1, int(np.ceil(np.log2(max(2, self.length + 1)))))
        bits = address_bits * len(self.set_counts)
        bits += address_bits * len(self.block_end_addresses)
        bits += offset_bits(self.rank0_block) * len(self.intra_positions)
        return bits


def encode_operand_b(
    vector: np.ndarray,
    rank0_block: int,
    rank1_block: int,
    set_size: int,
) -> CompressedOperandB:
    """Compress an unstructured-sparse operand-B stream.

    ``rank0_block`` is H0 in values; ``rank1_block`` is the number of
    Rank0 blocks per Rank1 block; ``set_size`` is the number of Rank1
    blocks per metadata set (operand A's H1: 3 in the paper's C1(2:3)
    walkthrough).
    """
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise CompressionError("encode_operand_b expects a 1-D stream")
    for name, value in (
        ("rank0_block", rank0_block),
        ("rank1_block", rank1_block),
        ("set_size", set_size),
    ):
        if value <= 0:
            raise CompressionError(f"{name} must be positive, got {value}")
    values_per_rank1 = rank0_block * rank1_block
    span = values_per_rank1 * set_size
    padded = ceil_div(max(array.size, 1), span) * span
    work = np.zeros(padded, dtype=float)
    work[: array.size] = array

    values = []
    positions = []
    block_ends = []
    set_counts = []
    running = 0
    set_start_total = 0
    num_rank1 = padded // values_per_rank1
    for rank1_index in range(num_rank1):
        start = rank1_index * values_per_rank1
        chunk = work[start : start + values_per_rank1]
        for position in np.flatnonzero(chunk):
            values.append(float(chunk[position]))
            positions.append(int(position))
            running += 1
        block_ends.append(running)
        if (rank1_index + 1) % set_size == 0:
            set_counts.append(running - set_start_total)
            set_start_total = running
    return CompressedOperandB(
        values=np.array(values, dtype=float),
        set_counts=tuple(set_counts),
        block_end_addresses=tuple(block_ends),
        intra_positions=tuple(positions),
        rank0_block=rank0_block,
        rank1_block=rank1_block,
        set_size=set_size,
        length=int(array.size),
    )


def decode_operand_b(encoded: CompressedOperandB) -> np.ndarray:
    """Rebuild the dense operand-B stream from its compressed form."""
    values_per_rank1 = encoded.rank0_block * encoded.rank1_block
    padded = len(encoded.block_end_addresses) * values_per_rank1
    out = np.zeros(padded, dtype=float)
    cursor = 0
    for rank1_index, end in enumerate(encoded.block_end_addresses):
        start_count = (
            encoded.block_end_addresses[rank1_index - 1] if rank1_index else 0
        )
        base = rank1_index * values_per_rank1
        for _ in range(end - start_count):
            out[base + encoded.intra_positions[cursor]] = encoded.values[
                cursor
            ]
            cursor += 1
    return out[: encoded.length]
