"""Hierarchical CP compression for HSS operand A (paper Fig. 9).

A row of an HSS operand A with pattern ``C1(G1:H1)->C0(G0:H0)`` is stored
as:

* the packed nonzero values, in block order;
* **Rank0 metadata**: one offset per nonzero naming its position inside
  its block of H0 values (``ceil(log2 H0)`` bits each);
* **Rank1 metadata**: one offset per *non-empty* Rank0 block naming its
  position among the H1 blocks of its Rank1 group (``ceil(log2 H1)``
  bits each).

Because the pattern is structured, per-block occupancies are bounded by
G0/G1, which is exactly what lets the hardware fetch and distribute
blocks with trivial alignment logic — the low sparsity tax the paper
argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.formats import offset_bits
from repro.sparsity.hss import HSSPattern
from repro.utils import ceil_div


@dataclass(frozen=True)
class HierarchicalCPRow:
    """One operand-A row in hierarchical CP form."""

    values: np.ndarray
    #: Per-nonzero offset within its H0-value block (Rank0 CP metadata).
    rank0_offsets: Tuple[int, ...]
    #: Per non-empty block: (group index, offset within the H1 group).
    rank1_offsets: Tuple[Tuple[int, int], ...]
    #: Number of nonzeros in each non-empty block (prefix for unpacking).
    block_occupancies: Tuple[int, ...]
    pattern: HSSPattern
    length: int

    @property
    def metadata_bits(self) -> int:
        """Exact metadata footprint in bits."""
        bits = offset_bits(self.pattern.rank(0).h) * len(self.rank0_offsets)
        if self.pattern.num_ranks > 1:
            bits += offset_bits(self.pattern.rank(1).h) * len(
                self.rank1_offsets
            )
        return bits

    @property
    def num_stored_values(self) -> int:
        return int(self.values.size)


def encode_hierarchical_cp(
    row: np.ndarray, pattern: HSSPattern
) -> HierarchicalCPRow:
    """Encode a 1-D HSS row into hierarchical CP form.

    Supports one- and two-rank patterns (the hardware design points the
    paper evaluates). The row is zero-padded to a span multiple.
    """
    vector = np.asarray(row, dtype=float)
    if vector.ndim != 1:
        raise CompressionError("encode_hierarchical_cp expects a 1-D row")
    if pattern.num_ranks > 2:
        raise CompressionError(
            "hierarchical CP is implemented for up to two ranks "
            f"(got {pattern.num_ranks})"
        )
    h0 = pattern.rank(0).h
    h1 = pattern.rank(1).h if pattern.num_ranks > 1 else 1
    span = h0 * h1
    padded = ceil_div(vector.size, span) * span
    work = np.zeros(padded, dtype=float)
    work[: vector.size] = vector

    values = []
    rank0_offsets = []
    rank1_offsets = []
    occupancies = []
    num_blocks = padded // h0
    for block in range(num_blocks):
        chunk = work[block * h0 : (block + 1) * h0]
        nonzero = np.flatnonzero(chunk)
        if nonzero.size == 0:
            continue
        if nonzero.size > pattern.rank(0).g:
            raise CompressionError(
                f"block {block} has {nonzero.size} nonzeros, exceeding "
                f"G0={pattern.rank(0).g}"
            )
        group, position = divmod(block, h1)
        rank1_offsets.append((group, position))
        occupancies.append(int(nonzero.size))
        for offset in nonzero:
            values.append(float(chunk[offset]))
            rank0_offsets.append(int(offset))
    if pattern.num_ranks > 1:
        g1 = pattern.rank(1).g
        per_group = {}
        for group, _ in rank1_offsets:
            per_group[group] = per_group.get(group, 0) + 1
        for group, count in per_group.items():
            if count > g1:
                raise CompressionError(
                    f"rank-1 group {group} has {count} non-empty blocks, "
                    f"exceeding G1={g1}"
                )
    return HierarchicalCPRow(
        values=np.array(values, dtype=float),
        rank0_offsets=tuple(rank0_offsets),
        rank1_offsets=tuple(rank1_offsets),
        block_occupancies=tuple(occupancies),
        pattern=pattern,
        length=int(vector.size),
    )


def decode_hierarchical_cp(encoded: HierarchicalCPRow) -> np.ndarray:
    """Rebuild the dense row from its hierarchical CP encoding."""
    h0 = encoded.pattern.rank(0).h
    h1 = encoded.pattern.rank(1).h if encoded.pattern.num_ranks > 1 else 1
    span = h0 * h1
    padded = ceil_div(encoded.length, span) * span if encoded.length else span
    out = np.zeros(padded, dtype=float)
    cursor = 0
    for (group, position), occupancy in zip(
        encoded.rank1_offsets, encoded.block_occupancies
    ):
        block = group * h1 + position
        for _ in range(occupancy):
            offset = encoded.rank0_offsets[cursor]
            out[block * h0 + offset] = encoded.values[cursor]
            cursor += 1
    return out[: encoded.length]
