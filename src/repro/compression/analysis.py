"""Storage analysis across compression formats.

Computes the exact stored footprint (payload + metadata bits) of each
format on the same tensor so the trade-offs behind HighLight's format
choices are measurable: hierarchical CP's structured metadata beats a
flat bitmask at HSS-typical degrees, while the formats converge (and
compression stops paying) near dense — the storage-side face of the
paper's low-sparsity-tax argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compression.formats import (
    encode_bitmask,
    encode_cp,
    encode_run_length,
    encode_uncompressed,
)
from repro.compression.hierarchical import encode_hierarchical_cp
from repro.errors import CompressionError
from repro.sparsity.hss import HSSPattern

WORD_BITS = 16


@dataclass(frozen=True)
class StorageFootprint:
    """Stored bits of one format on one tensor."""

    format_name: str
    payload_bits: int
    metadata_bits: int

    @property
    def total_bits(self) -> int:
        return self.payload_bits + self.metadata_bits

    def ratio_vs_dense(self, dense_slots: int) -> float:
        """Stored bits over the uncompressed footprint (<1 is a win)."""
        if dense_slots <= 0:
            raise CompressionError("dense_slots must be positive")
        return self.total_bits / (dense_slots * WORD_BITS)


def storage_footprints(
    row: np.ndarray,
    pattern: Optional[HSSPattern] = None,
    cp_block: int = 4,
) -> Dict[str, StorageFootprint]:
    """Footprint of every applicable format on a 1-D row.

    ``pattern`` enables the hierarchical CP entry (the row must
    conform). The CP baseline uses ``cp_block``-value blocks.
    """
    row = np.asarray(row, dtype=float).reshape(-1)
    out: Dict[str, StorageFootprint] = {}

    uncompressed = encode_uncompressed(row)
    out["uncompressed"] = StorageFootprint(
        "uncompressed",
        uncompressed.num_stored_values * WORD_BITS,
        uncompressed.metadata_bits,
    )
    bitmask = encode_bitmask(row)
    out["bitmask"] = StorageFootprint(
        "bitmask",
        bitmask.num_stored_values * WORD_BITS,
        bitmask.metadata_bits,
    )
    rle = encode_run_length(row)
    out["run_length"] = StorageFootprint(
        "run_length",
        rle.num_stored_values * WORD_BITS,
        rle.metadata_bits,
    )
    if row.size % cp_block == 0:
        cp = encode_cp(row, cp_block)
        out["cp"] = StorageFootprint(
            "cp", cp.num_stored_values * WORD_BITS, cp.metadata_bits
        )
    if pattern is not None:
        hier = encode_hierarchical_cp(row, pattern)
        out["hierarchical_cp"] = StorageFootprint(
            "hierarchical_cp",
            hier.num_stored_values * WORD_BITS,
            hier.metadata_bits,
        )
    return out


def format_comparison_table(
    row: np.ndarray, pattern: Optional[HSSPattern] = None
) -> str:
    """Human-readable footprint comparison for one row."""
    footprints = storage_footprints(row, pattern)
    dense_slots = int(np.asarray(row).size)
    lines = [
        f"{'format':16s} {'payload':>8s} {'metadata':>9s} "
        f"{'total':>7s} {'vs dense':>9s}"
    ]
    for name, footprint in sorted(
        footprints.items(), key=lambda item: item[1].total_bits
    ):
        lines.append(
            f"{name:16s} {footprint.payload_bits:8d} "
            f"{footprint.metadata_bits:9d} {footprint.total_bits:7d} "
            f"{footprint.ratio_vs_dense(dense_slots):9.2f}"
        )
    return "\n".join(lines)
