"""Compression formats and metadata accounting.

* :mod:`repro.compression.formats` — baseline single-rank formats
  (uncompressed, bitmask, run-length, offset-based coordinate payload
  "CP") with exact metadata-bit accounting.
* :mod:`repro.compression.hierarchical` — the hierarchical CP format
  HighLight uses for HSS operand A (paper Fig. 9).
* :mod:`repro.compression.operand_b` — the three-level metadata format
  for compressed unstructured operand B (paper Fig. 12), consumed by the
  VFMU model/simulator.
"""

from repro.compression.formats import (
    BitmaskEncoding,
    CPEncoding,
    RunLengthEncoding,
    UncompressedEncoding,
    encode_bitmask,
    encode_cp,
    encode_run_length,
    encode_uncompressed,
)
from repro.compression.hierarchical import (
    HierarchicalCPRow,
    decode_hierarchical_cp,
    encode_hierarchical_cp,
)
from repro.compression.operand_b import (
    CompressedOperandB,
    decode_operand_b,
    encode_operand_b,
)

__all__ = [
    "BitmaskEncoding",
    "CPEncoding",
    "RunLengthEncoding",
    "UncompressedEncoding",
    "encode_bitmask",
    "encode_cp",
    "encode_run_length",
    "encode_uncompressed",
    "HierarchicalCPRow",
    "decode_hierarchical_cp",
    "encode_hierarchical_cp",
    "CompressedOperandB",
    "decode_operand_b",
    "encode_operand_b",
]
