"""Sparse acceleration features (SAFs) as first-class objects.

Sparseloop [54] describes an accelerator's sparsity support as a set of
SAFs: per architecture level, either *gating* (hold the unit idle —
saves energy, trivial tax) or *skipping* (fast-forward to the next
effectual operation — saves energy *and* time, but needs muxing and
favours statically known occupancies). This module gives the designs a
declarative SAF inventory, computes each SAF's savings semantics, and
renders the Table 1-style comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ModelError


class SafKind(enum.Enum):
    GATING = "gating"
    SKIPPING = "skipping"


@dataclass(frozen=True)
class Saf:
    """One sparse acceleration feature.

    ``target`` is the hardware level the SAF controls (e.g. "MAC",
    "PE array"); ``condition_on`` names the operand/rank whose
    occupancy drives it (e.g. "A.rank0"); ``static`` marks whether the
    driving occupancy is statically known (structured sparsity), which
    is what makes perfect workload balance possible.
    """

    kind: SafKind
    target: str
    condition_on: str
    static: bool

    def savings(self, ineffectual_fraction: float) -> Tuple[float, float]:
        """(energy fraction saved, time fraction saved) at the target.

        Gating saves energy only; skipping saves both. Dynamic skipping
        cannot bank the full time savings (imbalance), so its time
        saving is reported as an upper bound by the caller's balance
        model — here we return the ideal.
        """
        if not 0.0 <= ineffectual_fraction <= 1.0:
            raise ModelError(
                f"ineffectual fraction must be in [0, 1], got "
                f"{ineffectual_fraction}"
            )
        if self.kind is SafKind.GATING:
            return ineffectual_fraction, 0.0
        return ineffectual_fraction, ineffectual_fraction

    def describe(self) -> str:
        timing = "static" if self.static else "dynamic"
        return (
            f"{self.kind.value} at {self.target} on "
            f"{self.condition_on} ({timing})"
        )


def highlight_safs() -> List[Saf]:
    """HighLight's modular SAFs (Fig. 6(c), Secs. 6.3-6.4)."""
    return [
        Saf(SafKind.SKIPPING, "PE array", "A.rank1", static=True),
        Saf(SafKind.SKIPPING, "PE", "A.rank0", static=True),
        Saf(SafKind.GATING, "MAC", "B.values", static=False),
    ]


def stc_safs() -> List[Saf]:
    return [Saf(SafKind.SKIPPING, "MAC", "A.rank0", static=True)]


def s2ta_safs() -> List[Saf]:
    return [
        Saf(SafKind.SKIPPING, "MAC", "A.rank0", static=True),
        Saf(SafKind.SKIPPING, "MAC", "B.rank0", static=False),
    ]


def dstc_safs() -> List[Saf]:
    return [
        Saf(SafKind.SKIPPING, "MAC", "A.values", static=False),
        Saf(SafKind.SKIPPING, "MAC", "B.values", static=False),
    ]


def design_safs(design_name: str) -> List[Saf]:
    """SAF inventory per evaluated design (TC has none)."""
    table = {
        "TC": [],
        "STC": stc_safs(),
        "DSTC": dstc_safs(),
        "S2TA": s2ta_safs(),
        "HighLight": highlight_safs(),
    }
    try:
        return table[design_name]
    except KeyError:
        raise ModelError(f"unknown design {design_name!r}") from None


def combined_ideal_speedup(
    safs: List[Saf], fractions: dict
) -> float:
    """Ideal speedup from a SAF set given per-condition ineffectual
    fractions (multiplicative across independent skipping SAFs —
    'HighLight's total speedup is the product of the speedup introduced
    at each rank', Sec. 6.3)."""
    speedup = 1.0
    for saf in safs:
        fraction = fractions.get(saf.condition_on, 0.0)
        _, time_saved = saf.savings(fraction)
        if time_saved >= 1.0:
            raise ModelError(
                f"{saf.condition_on}: cannot skip 100% of the work"
            )
        speedup *= 1.0 / (1.0 - time_saved)
    return speedup


def all_static(safs: List[Saf]) -> bool:
    """Whether every skipping SAF is driven by static structure —
    the perfect-workload-balance condition."""
    return all(
        saf.static
        for saf in safs
        if saf.kind is SafKind.SKIPPING
    )
