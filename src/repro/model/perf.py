"""Shared GEMM cost assembly: counts -> activity -> Metrics.

Every accelerator design computes its design-specific quantities
(scheduled products, utilization, stored/fetched words, SAF events) and
hands them to :func:`build_metrics`, which assembles the common memory
activity (DRAM, GLB fills/fetches, partial-sum traffic, output drain)
and turns everything into a :class:`repro.model.metrics.Metrics` via the
energy estimator. Keeping the memory accounting in one place guarantees
the designs are compared under identical dataflow assumptions except
where a design explicitly deviates (DSTC's outer-product accumulation).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.arch.designs import DesignResources
from repro.energy.estimator import Estimator
from repro.errors import ModelError
from repro.model.activity import ActivityCounts
from repro.model.batch import ActivityMatrix, WorkloadBatch, as_vector
from repro.model.metrics import Metrics
from repro.model.workload import MatmulWorkload

SafEvent = Tuple[str, str, float]  # (component, action, count)

#: Batched SAF event: (component, action, per-workload count vector).
SafEventVec = Tuple[str, str, "np.ndarray | float"]


def compute_cycles(
    scheduled_products: float, num_macs: int, utilization: float
) -> float:
    """Cycle count: scheduled MAC slots over usable parallelism."""
    if scheduled_products <= 0:
        raise ModelError("scheduled_products must be positive")
    return scheduled_products / (num_macs * utilization)


def build_metrics(
    *,
    workload: MatmulWorkload,
    resources: DesignResources,
    estimator: Estimator,
    scheduled_products: float,
    utilization: float,
    full_macs: float,
    gated_macs: float = 0.0,
    a_stored_words: float,
    a_meta_words: float = 0.0,
    b_stored_words: float,
    b_meta_words: float = 0.0,
    b_fetch_words: float,
    a_fetch_words: Optional[float] = None,
    psum_component: str = "rf",
    psum_updates: Optional[float] = None,
    saf_events: Iterable[SafEvent] = (),
    compress_values: float = 0.0,
    supported: bool = True,
    swapped: bool = False,
) -> Metrics:
    """Assemble activity counts and evaluate them into Metrics.

    Memory model shared by all designs:

    * DRAM: each stored operand word (and metadata word) read once;
      every output word written once.
    * GLB: filled once with stored data/metadata; operand A read once
      (it is held stationary near the MACs); operand B read
      ``b_fetch_words`` times (design-computed, already divided by the
      spatial broadcast reuse); outputs staged through the GLB.
    * Partial sums: ``psum_updates`` read-modify-writes of
      ``psum_component`` (defaults to scheduled products divided by the
      design's spatial-reduction width).
    """
    arch = resources.arch
    outputs = workload.m * workload.n
    activity = ActivityCounts()

    activity.add("macs", "mac", full_macs)
    activity.add("macs", "gated_mac", gated_macs)

    # --- DRAM traffic -------------------------------------------------
    dram = _dram_name(resources)
    activity.add(dram, "read", a_stored_words + b_stored_words)
    activity.add(dram, "read", a_meta_words + b_meta_words)
    activity.add(dram, "write", outputs)

    # --- GLB data -----------------------------------------------------
    if a_fetch_words is None:
        a_fetch_words = a_stored_words
    activity.add("glb_data", "write", a_stored_words + b_stored_words)
    activity.add("glb_data", "read", a_fetch_words + b_fetch_words)
    activity.add("glb_data", "write", outputs)  # drain staging
    activity.add("glb_data", "read", outputs)

    # --- GLB metadata ---------------------------------------------------
    meta_words = a_meta_words + b_meta_words
    if meta_words:
        if not arch.has_component("glb_meta"):
            raise ModelError(
                f"{arch.name} produced metadata but has no glb_meta"
            )
        activity.add("glb_meta", "write", meta_words)
        activity.add("glb_meta", "read", meta_words)

    # --- partial sums ---------------------------------------------------
    if psum_updates is None:
        psum_updates = scheduled_products / resources.psum_spatial_reduction
    activity.add(psum_component, "read", psum_updates)
    activity.add(psum_component, "write", psum_updates)

    # --- design-specific SAF events --------------------------------------
    for component, action, count in saf_events:
        activity.add(component, action, count)

    if compress_values:
        activity.add("compression_unit", "compress_value", compress_values)

    cycles = compute_cycles(scheduled_products, arch.num_macs, utilization)
    breakdown = activity.energy_pj(arch, estimator)
    return Metrics(
        design=arch.name,
        workload=workload.describe(),
        cycles=cycles,
        energy_breakdown_pj=breakdown,
        utilization=utilization,
        supported=supported,
        swapped=swapped,
    )


def _dram_name(resources: DesignResources) -> str:
    for component in resources.arch.components:
        if component.name.endswith("_dram"):
            return component.name
    raise ModelError(f"{resources.arch.name} has no DRAM component")


def compute_cycles_array(
    scheduled_products: np.ndarray, num_macs: int, utilization
) -> np.ndarray:
    """Vectorized :func:`compute_cycles` (same expression per element)."""
    scheduled = np.asarray(scheduled_products, dtype=np.float64)
    # min() also rejects NaN (it fails every comparison).
    if not scheduled.min() > 0:
        raise ModelError("scheduled_products must be positive")
    return scheduled / (num_macs * utilization)


def build_metrics_batch(
    *,
    batch: WorkloadBatch,
    resources: DesignResources,
    estimator: Estimator,
    scheduled_products: np.ndarray,
    utilization,
    full_macs,
    gated_macs=0.0,
    a_stored_words,
    a_meta_words=0.0,
    b_stored_words,
    b_meta_words=0.0,
    b_fetch_words,
    a_fetch_words=None,
    psum_component: str = "rf",
    psum_updates=None,
    saf_events: Iterable[SafEventVec] = (),
    compress_values=0.0,
    supported: bool = True,
    swapped: bool = False,
) -> List[Metrics]:
    """Vectorized :func:`build_metrics` over a :class:`WorkloadBatch`.

    Count arguments are per-workload float64 vectors (scalars
    broadcast). The activity events are emitted in exactly the order of
    the scalar assembly and every arithmetic expression preserves the
    scalar operation order, so the returned Metrics — cycles, breakdown
    values *and* breakdown key order — are bit-identical to evaluating
    each workload through :func:`build_metrics`.
    """
    arch = resources.arch
    size = len(batch)
    outputs = batch.mn
    activity = ActivityMatrix(size)

    activity.add("macs", "mac", full_macs)
    activity.add("macs", "gated_mac", gated_macs)

    # --- DRAM traffic -------------------------------------------------
    a_stored_words = as_vector(a_stored_words, size)
    b_stored_words = as_vector(b_stored_words, size)
    dram = _dram_name(resources)
    activity.add(dram, "read", a_stored_words + b_stored_words)
    activity.add(dram, "read", a_meta_words + b_meta_words)
    activity.add(dram, "write", outputs)

    # --- GLB data -----------------------------------------------------
    if a_fetch_words is None:
        a_fetch_words = a_stored_words
    activity.add("glb_data", "write", a_stored_words + b_stored_words)
    activity.add("glb_data", "read", a_fetch_words + b_fetch_words)
    activity.add("glb_data", "write", outputs)  # drain staging
    activity.add("glb_data", "read", outputs)

    # --- GLB metadata ---------------------------------------------------
    meta_words = as_vector(a_meta_words + b_meta_words, size)
    if meta_words.max() > 0:
        if not arch.has_component("glb_meta"):
            raise ModelError(
                f"{arch.name} produced metadata but has no glb_meta"
            )
        activity.add("glb_meta", "write", meta_words)
        activity.add("glb_meta", "read", meta_words)

    # --- partial sums ---------------------------------------------------
    if psum_updates is None:
        psum_updates = (
            scheduled_products / resources.psum_spatial_reduction
        )
    activity.add(psum_component, "read", psum_updates)
    activity.add(psum_component, "write", psum_updates)

    # --- design-specific SAF events --------------------------------------
    for component, action, counts in saf_events:
        activity.add(component, action, counts)

    compress_values = as_vector(compress_values, size)
    if compress_values.max() > 0:
        activity.add(
            "compression_unit", "compress_value", compress_values
        )

    cycles = compute_cycles_array(
        scheduled_products, arch.num_macs, utilization
    )
    breakdowns, energy_totals = activity.energy_rows(arch, estimator)
    cycles_list = cycles.tolist()
    utilization_vec = as_vector(utilization, size)
    utilization_list = utilization_vec.tolist()
    descriptions = batch.descriptions
    if not (
        cycles.min() > 0.0
        and utilization_vec.min() > 0.0
        and utilization_vec.max() <= 1.0 + 1e-9
    ):
        # Some row fails the Metrics range checks (NaN also lands
        # here — it fails every comparison): construct the offending
        # row through the validating dataclass path so the caller gets
        # the exact scalar-path ModelError.
        for i in range(size):
            Metrics(
                design=arch.name,
                workload=descriptions[i],
                cycles=cycles_list[i],
                energy_breakdown_pj=breakdowns[i],
                utilization=utilization_list[i],
                supported=supported,
                swapped=swapped,
            )
    # Seed the derived cached properties from the vectorized totals:
    # the fold order matches the scalar sum bit for bit (see
    # ActivityMatrix.energy_rows), and edp is the same one multiply,
    # so lazy recomputation would produce the identical floats —
    # seeding just skips ~2 cached_property computes per Metrics.
    energy_list = energy_totals.tolist()
    edp_list = (energy_totals * cycles).tolist()
    # Trusted construction: every row passed the vectorized range
    # checks above, so the dataclass __init__/__post_init__ re-checks
    # are skipped (they dominate the per-row assembly cost at batch
    # sizes; the field set below is exactly the dataclass's).
    design_name = arch.name
    value_block = activity.value_block
    if value_block is not None and size:
        # Uniform-breakdown fast path: stash each row's cache-codec
        # blob alongside the Metrics while the packed value column is
        # at hand, so a cache flush never re-encodes what this loop
        # already held as bytes. Deferred import: the eval layer
        # imports the model layer at module load, not vice versa.
        from repro.eval import codec

        n_components = len(breakdowns[0])
        row_bytes = n_components * 8
        design_utf8 = codec.utf8(design_name)
        names_utf8 = codec.utf8("\0".join(breakdowns[0]))
        flags = (1 if supported else 0) | (2 if swapped else 0)
        stash_key = codec.BLOB_STASH
        pack_blob = codec.pack_blob
        utf8 = codec.utf8
    else:
        stash_key = None
    new = object.__new__
    out = []
    for i in range(size):
        metrics = new(Metrics)
        metrics.__dict__.update({
            "design": design_name,
            "workload": descriptions[i],
            "cycles": cycles_list[i],
            "energy_breakdown_pj": breakdowns[i],
            "utilization": utilization_list[i],
            "supported": supported,
            "swapped": swapped,
            "energy_pj": energy_list[i],
            "edp": edp_list[i],
        })
        if stash_key is not None:
            metrics.__dict__[stash_key] = pack_blob(
                flags,
                cycles_list[i],
                utilization_list[i],
                design_utf8,
                utf8(descriptions[i]),
                names_utf8,
                value_block[i * row_bytes:(i + 1) * row_bytes],
                n_components,
            )
        out.append(metrics)
    return out
