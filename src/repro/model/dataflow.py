"""Loopnest dataflow representation (paper Fig. 8(b)).

A dataflow is an ordered list of loops, outermost first; each loop binds
a dimension, a bound, and whether it is temporal or spatial. The
representation is used for documentation, for computing reuse factors,
and by the micro-architecture simulator to schedule processing steps the
same way the analytical model counts them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ModelError
from repro.utils import ceil_div


class LoopKind(enum.Enum):
    TEMPORAL = "temporal"
    SPATIAL = "spatial"


@dataclass(frozen=True)
class Loop:
    """One loop level: ``for <dimension> in [0, bound)``."""

    dimension: str
    bound: int
    kind: LoopKind = LoopKind.TEMPORAL

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise ModelError(
                f"loop bound for {self.dimension} must be positive, "
                f"got {self.bound}"
            )

    def __str__(self) -> str:
        marker = "par-for" if self.kind is LoopKind.SPATIAL else "for"
        return f"{marker} {self.dimension} in [0, {self.bound})"


@dataclass(frozen=True)
class Loopnest:
    """An ordered loopnest, outermost first."""

    loops: Tuple[Loop, ...]

    def __post_init__(self) -> None:
        if not self.loops:
            raise ModelError("a loopnest needs at least one loop")

    @property
    def temporal_iterations(self) -> int:
        """Product of temporal bounds: the cycle count of the schedule."""
        product = 1
        for loop in self.loops:
            if loop.kind is LoopKind.TEMPORAL:
                product *= loop.bound
        return product

    @property
    def spatial_width(self) -> int:
        """Product of spatial bounds: parallel instances used."""
        product = 1
        for loop in self.loops:
            if loop.kind is LoopKind.SPATIAL:
                product *= loop.bound
        return product

    @property
    def total_iterations(self) -> int:
        return self.temporal_iterations * self.spatial_width

    def __str__(self) -> str:
        lines = []
        for depth, loop in enumerate(self.loops):
            lines.append("  " * depth + str(loop))
        return "\n".join(lines)


def highlight_loopnest(
    m: int,
    k: int,
    n: int,
    scheduled_k_density: float,
    spatial_rows: int = 32,
    spatial_cols: int = 32,
) -> Loopnest:
    """HighLight's HSS-operand-stationary dataflow as a loopnest.

    Operand-A blocks stay stationary in PEs; the scheduled K extent
    shrinks by the supported density (hierarchical skipping); M and K
    are spatially tiled over the PE grid; partial sums accumulate
    spatially along rows (Fig. 8(b)/Fig. 10).
    """
    scheduled_k = max(1, int(round(k * scheduled_k_density)))
    return Loopnest(
        (
            Loop("m1", ceil_div(m, spatial_rows)),
            Loop("k1", ceil_div(scheduled_k, spatial_cols)),
            Loop("n", n),
            Loop("m0", min(m, spatial_rows), LoopKind.SPATIAL),
            Loop("k0", min(scheduled_k, spatial_cols), LoopKind.SPATIAL),
        )
    )
