"""Tiling/mapping search: a miniature of Timeloop's mapspace exploration.

The analytical model in :mod:`repro.model.perf` uses fixed reuse
factors (every design gets the same dataflow skeleton, per the paper's
fair-comparison setup). This module provides the substrate underneath
that assumption: given a GEMM and a GLB capacity, enumerate legal
(tile_m, tile_n) output tiles with full-K operand residency, cost each
by its DRAM traffic, and return the best mapping. It demonstrates that
the shipped reuse factors are what an exhaustive mapper would pick for
the Table 4 buffer sizes, and it powers the GLB-capacity ablation
bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ModelError
from repro.model.workload import MatmulWorkload
from repro.utils import ceil_div

#: Bytes per data word (16-bit datapath).
WORD_BYTES = 2


@dataclass(frozen=True)
class Mapping:
    """One tiling choice: an output tile of tile_m x tile_n with the
    full contracted dimension resident."""

    tile_m: int
    tile_n: int
    workload_m: int
    workload_k: int
    workload_n: int
    density_a: float
    density_b: float

    def __post_init__(self) -> None:
        if not 0 < self.tile_m <= self.workload_m:
            raise ModelError(f"bad tile_m {self.tile_m}")
        if not 0 < self.tile_n <= self.workload_n:
            raise ModelError(f"bad tile_n {self.tile_n}")

    @property
    def num_tiles(self) -> int:
        return ceil_div(self.workload_m, self.tile_m) * ceil_div(
            self.workload_n, self.tile_n
        )

    def buffer_bytes(self) -> float:
        """GLB bytes the tile needs: A-slice + B-slice + outputs."""
        a_bytes = self.tile_m * self.workload_k * self.density_a
        b_bytes = self.workload_k * self.tile_n * self.density_b
        out_bytes = self.tile_m * self.tile_n
        return (a_bytes + b_bytes + out_bytes) * WORD_BYTES

    def dram_words(self) -> float:
        """Total DRAM words moved under this tiling.

        Each A row-slice is re-read once per N-tile column; each B
        column-slice once per M-tile row; outputs written once.
        """
        m_tiles = ceil_div(self.workload_m, self.tile_m)
        n_tiles = ceil_div(self.workload_n, self.tile_n)
        a_words = (
            self.workload_m * self.workload_k * self.density_a * n_tiles
        )
        b_words = (
            self.workload_k * self.workload_n * self.density_b * m_tiles
        )
        out_words = self.workload_m * self.workload_n
        return a_words + b_words + out_words


def enumerate_mappings(
    workload: MatmulWorkload,
    glb_bytes: int,
    tile_steps: int = 16,
) -> Iterator[Mapping]:
    """Yield all legal power-of-two-ish tilings that fit the GLB."""
    if glb_bytes <= 0:
        raise ModelError("glb_bytes must be positive")
    m_candidates = _tile_candidates(workload.m, tile_steps)
    n_candidates = _tile_candidates(workload.n, tile_steps)
    for tile_m in m_candidates:
        for tile_n in n_candidates:
            mapping = Mapping(
                tile_m=tile_m,
                tile_n=tile_n,
                workload_m=workload.m,
                workload_k=workload.k,
                workload_n=workload.n,
                density_a=workload.a.density,
                density_b=workload.b.density,
            )
            if mapping.buffer_bytes() <= glb_bytes:
                yield mapping


def _tile_candidates(extent: int, steps: int) -> List[int]:
    candidates = {extent}
    tile = 1
    while tile < extent:
        candidates.add(tile)
        tile *= 2
    return sorted(candidates)[-steps:]


def best_mapping(
    workload: MatmulWorkload, glb_bytes: int
) -> Optional[Mapping]:
    """The legal mapping with the least DRAM traffic (ties: larger
    tiles first), or ``None`` when nothing fits."""
    best: Optional[Mapping] = None
    for mapping in enumerate_mappings(workload, glb_bytes):
        if best is None or _better(mapping, best):
            best = mapping
    return best


def _better(candidate: Mapping, incumbent: Mapping) -> bool:
    if candidate.dram_words() != incumbent.dram_words():
        return candidate.dram_words() < incumbent.dram_words()
    return (candidate.tile_m * candidate.tile_n) > (
        incumbent.tile_m * incumbent.tile_n
    )


def dram_traffic_vs_glb(
    workload: MatmulWorkload, glb_sizes_bytes: List[int]
) -> List[float]:
    """DRAM words of the best mapping at each GLB capacity.

    The ablation behind the Table 4 sizing: compression (density < 1)
    effectively enlarges the buffer, which is one of the quiet wins of
    sparse designs the paper's energy numbers include.
    """
    out: List[float] = []
    for glb_bytes in glb_sizes_bytes:
        mapping = best_mapping(workload, glb_bytes)
        if mapping is None:
            raise ModelError(
                f"no legal mapping fits {glb_bytes} bytes for "
                f"{workload.describe()}"
            )
        out.append(mapping.dram_words())
    return out
