"""Workload descriptions: matrix multiplications with sparse operands.

All DNN layers are processed as matrix multiplications (paper Sec. 6.1):
fully-connected/attention layers natively, convolutions after Toeplitz
expansion (:mod:`repro.dnn.toeplitz`). A workload therefore is an
(M, K, N) GEMM plus, for each operand, a density and a *structure*
describing how the zeros are arranged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from repro.errors import WorkloadError
from repro.sparsity.hss import HSSPattern

#: Decimal places sparsity degrees/densities are quantized to for
#: content keys and canonical-pattern lookups. Grid arithmetic produces
#: float noise well below 1e-9; distinct degrees in any realistic sweep
#: differ by far more.
DEGREE_DECIMALS = 9


def quantize_degree(degree: float) -> float:
    """The canonical quantization of a sparsity degree (or density).

    Every cache key and canonical-pattern lookup in the code base must
    go through this one helper, so 0.5 and 0.5000000001 — float noise
    from grid arithmetic — always land on the same key.
    """
    return round(degree, DEGREE_DECIMALS)


#: A hashable, content-based operand key (structure + quantized density
#: + serialized HSS ranks).
OperandKey = Tuple[object, ...]

#: A hashable, content-based workload key: (m, k, n, A key, B key).
#: The display ``name`` is deliberately excluded — two workloads with
#: identical numerics share one key regardless of labeling.
WorkloadKey = Tuple[object, ...]


class Structure(enum.Enum):
    """How an operand's zeros are distributed."""

    DENSE = "dense"
    HSS = "hss"
    UNSTRUCTURED = "unstructured"


@dataclass(frozen=True)
class OperandSparsity:
    """Density plus structure of one GEMM operand.

    ``density`` is the fraction of nonzeros (1.0 for dense). For HSS
    operands ``pattern`` carries the concrete per-rank G:H rules.
    """

    density: float
    structure: Structure
    pattern: Optional[HSSPattern] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise WorkloadError(
                f"density must be in (0, 1], got {self.density}"
            )
        if self.structure is Structure.HSS and self.pattern is None:
            raise WorkloadError("HSS operands need a pattern")
        if self.structure is not Structure.HSS and self.pattern is not None:
            raise WorkloadError(
                f"{self.structure.value} operands must not carry a pattern"
            )
        if self.pattern is not None:
            expected = self.pattern.density
            if abs(expected - self.density) > 1e-9:
                raise WorkloadError(
                    f"pattern density {expected} != declared {self.density}"
                )

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    @property
    def is_dense(self) -> bool:
        return self.structure is Structure.DENSE

    def key(self) -> OperandKey:
        """Canonical content key: structure, quantized density, and —
        for HSS operands — the concrete per-rank G:H rules (lowest rank
        first), so patterns with equal density but different block
        hierarchies stay distinct. Computed once per operand (the
        dataclass is frozen; sweeps ask for keys constantly)."""
        return self._content_key

    @cached_property
    def _content_key(self) -> OperandKey:
        ranks: Tuple[Tuple[int, int], ...] = ()
        if self.pattern is not None:
            ranks = tuple((rank.g, rank.h) for rank in self.pattern.ranks)
        return (self.structure.value, quantize_degree(self.density), ranks)

    def describe(self) -> str:
        """Display form, computed once per (frozen) instance — pattern
        formatting is the expensive half and sweeps re-describe the
        same long-lived operands constantly."""
        return self._described

    @cached_property
    def _described(self) -> str:
        if self.is_dense:
            return "dense"
        if self.structure is Structure.HSS:
            return str(self.pattern)
        return f"unstructured({self.sparsity:.0%})"


def dense_operand() -> OperandSparsity:
    """A fully dense operand."""
    return OperandSparsity(1.0, Structure.DENSE)


def hss_operand(pattern: HSSPattern) -> OperandSparsity:
    """An operand carrying a concrete HSS pattern."""
    return OperandSparsity(pattern.density, Structure.HSS, pattern)


def structured_operand(g: int, h: int) -> OperandSparsity:
    """Shorthand for a one-rank G:H structured operand."""
    return hss_operand(HSSPattern.from_ratios((g, h)))


def unstructured_operand(sparsity: float) -> OperandSparsity:
    """An unstructured-sparse operand with the given sparsity degree."""
    if not 0.0 <= sparsity < 1.0:
        raise WorkloadError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return dense_operand()
    return OperandSparsity(1.0 - sparsity, Structure.UNSTRUCTURED)


@dataclass(frozen=True)
class MatmulWorkload:
    """An (M, K, N) matrix multiplication: ``Z[m, n] += A[m, k] B[k, n]``.

    Operand A holds weights (dense or HSS in HighLight's usage), operand
    B holds input activations (dense or unstructured sparse); designs
    that process matrix multiplications may swap operands and the
    harness reports the better orientation (Sec. 7.1.1).
    """

    m: int
    k: int
    n: int
    a: OperandSparsity
    b: OperandSparsity
    name: str = ""

    def __post_init__(self) -> None:
        for dim_name, value in (("m", self.m), ("k", self.k), ("n", self.n)):
            if value <= 0:
                raise WorkloadError(
                    f"{dim_name} must be positive, got {value}"
                )

    @property
    def dense_products(self) -> int:
        """Total MAC count a dense accelerator performs."""
        return self.m * self.k * self.n

    @property
    def effectual_products(self) -> float:
        """Expected products with both operands nonzero."""
        return self.dense_products * self.a.density * self.b.density

    def key(self) -> WorkloadKey:
        """Canonical content key: shape plus both operand keys.

        The ``name`` label is excluded on purpose: it is display-only,
        and memoization must treat identically shaped/sparse workloads
        as one unit of work no matter how a caller labeled them (the
        same dense layer appears under many labels across a network
        sweep's degrees and designs). Computed once per instance.
        """
        return self._content_key

    @cached_property
    def _content_key(self) -> WorkloadKey:
        return (self.m, self.k, self.n, self.a.key(), self.b.key())

    @cached_property
    def stripped(self) -> "MatmulWorkload":
        """This workload without its display label (``self`` when it
        has none). Evaluation caches key on content, so the engine
        evaluates and stores the stripped form; computing it once per
        (frozen, memoized) instance keeps that off the sweep hot path.
        """
        if not self.name:
            return self
        bare = MatmulWorkload(m=self.m, k=self.k, n=self.n,
                              a=self.a, b=self.b)
        # Same numerics, same key: share the computed content key.
        bare.__dict__["_content_key"] = self._content_key
        return bare

    def swapped(self) -> "MatmulWorkload":
        """The transposed-operand workload (Z^T = B^T A^T)."""
        return MatmulWorkload(
            m=self.n,
            k=self.k,
            n=self.m,
            a=self.b,
            b=self.a,
            name=f"{self.name}^T" if self.name else "",
        )

    def describe(self) -> str:
        """Display form, computed once per (frozen) instance. The
        realization layer memoizes workload instances, so this turns
        repeated describes across sweeps/batches into one dict hit."""
        return self._described

    @cached_property
    def _described(self) -> str:
        label = self.name or f"{self.m}x{self.k}x{self.n}"
        return (
            f"{label}: A={self.a.describe()}, B={self.b.describe()}"
        )


def synthetic_workload(
    a_sparsity: float,
    b_sparsity: float,
    size: int = 1024,
) -> MatmulWorkload:
    """A Fig. 13-style synthetic workload: size^3 GEMM.

    Operand A is HSS-structured at the requested sparsity (the paper
    evaluates A at 0%/50%/75%, all expressible with HighLight-supported
    patterns); operand B is unstructured at the requested sparsity.
    """
    pattern = _hss_for_sparsity(a_sparsity)
    a = hss_operand(pattern) if pattern else dense_operand()
    b = unstructured_operand(b_sparsity)
    return MatmulWorkload(
        m=size, k=size, n=size, a=a, b=b,
        name=f"A{a_sparsity:.0%}/B{b_sparsity:.0%}",
    )


def _hss_for_sparsity(sparsity: float) -> Optional[HSSPattern]:
    """An HSS pattern (within HighLight's supported family) for common
    sparsity degrees; ``None`` means dense."""
    table = {
        0.0: None,
        0.5: HSSPattern.from_ratios((2, 4), (4, 4)),
        0.75: HSSPattern.from_ratios((2, 4), (4, 8)),
        0.875: HSSPattern.from_ratios((2, 4), (2, 8)),
    }
    if sparsity not in table:
        raise WorkloadError(
            f"no canonical HSS pattern for sparsity {sparsity}; "
            f"supported: {sorted(table)}"
        )
    return table[sparsity]
