"""Evaluation metrics: energy, latency, EDP, ED^2 and normalization."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Sequence

from repro.errors import ModelError
from repro.utils import geomean


@dataclass(frozen=True)
class Metrics:
    """The outcome of evaluating one design on one workload."""

    design: str
    workload: str
    cycles: float
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    utilization: float = 1.0
    #: Whether the design natively supports the workload's sparsity
    #: (False => it ran in a degraded/dense fallback mode).
    supported: bool = True
    #: True when the harness swapped operands for this result.
    swapped: bool = False

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ModelError(f"cycles must be positive, got {self.cycles}")
        if not 0.0 < self.utilization <= 1.0 + 1e-9:
            raise ModelError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )

    # cached_property, not property: selection rules (best-EDP over
    # candidates, per-layer folds) re-read these constantly, and the
    # dataclass is frozen so the derived values can never go stale.

    @cached_property
    def energy_pj(self) -> float:
        """Total energy in picojoules."""
        return sum(self.energy_breakdown_pj.values())

    @cached_property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.cycles

    @property
    def ed2(self) -> float:
        """Energy-delay-squared product (pJ x cycles^2)."""
        return self.energy_pj * self.cycles * self.cycles

    def breakdown_by_category(
        self, categories: Dict[str, str]
    ) -> Dict[str, float]:
        """Re-bucket the component energy breakdown.

        ``categories`` maps component names to bucket names; unmapped
        components land in ``"other"``.
        """
        out: Dict[str, float] = {}
        for component, energy in self.energy_breakdown_pj.items():
            bucket = categories.get(component, "other")
            out[bucket] = out.get(bucket, 0.0) + energy
        return out


def normalize(value: float, baseline: float) -> float:
    """``value / baseline`` with a guard against degenerate baselines."""
    if baseline <= 0:
        raise ModelError(f"baseline must be positive, got {baseline}")
    return value / baseline


def geomean_ratio(
    values: Sequence[Metrics],
    baselines: Sequence[Metrics],
    metric: str = "edp",
) -> float:
    """Geomean of per-workload baseline/design ratios (a gain factor).

    ``metric`` is one of ``"edp"``, ``"ed2"``, ``"energy_pj"``,
    ``"cycles"``. A result > 1 means ``values`` improves on
    ``baselines`` by that factor on geomean — the paper's "6.4x lower
    EDP" style of statement.
    """
    if len(values) != len(baselines):
        raise ModelError("values and baselines must align")
    ratios: List[float] = []
    for ours, base in zip(values, baselines):
        numerator = getattr(base, metric)
        denominator = getattr(ours, metric)
        ratios.append(normalize(numerator, denominator))
    return geomean(ratios)
