"""Sparseloop-style analytical performance model.

The model follows the Sparseloop methodology the paper uses [54]:

1. a *workload* describes the matrix multiplication and the density +
   structure of each operand (:mod:`repro.model.workload`);
2. *density models* turn densities and structures into effectual
   operation counts and workload-balance (utilization) estimates
   (:mod:`repro.model.density`);
3. a *dataflow* description provides reuse factors
   (:mod:`repro.model.dataflow`);
4. per-design evaluation produces component *activity counts*
   (:mod:`repro.model.activity`) which, with the Accelergy-style
   estimator, become energy; cycle counts come from scheduled
   compute and utilization (:mod:`repro.model.metrics`).
"""

from repro.model.workload import (
    MatmulWorkload,
    OperandSparsity,
    dense_operand,
    hss_operand,
    structured_operand,
    unstructured_operand,
)
from repro.model.metrics import Metrics, normalize
from repro.model.activity import ActivityCounts
from repro.model.density import (
    balance_efficiency,
    highlight_supported_density,
    s2ta_quantized_density,
    stc_effective_density,
)
from repro.model.dataflow import Loop, Loopnest, highlight_loopnest
from repro.model.mapping import Mapping, best_mapping, dram_traffic_vs_glb

__all__ = [
    "MatmulWorkload",
    "OperandSparsity",
    "dense_operand",
    "hss_operand",
    "structured_operand",
    "unstructured_operand",
    "Metrics",
    "normalize",
    "ActivityCounts",
    "balance_efficiency",
    "highlight_supported_density",
    "s2ta_quantized_density",
    "stc_effective_density",
    "Loop",
    "Loopnest",
    "highlight_loopnest",
    "Mapping",
    "best_mapping",
    "dram_traffic_vs_glb",
]
